//! PCIe switch topology of the BaM prototype machine.
//!
//! The prototype (Table 1, §4.2) attaches one NVIDIA A100 and up to ten U.2
//! SSDs to a drawer of an H3 Falcon-4016 PCIe expansion chassis. The chassis
//! switch provides peer-to-peer paths between the GPU and the SSDs that do
//! not cross the host root complex, which is what lets the aggregate SSD
//! bandwidth match the GPU's ×16 link.

use serde::{Deserialize, Serialize};

use crate::link::LinkSpec;

/// The kind of device hanging off the switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Host CPU root complex.
    HostCpu,
    /// A GPU endpoint.
    Gpu,
    /// An NVMe SSD endpoint.
    Ssd,
    /// A PCIe switch (internal node).
    Switch,
}

/// Identifier of a device within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DeviceNode {
    id: DeviceId,
    kind: DeviceKind,
    name: String,
    /// Link connecting this device up toward its parent (switch or root).
    uplink: LinkSpec,
    parent: Option<DeviceId>,
}

/// A tree-shaped PCIe topology.
///
/// The model is deliberately simple: each device has one uplink toward its
/// parent; the bandwidth of a path between two devices is the minimum
/// effective bandwidth of the links on the path. That is sufficient to
/// capture the ceilings that shape Figures 4–6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<DeviceNode>,
}

/// Builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    devices: Vec<DeviceNode>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &mut self,
        kind: DeviceKind,
        name: &str,
        uplink: LinkSpec,
        parent: Option<DeviceId>,
    ) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(DeviceNode {
            id,
            kind,
            name: name.to_string(),
            uplink,
            parent,
        });
        id
    }

    /// Adds the host root complex. Must be added first.
    pub fn host(&mut self, name: &str) -> DeviceId {
        assert!(self.devices.is_empty(), "host must be the first device");
        self.push(DeviceKind::HostCpu, name, LinkSpec::gen4_x16(), None)
    }

    /// Adds a switch under `parent` with the given uplink.
    pub fn switch(&mut self, name: &str, parent: DeviceId, uplink: LinkSpec) -> DeviceId {
        self.push(DeviceKind::Switch, name, uplink, Some(parent))
    }

    /// Adds a GPU under `parent` with the given uplink.
    pub fn gpu(&mut self, name: &str, parent: DeviceId, uplink: LinkSpec) -> DeviceId {
        self.push(DeviceKind::Gpu, name, uplink, Some(parent))
    }

    /// Adds an SSD under `parent` with the given uplink.
    pub fn ssd(&mut self, name: &str, parent: DeviceId, uplink: LinkSpec) -> DeviceId {
        self.push(DeviceKind::Ssd, name, uplink, Some(parent))
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if no host was added.
    pub fn build(self) -> Topology {
        assert!(
            self.devices.first().map(|d| d.kind) == Some(DeviceKind::HostCpu),
            "topology must contain a host root complex"
        );
        Topology {
            devices: self.devices,
        }
    }
}

impl Topology {
    /// Builds the BaM prototype topology: one drawer of the expansion chassis
    /// with an A100 and `num_ssds` SSDs behind the same switch.
    pub fn bam_prototype(num_ssds: usize) -> Self {
        let mut b = TopologyBuilder::new();
        let host = b.host("AMD EPYC 7702 root complex");
        let drawer = b.switch("Falcon-4016 drawer switch", host, LinkSpec::gen4_x16());
        b.gpu("NVIDIA A100-80GB", drawer, LinkSpec::gen4_x16());
        for i in 0..num_ssds {
            b.ssd(&format!("ssd{i}"), drawer, LinkSpec::gen4_x4());
        }
        b.build()
    }

    /// All device ids of a given kind, in insertion order.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.kind == kind)
            .map(|d| d.id)
            .collect()
    }

    /// Human-readable name of a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this topology.
    pub fn name(&self, id: DeviceId) -> &str {
        &self.devices[id.0 as usize].name
    }

    /// The device's uplink spec.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this topology.
    pub fn uplink(&self, id: DeviceId) -> LinkSpec {
        self.devices[id.0 as usize].uplink
    }

    fn path_to_root(&self, id: DeviceId) -> Vec<DeviceId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(parent) = self.devices[cur.0 as usize].parent {
            path.push(parent);
            cur = parent;
        }
        path
    }

    /// Effective bandwidth (GB/s) of the path between two devices: the
    /// minimum of the uplinks traversed up to their lowest common ancestor.
    ///
    /// # Panics
    ///
    /// Panics if either id is not part of this topology.
    pub fn path_bandwidth_gbps(&self, a: DeviceId, b: DeviceId) -> f64 {
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        // Find lowest common ancestor by walking from the root down.
        let mut lca_depth_from_end = 0;
        while lca_depth_from_end < pa.len()
            && lca_depth_from_end < pb.len()
            && pa[pa.len() - 1 - lca_depth_from_end] == pb[pb.len() - 1 - lca_depth_from_end]
        {
            lca_depth_from_end += 1;
        }
        assert!(
            lca_depth_from_end > 0,
            "devices are not in the same topology"
        );
        let mut min_bw = f64::INFINITY;
        for &d in pa.iter().take(pa.len() - lca_depth_from_end) {
            min_bw = min_bw.min(self.uplink(d).effective_bandwidth_gbps());
        }
        for &d in pb.iter().take(pb.len() - lca_depth_from_end) {
            min_bw = min_bw.min(self.uplink(d).effective_bandwidth_gbps());
        }
        if min_bw.is_infinite() {
            // Same device.
            self.uplink(a).effective_bandwidth_gbps()
        } else {
            min_bw
        }
    }

    /// One-way latency (µs) between two devices: the sum of link latencies on
    /// the path between them.
    pub fn path_latency_us(&self, a: DeviceId, b: DeviceId) -> f64 {
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        let mut common = 0;
        while common < pa.len()
            && common < pb.len()
            && pa[pa.len() - 1 - common] == pb[pb.len() - 1 - common]
        {
            common += 1;
        }
        let hops = (pa.len() - common) + (pb.len() - common);
        let lat_a: f64 = pa
            .iter()
            .take(pa.len() - common)
            .map(|&d| self.uplink(d).latency_us)
            .sum();
        let lat_b: f64 = pb
            .iter()
            .take(pb.len() - common)
            .map(|&d| self.uplink(d).latency_us)
            .sum();
        if hops == 0 {
            0.0
        } else {
            lat_a + lat_b
        }
    }

    /// Aggregate bandwidth (GB/s) from a set of SSDs to the GPU, bounded by
    /// the GPU's own uplink: the key quantity behind "4 Optane SSDs match the
    /// ×16 Gen4 link" (§5.2).
    pub fn aggregate_ssd_to_gpu_gbps(&self, gpu: DeviceId, ssds: &[DeviceId]) -> f64 {
        let sum: f64 = ssds.iter().map(|&s| self.path_bandwidth_gbps(s, gpu)).sum();
        sum.min(self.uplink(gpu).effective_bandwidth_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_has_expected_shape() {
        let t = Topology::bam_prototype(10);
        assert_eq!(t.devices_of_kind(DeviceKind::Ssd).len(), 10);
        assert_eq!(t.devices_of_kind(DeviceKind::Gpu).len(), 1);
        assert_eq!(t.devices_of_kind(DeviceKind::Switch).len(), 1);
    }

    #[test]
    fn ssd_to_gpu_path_is_x4_limited() {
        let t = Topology::bam_prototype(4);
        let gpu = t.devices_of_kind(DeviceKind::Gpu)[0];
        let ssd = t.devices_of_kind(DeviceKind::Ssd)[0];
        let bw = t.path_bandwidth_gbps(ssd, gpu);
        let x4 = LinkSpec::gen4_x4().effective_bandwidth_gbps();
        assert!((bw - x4).abs() < 1e-9);
    }

    #[test]
    fn aggregate_bandwidth_caps_at_gpu_link() {
        let t = Topology::bam_prototype(10);
        let gpu = t.devices_of_kind(DeviceKind::Gpu)[0];
        let ssds = t.devices_of_kind(DeviceKind::Ssd);
        let agg = t.aggregate_ssd_to_gpu_gbps(gpu, &ssds);
        let x16 = LinkSpec::gen4_x16().effective_bandwidth_gbps();
        assert!(
            (agg - x16).abs() < 1e-9,
            "ten x4 SSDs should saturate the x16 GPU link"
        );
        // With one SSD we are x4 limited.
        let agg1 = t.aggregate_ssd_to_gpu_gbps(gpu, &ssds[..1]);
        assert!(agg1 < x16 / 3.0);
    }

    #[test]
    fn latency_accumulates_over_hops() {
        let t = Topology::bam_prototype(2);
        let gpu = t.devices_of_kind(DeviceKind::Gpu)[0];
        let ssd = t.devices_of_kind(DeviceKind::Ssd)[0];
        assert!(t.path_latency_us(ssd, gpu) > 0.0);
        assert_eq!(t.path_latency_us(gpu, gpu), 0.0);
    }

    #[test]
    #[should_panic(expected = "host must be the first device")]
    fn builder_requires_host_first() {
        let mut b = TopologyBuilder::new();
        // Using an invalid parent before adding a host should panic.
        b.gpu("gpu", DeviceId(0), LinkSpec::gen4_x16());
        b.host("host");
    }
}
