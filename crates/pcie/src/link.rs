//! PCIe link specifications.

use serde::{Deserialize, Serialize};

/// PCIe generation (signalling rate per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// PCIe 3.0 — 8 GT/s per lane (~0.985 GB/s usable per lane).
    Gen3,
    /// PCIe 4.0 — 16 GT/s per lane (~1.969 GB/s usable per lane).
    Gen4,
    /// PCIe 5.0 — 32 GT/s per lane.
    Gen5,
}

impl PcieGeneration {
    /// Raw per-lane bandwidth in GB/s after 128b/130b encoding, before
    /// protocol overhead.
    pub fn per_lane_gbps(self) -> f64 {
        match self {
            PcieGeneration::Gen3 => 0.985,
            PcieGeneration::Gen4 => 1.969,
            PcieGeneration::Gen5 => 3.938,
        }
    }
}

/// A PCIe link: generation × lane count, with an efficiency factor capturing
/// TLP/DLLP protocol overhead.
///
/// The paper measures ~26 GB/s on the A100's Gen4 ×16 link and ~25 GB/s
/// delivered to the application (Fig 5); [`LinkSpec::gen4_x16`] reproduces
/// that envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link generation.
    pub generation: PcieGeneration,
    /// Number of lanes (1, 2, 4, 8, 16).
    pub lanes: u8,
    /// Fraction of raw bandwidth actually achievable by DMA traffic
    /// (protocol + payload efficiency). The paper's measured 26 GB/s on a
    /// 31.5 GB/s raw Gen4 ×16 link corresponds to ~0.82.
    pub efficiency: f64,
    /// One-way link latency in microseconds (switch + flight time). Doorbell
    /// writes and small MMIO reads are dominated by this.
    pub latency_us: f64,
}

impl LinkSpec {
    /// The GPU's host link in the BaM prototype: Gen4 ×16, ~26 GB/s measured.
    pub fn gen4_x16() -> Self {
        Self {
            generation: PcieGeneration::Gen4,
            lanes: 16,
            efficiency: 0.82,
            latency_us: 0.9,
        }
    }

    /// A single NVMe SSD's link: Gen4 ×4, ~6.5 GB/s raw.
    pub fn gen4_x4() -> Self {
        Self {
            generation: PcieGeneration::Gen4,
            lanes: 4,
            efficiency: 0.82,
            latency_us: 0.9,
        }
    }

    /// A Gen3 ×16 link (used in sensitivity comparisons).
    pub fn gen3_x16() -> Self {
        Self {
            generation: PcieGeneration::Gen3,
            lanes: 16,
            efficiency: 0.82,
            latency_us: 0.9,
        }
    }

    /// Raw bandwidth in GB/s (lanes × per-lane rate).
    pub fn raw_bandwidth_gbps(&self) -> f64 {
        self.generation.per_lane_gbps() * f64::from(self.lanes)
    }

    /// Bandwidth achievable by bulk DMA in GB/s.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        self.raw_bandwidth_gbps() * self.efficiency
    }

    /// Effective bandwidth in bytes per second.
    pub fn effective_bandwidth_bps(&self) -> f64 {
        self.effective_bandwidth_gbps() * 1e9
    }

    /// Time in seconds to move `bytes` across this link at full utilization,
    /// excluding per-transfer latency.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.effective_bandwidth_bps()
    }

    /// Maximum IOPS the link can carry for accesses of `access_bytes` each.
    ///
    /// This is the Little's-law "T" term from §2.2 of the paper: a ×16 Gen4
    /// link at ~26 GB/s supports ~51 M/s 512 B accesses and ~6.35 M/s 4 KB
    /// accesses.
    pub fn max_iops(&self, access_bytes: u64) -> f64 {
        self.effective_bandwidth_bps() / access_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen4_x16_matches_paper_envelope() {
        let l = LinkSpec::gen4_x16();
        let bw = l.effective_bandwidth_gbps();
        assert!((24.0..28.0).contains(&bw), "bw={bw}");
        // §2.2: 26 GB/s / 512 B ≈ 51 M/s, / 4 KB ≈ 6.35 M/s.
        let iops_512 = l.max_iops(512) / 1e6;
        let iops_4k = l.max_iops(4096) / 1e6;
        assert!((45.0..55.0).contains(&iops_512), "{iops_512}");
        assert!((5.5..7.0).contains(&iops_4k), "{iops_4k}");
    }

    #[test]
    fn x4_is_quarter_of_x16() {
        let x16 = LinkSpec::gen4_x16().effective_bandwidth_gbps();
        let x4 = LinkSpec::gen4_x4().effective_bandwidth_gbps();
        assert!((x16 / x4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let l = LinkSpec::gen4_x16();
        let t1 = l.transfer_seconds(1 << 30);
        let t2 = l.transfer_seconds(2 << 30);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn generations_ordered() {
        assert!(PcieGeneration::Gen5.per_lane_gbps() > PcieGeneration::Gen4.per_lane_gbps());
        assert!(PcieGeneration::Gen4.per_lane_gbps() > PcieGeneration::Gen3.per_lane_gbps());
    }
}
