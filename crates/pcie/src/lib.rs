//! # bam-pcie — PCIe interconnect model
//!
//! BaM's evaluation is shaped by PCIe ceilings: the GPU's Gen4 ×16 link
//! (~26 GB/s measured), each SSD's Gen4 ×4 link (~6.5 GB/s), and the
//! expansion-chassis switch topology that lets up to ten SSDs share a drawer
//! with a GPU (§4.2, Table 1). This crate models link specifications, the
//! switch topology of the prototype machine, and transfer-time accounting
//! used by the analytical timing layer.
//!
//! ```
//! use bam_pcie::LinkSpec;
//! let gpu_link = LinkSpec::gen4_x16();
//! assert!(gpu_link.effective_bandwidth_gbps() > 20.0);
//! ```

pub mod link;
pub mod topology;
pub mod transfer;

pub use link::{LinkSpec, PcieGeneration};
pub use topology::{DeviceId, DeviceKind, Topology, TopologyBuilder};
pub use transfer::TransferModel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_topology_builds() {
        let topo = Topology::bam_prototype(4);
        assert_eq!(topo.devices_of_kind(DeviceKind::Ssd).len(), 4);
        assert_eq!(topo.devices_of_kind(DeviceKind::Gpu).len(), 1);
    }
}
