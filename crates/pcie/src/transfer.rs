//! Transfer-time accounting over a PCIe path.

use serde::{Deserialize, Serialize};

use crate::link::LinkSpec;

/// An analytical model of data movement over a single PCIe path.
///
/// Used by the timing layer to turn byte counts measured in the functional
/// simulation into transfer times, including the per-transaction overhead
/// that penalizes small transfers (the effect behind Fig 5: CPU-mediated GDS
/// pays a large fixed cost per I/O, so small granularities cannot saturate
/// the link).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferModel {
    /// The bottleneck link of the path.
    pub link: LinkSpec,
    /// Fixed per-transaction overhead in microseconds (software + protocol).
    pub per_transfer_overhead_us: f64,
    /// Number of transfers that can be in flight concurrently (DMA engines /
    /// outstanding requests); overheads of concurrent transfers overlap.
    pub concurrency: u32,
}

impl TransferModel {
    /// A model with no per-transfer software overhead (pure DMA, fully
    /// pipelined) — the envelope BaM operates in.
    pub fn pipelined(link: LinkSpec, concurrency: u32) -> Self {
        Self {
            link,
            per_transfer_overhead_us: 0.0,
            concurrency: concurrency.max(1),
        }
    }

    /// A model with per-transfer overhead, e.g. a CPU software stack issuing
    /// each I/O (GDS / page-fault paths).
    pub fn with_overhead(link: LinkSpec, per_transfer_overhead_us: f64, concurrency: u32) -> Self {
        Self {
            link,
            per_transfer_overhead_us,
            concurrency: concurrency.max(1),
        }
    }

    /// Total time (seconds) to move `num_transfers` transfers of
    /// `transfer_bytes` each.
    ///
    /// Wire time uses the full link bandwidth; overhead time is serialized
    /// over the available concurrency; the two overlap, so the result is the
    /// max of the two — the standard bandwidth/overhead bound.
    pub fn total_seconds(&self, num_transfers: u64, transfer_bytes: u64) -> f64 {
        let wire = self
            .link
            .transfer_seconds(num_transfers.saturating_mul(transfer_bytes));
        let overhead = (num_transfers as f64 * self.per_transfer_overhead_us * 1e-6)
            / f64::from(self.concurrency);
        wire.max(overhead)
    }

    /// Achieved bandwidth in GB/s for the given transfer pattern.
    pub fn achieved_bandwidth_gbps(&self, num_transfers: u64, transfer_bytes: u64) -> f64 {
        let secs = self.total_seconds(num_transfers, transfer_bytes);
        if secs == 0.0 {
            return 0.0;
        }
        (num_transfers as f64 * transfer_bytes as f64) / secs / 1e9
    }

    /// Fraction of the link's effective bandwidth achieved for the pattern.
    pub fn utilization(&self, num_transfers: u64, transfer_bytes: u64) -> f64 {
        self.achieved_bandwidth_gbps(num_transfers, transfer_bytes)
            / self.link.effective_bandwidth_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_model_saturates_at_any_granularity() {
        let m = TransferModel::pipelined(LinkSpec::gen4_x16(), 1024);
        for shift in [12u32, 14, 16, 18] {
            let sz = 1u64 << shift;
            let n = (128u64 << 30) / sz;
            let util = m.utilization(n, sz);
            assert!(util > 0.99, "granularity {sz}: util {util}");
        }
    }

    #[test]
    fn overhead_model_penalizes_small_transfers() {
        // 16 CPU threads each taking ~20 us of software time per I/O — the
        // regime GDS operates in for Fig 5.
        let m = TransferModel::with_overhead(LinkSpec::gen4_x16(), 20.0, 16);
        let total: u64 = 128 << 30;
        let util_4k = m.utilization(total / 4096, 4096);
        let util_256k = m.utilization(total / (256 * 1024), 256 * 1024);
        assert!(util_4k < 0.35, "4KB util {util_4k}");
        assert!(util_256k > 0.9, "256KB util {util_256k}");
        assert!(util_256k > util_4k * 2.5);
    }

    #[test]
    fn bandwidth_is_monotonic_in_granularity_under_overhead() {
        let m = TransferModel::with_overhead(LinkSpec::gen4_x16(), 20.0, 16);
        let total: u64 = 16 << 30;
        let mut prev = 0.0;
        for shift in 12..=18 {
            let sz = 1u64 << shift;
            let bw = m.achieved_bandwidth_gbps(total / sz, sz);
            assert!(bw >= prev);
            prev = bw;
        }
    }
}
