//! Graph-analytics experiments: Figures 7, 8, 9, 10, and 11.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use bam_baselines::{AccessDemand, BamPerformanceModel, TargetSystem};
use bam_core::{BamArray, BamError, BamSystem, MetricsSnapshot};
use bam_gpu_sim::{GpuExecutor, GpuSpec};
use bam_nvme_sim::SsdSpec;
use bam_timing::{ExecutionBreakdown, SsdArrayModel};
use bam_workloads::graph::{
    bfs_bam, bfs_reference, cc_bam, upload_edge_list, CsrGraph, DatasetDescriptor,
};

use crate::scale::{experiment_config, PAPER_CACHE_FRACTION, WORKERS};

/// Cache-line size of the paper's graph experiments (full-scale model).
const FULL_SCALE_LINE: u64 = 4096;
/// Concurrent GPU threads assumed when converting counts to time.
const PARALLELISM: u64 = 1 << 17;

/// Which graph workload an experiment row refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphWorkload {
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
}

impl GraphWorkload {
    /// Short label used in printed tables.
    pub fn label(self) -> &'static str {
        match self {
            GraphWorkload::Bfs => "BFS",
            GraphWorkload::Cc => "CC",
        }
    }
}

/// The access-path configuration of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessConfig {
    /// Every element access issues a storage request (no software cache).
    NoCache,
    /// The cache absorbs redundant requests, but accesses neither coalesce
    /// nor reuse line references (one probe per element).
    NaiveCache,
    /// Full BaM: coalescing plus cache-line reference reuse.
    Optimized,
}

/// A functional measurement of one (dataset, workload) pair at reduced scale.
#[derive(Debug, Clone)]
pub struct GraphMeasurement {
    /// Dataset descriptor (original Table 3 sizes).
    pub dataset: DatasetDescriptor,
    /// Workload measured.
    pub workload: GraphWorkload,
    /// Stored (directed) edges of the scaled instance.
    pub scaled_edges: u64,
    /// Neighbour-list entries read during the run.
    pub edges_traversed: u64,
    /// BaM software metrics of the scaled functional run.
    pub metrics: MetricsSnapshot,
    /// Cache-line size used by the functional run.
    pub run_line_bytes: u64,
}

impl GraphMeasurement {
    /// Scale factor from the functional instance to the original dataset.
    pub fn scale_factor(&self) -> f64 {
        self.dataset.original_edges as f64 / self.scaled_edges.max(1) as f64
    }

    /// Edges the full-scale run would traverse.
    pub fn full_edges_traversed(&self) -> u64 {
        (self.edges_traversed as f64 * self.scale_factor()) as u64
    }

    /// Rescales the measured counts to the original dataset size and to the
    /// full-scale cache-line granularity: byte counts scale with the dataset;
    /// request/probe counts additionally shrink by the line-size ratio
    /// (larger lines mean fewer, larger requests for the same bytes).
    pub fn full_scale_metrics(&self) -> MetricsSnapshot {
        let f = self.scale_factor();
        let line_ratio = self.run_line_bytes as f64 / FULL_SCALE_LINE as f64;
        let m = &self.metrics;
        MetricsSnapshot {
            cache_hits: (m.cache_hits as f64 * f * line_ratio) as u64,
            cache_misses: (m.cache_misses as f64 * f * line_ratio) as u64,
            cache_evictions: (m.cache_evictions as f64 * f * line_ratio) as u64,
            cache_writebacks: (m.cache_writebacks as f64 * f * line_ratio) as u64,
            probe_attempts: (m.probe_attempts as f64 * f * line_ratio) as u64,
            coalesced_accesses: (m.coalesced_accesses as f64 * f) as u64,
            reused_references: (m.reused_references as f64 * f) as u64,
            read_requests: (m.bytes_read as f64 * f / FULL_SCALE_LINE as f64) as u64,
            write_requests: (m.bytes_written as f64 * f / FULL_SCALE_LINE as f64) as u64,
            bytes_read: (m.bytes_read as f64 * f) as u64,
            bytes_written: (m.bytes_written as f64 * f) as u64,
            bytes_requested: (m.bytes_requested as f64 * f) as u64,
            // Retry and journal traffic scale like their request counts.
            storage_retries: (m.storage_retries as f64 * f * line_ratio) as u64,
            journal_appends: (m.journal_appends as f64 * f * line_ratio) as u64,
            journal_bytes: (m.journal_bytes as f64 * f) as u64,
        }
    }

    /// The demand this run places on a DRAM-only system at full scale.
    pub fn full_scale_demand(&self) -> AccessDemand {
        AccessDemand {
            dataset_bytes: (self.dataset.original_size_gb * 1e9) as u64,
            bytes_touched: self.full_edges_traversed() * 4,
            on_demand_accesses: self.full_edges_traversed() * 4 / FULL_SCALE_LINE,
            access_bytes: FULL_SCALE_LINE,
            bytes_written: 0,
            compute_ops: self.full_edges_traversed(),
            phases: 1,
            parallelism: PARALLELISM,
        }
    }
}

/// BFS with one probe per element (no coalescing, no reference reuse) — the
/// "naive"/"no cache" access path of Figure 8.
fn bfs_per_element(
    offsets: &[u64],
    edges: &BamArray<u32>,
    source: u32,
    exec: &GpuExecutor,
) -> Result<(u64, u32), BamError> {
    let n = offsets.len() - 1;
    let distances: Vec<std::sync::atomic::AtomicU32> = (0..n)
        .map(|_| std::sync::atomic::AtomicU32::new(u32::MAX))
        .collect();
    distances[source as usize].store(0, Ordering::Relaxed);
    let edges_traversed = AtomicU64::new(0);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next = Mutex::new(Vec::new());
        let fr = &frontier;
        exec.launch(frontier.len(), |warp| {
            let mut local = Vec::new();
            for (_lane, tid) in warp.lanes() {
                let u = fr[tid];
                for e in offsets[u as usize]..offsets[u as usize + 1] {
                    match edges.read(e) {
                        Ok(v) => {
                            edges_traversed.fetch_add(1, Ordering::Relaxed);
                            if distances[v as usize]
                                .compare_exchange(
                                    u32::MAX,
                                    level + 1,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                local.push(v);
                            }
                        }
                        Err(err) => {
                            first_error.lock().expect("poisoned").get_or_insert(err);
                        }
                    }
                }
            }
            if !local.is_empty() {
                next.lock().expect("poisoned").append(&mut local);
            }
        });
        if let Some(e) = first_error.lock().expect("poisoned").take() {
            return Err(e);
        }
        frontier = next.into_inner().expect("poisoned");
        level += 1;
    }
    Ok((edges_traversed.into_inner(), level))
}

/// Picks a BFS source the way the paper does (a node with more than two
/// neighbours), deterministically.
fn pick_source(graph: &CsrGraph) -> u32 {
    graph
        .nodes_with_degree_at_least(3)
        .first()
        .copied()
        .unwrap_or(0)
}

/// Runs one (dataset, workload) pair functionally at `scale` using the given
/// access path, with the software cache sized to `cache_fraction` of the
/// generated edge list (the paper's 8 GB cache against ~30 GB datasets is
/// [`PAPER_CACHE_FRACTION`]).
///
/// The functional phase always runs against simulated Optane devices: the
/// cache/queue behaviour it measures does not depend on the device's speed,
/// which only enters through the analytic models applied afterwards.
pub fn measure_graph(
    dataset: &DatasetDescriptor,
    workload: GraphWorkload,
    cache_fraction: f64,
    scale: f64,
    access: AccessConfig,
    seed: u64,
) -> GraphMeasurement {
    measure_graph_with_workers(
        dataset,
        workload,
        cache_fraction,
        scale,
        access,
        seed,
        WORKERS,
    )
}

/// [`measure_graph`] with an explicit executor width. One worker makes the
/// functional counts fully deterministic (no cross-thread interleaving in the
/// cache), which the simulation-driven harnesses require for reproducible
/// output at a fixed seed.
#[allow(clippy::too_many_arguments)]
pub fn measure_graph_with_workers(
    dataset: &DatasetDescriptor,
    workload: GraphWorkload,
    cache_fraction: f64,
    scale: f64,
    access: AccessConfig,
    seed: u64,
    workers: usize,
) -> GraphMeasurement {
    let graph = dataset.generate(scale, seed);
    let mut config = experiment_config(
        SsdSpec::intel_optane_p5800x(),
        4,
        graph.edge_list_bytes(),
        cache_fraction,
        8,
    );
    if access == AccessConfig::NoCache {
        config.use_cache = false;
    }
    if access != AccessConfig::Optimized {
        config.warp_coalescing = false;
    }
    let run_line_bytes = config.cache_line_bytes;
    let system = BamSystem::new(config).expect("system");
    let edges = upload_edge_list(&system, &graph).expect("upload");
    system.reset_metrics();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), workers);
    let source = pick_source(&graph);
    let edges_traversed = match (workload, access) {
        (GraphWorkload::Bfs, AccessConfig::Optimized) => {
            bfs_bam(&graph.offsets, &edges, source, &exec)
                .expect("bfs")
                .edges_traversed
        }
        (GraphWorkload::Bfs, _) => {
            bfs_per_element(&graph.offsets, &edges, source, &exec)
                .expect("bfs")
                .0
        }
        (GraphWorkload::Cc, _) => {
            // CC always uses the run-based kernel; the naive/no-cache variants
            // differ only through the system configuration.
            cc_bam(&graph.offsets, &edges, &exec)
                .expect("cc")
                .edges_traversed
        }
    };
    GraphMeasurement {
        dataset: dataset.clone(),
        workload,
        scaled_edges: graph.num_edges(),
        edges_traversed,
        metrics: system.metrics(),
        run_line_bytes,
    }
}

/// Converts a measurement into a full-scale BaM execution breakdown for an
/// array of `num_ssds` devices of `spec`.
pub fn bam_breakdown(
    measurement: &GraphMeasurement,
    spec: SsdSpec,
    num_ssds: usize,
    queue_pairs: Option<u32>,
) -> ExecutionBreakdown {
    let mut storage = SsdArrayModel::prototype(spec, num_ssds);
    if let Some(qp) = queue_pairs {
        storage = storage.with_queue_pairs(qp);
    }
    let model = BamPerformanceModel::new(storage, FULL_SCALE_LINE, PARALLELISM);
    model.evaluate(
        &measurement.full_scale_metrics(),
        measurement.full_edges_traversed(),
    )
}

/// Converts a measurement into the Target-system breakdown with `num_ssds`
/// devices available for the initial file load.
pub fn target_breakdown(measurement: &GraphMeasurement, num_ssds: usize) -> ExecutionBreakdown {
    let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), num_ssds);
    TargetSystem::prototype(storage).evaluate(&measurement.full_scale_demand())
}

/// One bar group of Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Dataset short name (K, U, F, M, Uk).
    pub dataset: &'static str,
    /// Workload (BFS or CC).
    pub workload: GraphWorkload,
    /// Number of Optane SSDs (1 or 4).
    pub num_ssds: usize,
    /// Target-system breakdown.
    pub target: ExecutionBreakdown,
    /// BaM breakdown.
    pub bam: ExecutionBreakdown,
}

/// Figure 7: BFS and CC end-to-end time, Target vs BaM, 1 vs 4 Optane SSDs.
pub fn figure7(scale: f64, seed: u64) -> Vec<Fig7Row> {
    figure7_with_workers(scale, seed, WORKERS)
}

/// [`figure7`] with an explicit executor width. The `fig7` binary runs
/// single-worker so its output (and `BENCH_fig7.json`) is bit-identical per
/// seed — the same determinism contract `figure11` honours for the CI drift
/// gate.
pub fn figure7_with_workers(scale: f64, seed: u64, workers: usize) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for dataset in DatasetDescriptor::table3() {
        for workload in [GraphWorkload::Bfs, GraphWorkload::Cc] {
            if workload == GraphWorkload::Cc && !dataset.used_for_cc() {
                continue;
            }
            let m = measure_graph_with_workers(
                &dataset,
                workload,
                PAPER_CACHE_FRACTION,
                scale,
                AccessConfig::Optimized,
                seed,
                workers,
            );
            for num_ssds in [1usize, 4] {
                rows.push(Fig7Row {
                    dataset: dataset.short_name,
                    workload,
                    num_ssds,
                    target: target_breakdown(&m, num_ssds),
                    bam: bam_breakdown(&m, SsdSpec::intel_optane_p5800x(), num_ssds, None),
                });
            }
        }
    }
    rows
}

/// One bar of Figure 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Dataset short name.
    pub dataset: &'static str,
    /// Workload.
    pub workload: GraphWorkload,
    /// Access-path configuration.
    pub config: AccessConfig,
    /// Full-scale execution breakdown with 4 Optane SSDs.
    pub breakdown: ExecutionBreakdown,
    /// I/O amplification measured in the functional run.
    pub io_amplification: f64,
}

/// Figure 8: sources of improvement (no cache → naive cache → optimized) for
/// the given datasets.
pub fn figure8(datasets: &[&str], scale: f64, seed: u64) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for dataset in DatasetDescriptor::table3() {
        if !datasets.contains(&dataset.short_name) {
            continue;
        }
        for workload in [GraphWorkload::Bfs, GraphWorkload::Cc] {
            if workload == GraphWorkload::Cc && !dataset.used_for_cc() {
                continue;
            }
            for access in [
                AccessConfig::NoCache,
                AccessConfig::NaiveCache,
                AccessConfig::Optimized,
            ] {
                let m = measure_graph(
                    &dataset,
                    workload,
                    PAPER_CACHE_FRACTION,
                    scale,
                    access,
                    seed,
                );
                rows.push(Fig8Row {
                    dataset: dataset.short_name,
                    workload,
                    config: access,
                    breakdown: bam_breakdown(&m, SsdSpec::intel_optane_p5800x(), 4, None),
                    io_amplification: m.metrics.io_amplification(),
                });
            }
        }
    }
    rows
}

/// One bar of Figure 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Dataset short name.
    pub dataset: &'static str,
    /// Workload.
    pub workload: GraphWorkload,
    /// Slowdown of 4× Samsung PM1735 relative to 4× Intel Optane.
    pub pm1735_slowdown: f64,
    /// Slowdown of 4× Samsung 980pro relative to 4× Intel Optane.
    pub s980pro_slowdown: f64,
}

/// Figure 9: slowdown of BaM when the Optane SSDs are replaced by Samsung
/// PM1735 or 980pro devices.
pub fn figure9(scale: f64, seed: u64) -> Vec<Fig9Row> {
    let mut rows = Vec::new();
    for dataset in DatasetDescriptor::table3() {
        if dataset.short_name == "Uk" {
            continue; // the paper's Fig 9 covers K, U, F, M
        }
        for workload in [GraphWorkload::Bfs, GraphWorkload::Cc] {
            let m = measure_graph(
                &dataset,
                workload,
                PAPER_CACHE_FRACTION,
                scale,
                AccessConfig::Optimized,
                seed,
            );
            let optane = bam_breakdown(&m, SsdSpec::intel_optane_p5800x(), 4, None).total_s();
            let pm1735 = bam_breakdown(&m, SsdSpec::samsung_pm1735(), 4, None).total_s();
            let s980 = bam_breakdown(&m, SsdSpec::samsung_980pro(), 4, None).total_s();
            rows.push(Fig9Row {
                dataset: dataset.short_name,
                workload,
                pm1735_slowdown: pm1735 / optane,
                s980pro_slowdown: s980 / optane,
            });
        }
    }
    rows
}

/// One point of Figure 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Workload.
    pub workload: GraphWorkload,
    /// Cache capacity expressed in the paper's units (GB against the ~30 GB
    /// K dataset).
    pub cache_gb_equivalent: f64,
    /// Slowdown relative to the 8 GB-equivalent configuration.
    pub slowdown: f64,
    /// Measured cache hit rate.
    pub hit_rate: f64,
}

/// Figure 10: cache-capacity sensitivity on the K dataset. The sweep runs the
/// same functional workload with the cache sized to the same *fraction* of
/// the dataset as each of the paper's capacities (1–64 GB against ~30 GB).
pub fn figure10(scale: f64, seed: u64) -> Vec<Fig10Row> {
    let dataset = DatasetDescriptor::table3().remove(0); // K
    let capacities_gb = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let mut rows = Vec::new();
    for workload in [GraphWorkload::Bfs, GraphWorkload::Cc] {
        let mut totals = Vec::new();
        for &gb in &capacities_gb {
            let fraction = gb / 30.0;
            let m = measure_graph(
                &dataset,
                workload,
                fraction,
                scale,
                AccessConfig::Optimized,
                seed,
            );
            let total = bam_breakdown(&m, SsdSpec::intel_optane_p5800x(), 4, None).total_s();
            totals.push((gb, total, m.metrics.hit_rate()));
        }
        let baseline = totals
            .iter()
            .find(|(gb, _, _)| *gb == 8.0)
            .map(|(_, t, _)| *t)
            .unwrap();
        for (gb, total, hit_rate) in totals {
            rows.push(Fig10Row {
                workload,
                cache_gb_equivalent: gb,
                slowdown: total / baseline,
                hit_rate,
            });
        }
    }
    rows
}

/// One point of Figure 11: the analytic projection and the event-driven
/// simulation, side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Workload.
    pub workload: GraphWorkload,
    /// Total NVMe queue pairs across the 4-SSD array.
    pub queue_pairs: u32,
    /// Analytic slowdown relative to 128 queue pairs (closed-form envelope).
    pub slowdown: f64,
    /// Simulated slowdown relative to 128 queue pairs (`bam-sim` dynamics).
    pub sim_slowdown: f64,
    /// Analytic end-to-end seconds at full scale.
    pub analytic_total_s: f64,
    /// Simulated end-to-end seconds at full scale (GPU-side time analytic,
    /// storage phase event-driven).
    pub sim_total_s: f64,
    /// Simulated p99 request latency (µs) at this queue-pair count.
    pub sim_p99_us: f64,
}

/// Figure 11: sensitivity to the number of NVMe queue pairs on the K dataset.
///
/// The functional phase runs single-worker (deterministic counts); each sweep
/// point is then projected two ways: through the closed-form envelope
/// (`bam-timing`, as the seed reproduction did) and through the `bam-sim`
/// event engine, whose queue-pair serialization produces the knee
/// *dynamically* rather than as a `min()` term.
pub fn figure11(scale: f64, seed: u64) -> Vec<Fig11Row> {
    let dataset = DatasetDescriptor::table3().remove(0); // K
                                                         // The first entry is the baseline every slowdown is relative to.
    let sweep = [128u32, 96, 80, 64, 48, 40, 32];
    let mut rows = Vec::new();
    for workload in [GraphWorkload::Bfs, GraphWorkload::Cc] {
        let m = measure_graph_with_workers(
            &dataset,
            workload,
            PAPER_CACHE_FRACTION,
            scale,
            AccessConfig::Optimized,
            seed,
            1,
        );
        let full = m.full_scale_metrics();
        let per_qp = |qp: u32| {
            let analytic = bam_breakdown(&m, SsdSpec::intel_optane_p5800x(), 4, Some(qp));
            let (storage_s, report) = crate::sim_exp::simulated_storage_time(
                SsdSpec::intel_optane_p5800x(),
                4,
                qp,
                FULL_SCALE_LINE,
                full.read_requests,
                full.write_requests,
                seed,
            );
            let sim_total =
                ExecutionBreakdown::overlapped(analytic.compute_s, analytic.cache_api_s, storage_s)
                    .total_s();
            (analytic.total_s(), sim_total, report.latency.p99_us)
        };
        // The sweep leads with 128 queue pairs, which doubles as the
        // baseline — evaluate each point once.
        let points: Vec<(f64, f64, f64)> = sweep.iter().map(|&qp| per_qp(qp)).collect();
        let (analytic_baseline, sim_baseline, _) = points[0];
        for (&qp, &(analytic_total_s, sim_total_s, sim_p99_us)) in sweep.iter().zip(&points) {
            rows.push(Fig11Row {
                workload,
                queue_pairs: qp,
                slowdown: analytic_total_s / analytic_baseline,
                sim_slowdown: sim_total_s / sim_baseline,
                analytic_total_s,
                sim_total_s,
                sim_p99_us,
            });
        }
    }
    rows
}

/// Shared sanity check: a BFS functional run at reduced scale agrees with the
/// host reference (used by the binaries before printing results).
pub fn verify_bfs_against_reference(scale: f64, seed: u64) -> bool {
    let dataset = DatasetDescriptor::table3().remove(1); // U (uniform random)
    let graph = dataset.generate(scale, seed);
    let config = experiment_config(SsdSpec::intel_optane_p5800x(), 2, 4 << 20, 0.25, 4);
    let system = BamSystem::new(config).expect("system");
    let edges = upload_edge_list(&system, &graph).expect("upload");
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), WORKERS);
    let source = pick_source(&graph);
    let bam = bfs_bam(&graph.offsets, &edges, source, &exec).expect("bfs");
    let reference = bfs_reference(&graph, source);
    bam.distances == reference.distances
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast scale for unit tests (smaller than the harness default).
    const TEST_SCALE: f64 = 4.0e-6;

    #[test]
    fn figure7_shape_bam_competitive_with_target_at_4_ssds() {
        let rows = figure7(TEST_SCALE, 1);
        assert!(!rows.is_empty());
        // Average BFS speedup of BaM over Target with 4 SSDs ~1.0x (>=0.7),
        // and CC speedup >= BFS speedup (CC benefits more).
        let avg = |workload, ssds: usize| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.workload == workload && r.num_ssds == ssds)
                .map(|r| r.bam.speedup_vs(&r.target))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let bfs4 = avg(GraphWorkload::Bfs, 4);
        let cc4 = avg(GraphWorkload::Cc, 4);
        // Paper: BaM is on par with (1.00x, BFS) or better than (1.49x, CC)
        // the Target system once four SSDs match the x16 link.
        assert!(bfs4 > 0.8, "BFS speedup vs Target at 4 SSDs = {bfs4}");
        assert!(cc4 > 1.0, "CC speedup vs Target at 4 SSDs = {cc4}");
        // 4 SSDs are faster than 1 SSD for BaM.
        for r4 in rows.iter().filter(|r| r.num_ssds == 4) {
            let r1 = rows
                .iter()
                .find(|r| r.num_ssds == 1 && r.dataset == r4.dataset && r.workload == r4.workload)
                .unwrap();
            assert!(
                r1.bam.total_s() >= r4.bam.total_s(),
                "{} {:?}: 1 SSD must not beat 4",
                r4.dataset,
                r4.workload
            );
        }
    }

    #[test]
    fn figure8_shape_each_optimization_helps() {
        let rows = figure8(&["K"], TEST_SCALE, 2);
        let total = |cfg: AccessConfig, w: GraphWorkload| {
            rows.iter()
                .find(|r| r.config == cfg && r.workload == w)
                .map(|r| r.breakdown.total_s())
                .unwrap()
        };
        for w in [GraphWorkload::Bfs, GraphWorkload::Cc] {
            let none = total(AccessConfig::NoCache, w);
            let naive = total(AccessConfig::NaiveCache, w);
            let opt = total(AccessConfig::Optimized, w);
            assert!(none > naive, "{w:?}: cache must help ({none} vs {naive})");
            assert!(
                naive >= opt,
                "{w:?}: optimizations must help ({naive} vs {opt})"
            );
            assert!(none / opt > 3.0, "{w:?}: end-to-end gain {:.1}", none / opt);
        }
        // No-cache amplification is large (4-byte elements through 512B I/O).
        let nocache = rows
            .iter()
            .find(|r| r.config == AccessConfig::NoCache)
            .unwrap();
        assert!(nocache.io_amplification > 10.0);
    }

    #[test]
    fn figure9_shape_consumer_flash_slower_znand_close() {
        let rows = figure9(TEST_SCALE, 3);
        assert!(!rows.is_empty());
        for r in &rows {
            // Shape: consumer flash is clearly slower, Z-NAND stays close to
            // Optane. (The paper's magnitudes are 2.7-3.2x and ~1x; the
            // scaled runs are less storage-bound, so the gap narrows — see
            // EXPERIMENTS.md.)
            assert!(
                r.s980pro_slowdown > 1.15,
                "{} {:?}: 980pro slowdown {}",
                r.dataset,
                r.workload,
                r.s980pro_slowdown
            );
            assert!(r.pm1735_slowdown < r.s980pro_slowdown);
            assert!(
                r.pm1735_slowdown < 1.4,
                "PM1735 close to Optane: {}",
                r.pm1735_slowdown
            );
        }
    }

    #[test]
    fn figure10_shape_flat_small_caches() {
        let rows = figure10(TEST_SCALE, 4);
        let bfs: Vec<&Fig10Row> = rows
            .iter()
            .filter(|r| r.workload == GraphWorkload::Bfs)
            .collect();
        let at = |gb: f64| bfs.iter().find(|r| r.cache_gb_equivalent == gb).unwrap();
        // 1 GB performs like 8 GB (the paper sees no degradation; the scaled
        // run tolerates a modest band — see EXPERIMENTS.md).
        assert!(
            (at(1.0).slowdown - 1.0).abs() < 0.25,
            "slowdown at 1GB {}",
            at(1.0).slowdown
        );
        // A cache larger than the dataset is never slower.
        assert!(at(64.0).slowdown <= at(1.0).slowdown + 0.15);
    }

    #[test]
    fn figure11_shape_flat_then_degrades() {
        let rows = figure11(TEST_SCALE, 5);
        let bfs: Vec<&Fig11Row> = rows
            .iter()
            .filter(|r| r.workload == GraphWorkload::Bfs)
            .collect();
        let at = |qp: u32| bfs.iter().find(|r| r.queue_pairs == qp).unwrap();
        assert!(
            (at(64).slowdown - 1.0).abs() < 0.1,
            "64 QPs {}",
            at(64).slowdown
        );
        assert!(
            at(32).slowdown >= at(128).slowdown,
            "32 QPs must not be faster than 128"
        );
        // The event-driven projection reproduces the same shape: flat at 64
        // queue pairs, never faster when starved, and its absolute seconds
        // stay within 25% of the closed-form envelope.
        assert!(
            (at(64).sim_slowdown - 1.0).abs() < 0.15,
            "sim 64 QPs {}",
            at(64).sim_slowdown
        );
        assert!(at(32).sim_slowdown >= at(128).sim_slowdown * 0.99);
        for r in &bfs {
            let ratio = r.sim_total_s / r.analytic_total_s;
            assert!(
                (0.75..1.35).contains(&ratio),
                "qp {}: sim {}s vs analytic {}s",
                r.queue_pairs,
                r.sim_total_s,
                r.analytic_total_s
            );
            assert!(r.sim_p99_us > 0.0);
        }
    }

    #[test]
    fn figure11_is_deterministic_at_fixed_seed() {
        let a = figure11(TEST_SCALE, 5);
        let b = figure11(TEST_SCALE, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slowdown, y.slowdown);
            assert_eq!(x.sim_slowdown, y.sim_slowdown);
            assert_eq!(x.sim_total_s, y.sim_total_s);
        }
    }

    #[test]
    fn bfs_verification_passes() {
        assert!(verify_bfs_against_reference(TEST_SCALE, 6));
    }
}
