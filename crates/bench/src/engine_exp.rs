//! Engine-throughput experiment: the sequential (inline) event engine vs the
//! sharded engine across worker counts, on one workload.
//!
//! The workload is the multi-tenant sweep's hardest cell scaled up: eight
//! tenants — seven steady Poisson streams plus the MMPP bursty antagonist —
//! co-running on the queue-pair-starved 4-SSD Optane array under shared
//! queue pairs. Open-loop tenants pre-schedule their whole arrival streams,
//! which is exactly where the engines differ mechanically: the inline engine
//! heap-loads every future arrival up front, while the sharded spine feeds
//! arrivals from a time-sorted cursor and keeps its heap sized by in-flight
//! work only (see DESIGN.md, "Parallel engine").
//!
//! Every sweep point first asserts its `MultiTenantReport` is bit-identical
//! to the inline run's — a throughput number from a wrong simulation is
//! worthless — then reports events/s. Wall-clock fields are
//! machine-dependent; the deterministic fields (events, completions,
//! histogram percentiles) are identical across runs and machines.

use std::time::Instant;

use bam_nvme_sim::SsdSpec;
use bam_sim::{engine, MultiTenantReport, QueuePairPolicy, SimConfig, TenantSpec};

use crate::sim_exp::{bursty_antagonist, steady_tenant, tenant_config};

/// Seed of the engine sweep.
pub const ENGINE_SEED: u64 = 29;

/// Requests each steady tenant issues at full scale. The antagonist issues
/// ~3.6× more (its MMPP mean rate over the steady rate), so the full
/// workload is ~0.5M requests / ~3.5M events — long enough that per-run
/// setup noise is invisible in the events/s figure.
pub const ENGINE_STEADY_REQUESTS: u64 = 60_000;

/// Steady tenants co-running with the antagonist (8 tenants total — one per
/// queue pair of the starved array).
pub const ENGINE_STEADY_TENANTS: u32 = 7;

/// Worker counts the sharded engine is swept over.
pub const ENGINE_WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Timed repetitions per sweep point; the fastest is reported. Minimum-of-N
/// is the standard throughput estimator: the minimum is the run least
/// perturbed by scheduler noise, which dominates on small hosts where the
/// shard threads oversubscribe the cores.
pub const ENGINE_REPS: usize = 3;

/// One sweep point: one engine at one worker count on the common workload.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// `"inline"` or `"sharded"`.
    pub engine: &'static str,
    /// Accounting workers (0 for the inline engine, which has none).
    pub workers: usize,
    /// Requests completed — identical at every point.
    pub completed: u64,
    /// Discrete events processed — identical at every point.
    pub events: u64,
    /// Overall p99 latency in nanoseconds, from the merged histogram —
    /// identical at every point (the bit-identity contract, spot-checked
    /// here and asserted in full on the report).
    pub p99_ns: u64,
    /// Wall-clock seconds of the run (machine-dependent).
    pub wall_s: f64,
    /// Events processed per wall-clock second (machine-dependent).
    pub events_per_sec: f64,
    /// This point's events/s over the inline engine's (machine-dependent).
    pub speedup: f64,
}

/// The common workload: the 8-tenant antagonist scenario on the
/// queue-pair-starved Optane array.
pub fn engine_workload(seed: u64, steady_requests: u64) -> (SimConfig, Vec<TenantSpec>) {
    let config = tenant_config(&SsdSpec::intel_optane_p5800x(), seed);
    let mut tenants: Vec<TenantSpec> = (0..ENGINE_STEADY_TENANTS)
        .map(|i| steady_tenant(i, steady_requests))
        .collect();
    tenants.push(bursty_antagonist(steady_requests));
    (config, tenants)
}

/// Runs the point [`ENGINE_REPS`] times and returns the last report with
/// the fastest wall time (the runs are deterministic, so the reports are
/// interchangeable).
fn timed(run: impl Fn() -> MultiTenantReport) -> (MultiTenantReport, f64) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..ENGINE_REPS {
        let start = Instant::now();
        let r = run();
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (report.expect("ENGINE_REPS > 0"), best)
}

fn row(engine: &'static str, workers: usize, report: &MultiTenantReport, wall_s: f64) -> EngineRow {
    EngineRow {
        engine,
        workers,
        completed: report.overall.completed,
        events: report.overall.events,
        p99_ns: report.overall.histogram.value_at_quantile(0.99),
        wall_s,
        events_per_sec: report.overall.events as f64 / wall_s.max(1e-9),
        speedup: 1.0, // filled in by the sweep, relative to the inline row
    }
}

/// The full sweep: the inline engine, then the sharded engine at each
/// [`ENGINE_WORKER_SWEEP`] count, on the same workload.
///
/// # Panics
///
/// Panics if any sharded report differs from the inline report in any field
/// — bit-identity is the precondition for comparing their throughput.
pub fn engine_sweep(seed: u64, steady_requests: u64) -> Vec<EngineRow> {
    let (config, tenants) = engine_workload(seed, steady_requests);
    let policy = QueuePairPolicy::Shared;
    // Untimed warm-up: page in the binary and prime the allocator so the
    // first timed point doesn't pay one-time costs the others skip.
    engine::run_tenants(&config, &tenants, policy);
    let (baseline, inline_wall) = timed(|| engine::run_tenants(&config, &tenants, policy));
    let mut rows = vec![row("inline", 0, &baseline, inline_wall)];
    for workers in ENGINE_WORKER_SWEEP {
        let (report, wall) =
            timed(|| engine::run_tenants_sharded(&config, &tenants, policy, workers));
        assert_eq!(
            baseline, report,
            "sharded engine at {workers} workers diverged from the inline engine"
        );
        rows.push(row("sharded", workers, &report, wall));
    }
    let inline_eps = rows[0].events_per_sec;
    for r in &mut rows {
        r.speedup = r.events_per_sec / inline_eps;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_bit_identical_and_counts_events() {
        // Reduced scale; the internal assert_eq! already enforces report
        // identity, so a completed sweep *is* the equivalence result.
        let rows = engine_sweep(ENGINE_SEED, 1_200);
        assert_eq!(rows.len(), 1 + ENGINE_WORKER_SWEEP.len());
        let first = &rows[0];
        assert_eq!(first.engine, "inline");
        assert!(first.events > first.completed, "several events per request");
        for r in &rows {
            assert_eq!(r.completed, first.completed);
            assert_eq!(r.events, first.events);
            assert_eq!(r.p99_ns, first.p99_ns);
            assert!(r.wall_s > 0.0 && r.events_per_sec > 0.0);
        }
    }

    #[test]
    fn workload_is_deterministic_across_sweeps() {
        let a = engine_sweep(ENGINE_SEED, 800);
        let b = engine_sweep(ENGINE_SEED, 800);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.events, y.events);
            assert_eq!(x.p99_ns, y.p99_ns);
        }
    }
}
