//! Remaining experiments: Tables 2 and 3, Figures 13 and 15, and the
//! vectorAdd evaluation (§5.4).

use serde::{Deserialize, Serialize};

use bam_baselines::{BamPerformanceModel, ProactiveTiling, TargetSystem, UvmModel};
use bam_gpu_sim::{GpuExecutor, GpuSpec, OccupancyModel, RegisterUsage};
use bam_nvme_sim::SsdSpec;
use bam_timing::cost::Table2Row;
use bam_timing::{CostModel, SsdArrayModel};
use bam_workloads::graph::DatasetDescriptor;
use bam_workloads::vectoradd::{setup, vectoradd_bam, vectoradd_demand};

use crate::graph_exp::{measure_graph, AccessConfig, GraphWorkload};
use crate::scale::{experiment_config, PAPER_CACHE_FRACTION, WORKERS};

/// Table 2: the SSD technology comparison.
pub fn table2() -> Vec<Table2Row> {
    CostModel::default().table2_rows()
}

/// One row of the regenerated Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Dataset short name.
    pub short_name: &'static str,
    /// Dataset full name.
    pub name: &'static str,
    /// Original node count.
    pub original_nodes: u64,
    /// Original edge count.
    pub original_edges: u64,
    /// Original edge-list size in GB.
    pub original_size_gb: f64,
    /// Nodes generated at the harness scale.
    pub generated_nodes: u32,
    /// Edges generated at the harness scale (directed, post-symmetrization).
    pub generated_edges: u64,
}

/// Table 3: the graph datasets, original sizes plus the scaled instances the
/// functional runs use.
pub fn table3(scale: f64, seed: u64) -> Vec<Table3Row> {
    DatasetDescriptor::table3()
        .into_iter()
        .map(|d| {
            let g = d.generate(scale, seed);
            Table3Row {
                short_name: d.short_name,
                name: d.name,
                original_nodes: d.original_nodes,
                original_edges: d.original_edges,
                original_size_gb: d.original_size_gb,
                generated_nodes: g.num_nodes(),
                generated_edges: g.num_edges(),
            }
        })
        .collect()
}

/// Figure 13: per-thread register usage with and without BaM.
pub fn figure13() -> Vec<RegisterUsage> {
    OccupancyModel::default().figure13()
}

/// One dataset's entry in Figure 15.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Row {
    /// Dataset short name.
    pub dataset: &'static str,
    /// UVM effective bandwidth in GB/s.
    pub uvm_gbps: f64,
    /// ZeroCopy (Target) effective bandwidth in GB/s.
    pub zerocopy_gbps: f64,
    /// Measured peak of the PCIe Gen4 ×16 link in GB/s.
    pub peak_gbps: f64,
}

/// Figure 15: UVM vs ZeroCopy host-memory bandwidth during BFS, per dataset.
pub fn figure15(scale: f64, seed: u64) -> Vec<Fig15Row> {
    let uvm = {
        // UVM migrates in larger-than-4 KB chunks once its prefetcher kicks
        // in; the paper's measured average corresponds to ~32 KB effective
        // granularity (see `bam-baselines::uvm` for the calibration note).
        let mut m = UvmModel::prototype();
        m.page_bytes = 32 * 1024;
        m
    };
    let mut rows = Vec::new();
    for dataset in DatasetDescriptor::table3() {
        let m = measure_graph(
            &dataset,
            GraphWorkload::Bfs,
            PAPER_CACHE_FRACTION,
            scale,
            AccessConfig::Optimized,
            seed,
        );
        let demand = m.full_scale_demand();
        let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let target = TargetSystem::prototype(storage);
        rows.push(Fig15Row {
            dataset: dataset.short_name,
            uvm_gbps: uvm.effective_bandwidth_gbps(&demand),
            zerocopy_gbps: target.zerocopy_bandwidth_gbps(&demand),
            peak_gbps: target.gpu_link.effective_bandwidth_gbps(),
        });
    }
    rows
}

/// Result of the vectorAdd evaluation (§5.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorAddEval {
    /// Elements per input vector in the full-scale experiment.
    pub full_elements: u64,
    /// BaM end-to-end seconds (full scale, 4 Optane SSDs).
    pub bam_seconds: f64,
    /// Proactive-tiling baseline seconds.
    pub tiling_seconds: f64,
    /// BaM slowdown relative to the baseline (the paper reports 1.51×).
    pub bam_slowdown: f64,
}

/// §5.4: vectorAdd through BaM vs the proactive-tiling baseline.
///
/// `functional_elements` elements are run through the real stack to measure
/// per-element cache/I/O behaviour; the result is scaled to `full_elements`
/// (the paper uses 4 billion).
pub fn vectoradd_eval(functional_elements: u64, full_elements: u64) -> VectorAddEval {
    let config = experiment_config(
        SsdSpec::intel_optane_p5800x(),
        4,
        functional_elements * 8 * 4,
        0.25,
        8,
    );
    let line = config.cache_line_bytes;
    let system = bam_core::BamSystem::new(config).expect("system");
    let (a, b, out) = setup(&system, functional_elements).expect("setup");
    system.reset_metrics();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), WORKERS);
    vectoradd_bam(&system, &a, &b, &out, &exec).expect("vectoradd");
    let metrics = system.metrics();

    // Scale the measured counts to the full experiment.
    let f = full_elements as f64 / functional_elements as f64;
    let full_line = 4096u64;
    let line_ratio = line as f64 / full_line as f64;
    let full_metrics = bam_core::MetricsSnapshot {
        cache_hits: (metrics.cache_hits as f64 * f * line_ratio) as u64,
        cache_misses: (metrics.cache_misses as f64 * f * line_ratio) as u64,
        probe_attempts: (metrics.probe_attempts as f64 * f * line_ratio) as u64,
        read_requests: (metrics.bytes_read as f64 * f / full_line as f64) as u64,
        write_requests: (metrics.bytes_written as f64 * f / full_line as f64) as u64,
        bytes_read: (metrics.bytes_read as f64 * f) as u64,
        bytes_written: (metrics.bytes_written as f64 * f) as u64,
        bytes_requested: (metrics.bytes_requested as f64 * f) as u64,
        ..Default::default()
    };
    let model = BamPerformanceModel::new(
        SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4),
        full_line,
        1 << 17,
    );
    // BaM exposes the write-back latency (no read/write overlap, §5.4): add
    // the write-back time serially rather than overlapping it.
    let reads_only = bam_core::MetricsSnapshot {
        write_requests: 0,
        ..full_metrics
    };
    let read_breakdown = model.evaluate(&reads_only, full_elements);
    let write_time = model
        .storage
        .write_time_s(full_metrics.write_requests, full_line, 1 << 17);
    let bam_seconds = read_breakdown.total_s() + write_time;

    let demand = vectoradd_demand(full_elements, full_line, 1 << 17);
    let mut tiling = ProactiveTiling::new(
        Some(SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4)),
        demand.dataset_bytes / demand.phases,
    );
    // The vectorAdd baseline stages flat binary tiles: its CPU cost is a
    // handful of pointer setups per tile, not the per-MiB row-group
    // marshalling the RAPIDS baseline pays.
    tiling.cpu.staging_overhead_us_per_mib = 2.0;
    let tiling_seconds = tiling.evaluate(&demand).total_s();
    VectorAddEval {
        full_elements,
        bam_seconds,
        tiling_seconds,
        bam_slowdown: bam_seconds / tiling_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_cost_gains() {
        let rows = table2();
        assert_eq!(rows.len(), 4);
        let nand = rows.iter().find(|r| r.name.contains("980")).unwrap();
        assert!((20.0..23.0).contains(&nand.gain));
    }

    #[test]
    fn table3_generates_scaled_instances() {
        let rows = table3(4.0e-6, 1);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.generated_nodes >= 16);
            assert!(r.generated_edges > 0);
        }
    }

    #[test]
    fn figure13_bam_adds_registers() {
        let rows = figure13();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.with_bam >= r.without_bam));
    }

    #[test]
    fn figure15_shape_uvm_well_below_zerocopy_and_peak() {
        let rows = figure15(4.0e-6, 2);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.uvm_gbps < r.peak_gbps * 0.75,
                "{}: uvm {}",
                r.dataset,
                r.uvm_gbps
            );
            assert!(
                r.zerocopy_gbps > r.uvm_gbps,
                "{}: zerocopy must beat uvm",
                r.dataset
            );
            assert!(r.zerocopy_gbps <= r.peak_gbps + 1e-9);
        }
    }

    #[test]
    fn vectoradd_shape_bam_slower_than_tiling_but_close() {
        let e = vectoradd_eval(20_000, 4_000_000_000);
        assert!(e.bam_slowdown > 1.0, "slowdown {}", e.bam_slowdown);
        assert!(e.bam_slowdown < 3.0, "slowdown {}", e.bam_slowdown);
    }
}
