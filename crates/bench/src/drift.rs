//! The bench-regression gate: parse two `BENCH_*.json` trajectory files and
//! diff them with tolerances.
//!
//! The offline `serde` shim has no deserializer, so this module carries a
//! minimal hand-rolled JSON parser sufficient for the files `jsonout`
//! emits (objects, arrays, strings, numbers, booleans, null). Comparison
//! rules: deterministic fields (strings, booleans, nulls, and values both
//! sides render as integers) must match exactly; anything floating-point is
//! allowed a relative tolerance, so intentional model refinements within the
//! band don't fail the build while silent drift beyond it does.

use std::fmt;

/// A parsed JSON value. Number literals keep their shape: an integer literal
/// parses as `Int`, anything with a fraction or exponent as `Float`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal.
    Int(i64),
    /// A fractional or exponent literal (or an integer too large for `i64`).
    Float(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a number, when it is one.
    fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Int(_) => "int",
            JsonValue::Float(_) => "float",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(v) => write!(f, "{v}"),
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::Float(v) => write!(f, "{v}"),
            JsonValue::Str(v) => write!(f, "\"{v}\""),
            JsonValue::Array(v) => write!(f, "[..{} items..]", v.len()),
            JsonValue::Object(v) => write!(f, "{{..{} fields..}}", v.len()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.error("bad \\u hex"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u hex"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the emitter writes valid UTF-8).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            // Integer literals too large for i64 degrade to float.
            text.parse::<i64>().map(JsonValue::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(JsonValue::Float)
                    .map_err(|_| self.error("invalid number"))
            })
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => self.literal("null", JsonValue::Null),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(fields));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a byte-positioned message on malformed input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

/// Compares `current` against `baseline` and returns the list of drifts.
///
/// * Strings, booleans, nulls, and values *both* sides render as integer
///   literals must match exactly (the deterministic fields of a seeded run).
/// * Any comparison involving a float literal passes when the relative
///   difference is within `rel_tol` (values below 1e-12 compare as equal —
///   noise floor).
/// * Objects must have identical key sets; arrays identical lengths.
pub fn compare(baseline: &JsonValue, current: &JsonValue, rel_tol: f64) -> Vec<String> {
    let mut diffs = Vec::new();
    compare_at(baseline, current, rel_tol, "$", &mut diffs);
    diffs
}

fn floats_close(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    scale < 1e-12 || (a - b).abs() <= rel_tol * scale
}

fn compare_at(
    baseline: &JsonValue,
    current: &JsonValue,
    rel_tol: f64,
    path: &str,
    diffs: &mut Vec<String>,
) {
    use JsonValue::*;
    match (baseline, current) {
        (Object(b), Object(c)) => {
            for (key, bv) in b {
                match c.iter().find(|(k, _)| k == key) {
                    Some((_, cv)) => compare_at(bv, cv, rel_tol, &format!("{path}.{key}"), diffs),
                    None => diffs.push(format!("{path}.{key}: missing from current")),
                }
            }
            for (key, _) in c {
                if !b.iter().any(|(k, _)| k == key) {
                    diffs.push(format!("{path}.{key}: not in baseline"));
                }
            }
        }
        (Array(b), Array(c)) => {
            if b.len() != c.len() {
                diffs.push(format!(
                    "{path}: array length {} vs baseline {}",
                    c.len(),
                    b.len()
                ));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                compare_at(bv, cv, rel_tol, &format!("{path}[{i}]"), diffs);
            }
        }
        // Both integer literals: a deterministic field — exact.
        (Int(b), Int(c)) => {
            if b != c {
                diffs.push(format!("{path}: {c} vs baseline {b} (exact field)"));
            }
        }
        // A float on either side: tolerance applies. (The emitter always
        // renders float fields with a decimal point, but keep the mixed-shape
        // arm tolerant for baselines written before that guarantee.)
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let (b, c) = (baseline.as_f64().unwrap(), current.as_f64().unwrap());
            if !floats_close(b, c, rel_tol) {
                diffs.push(format!(
                    "{path}: {c} vs baseline {b} ({:+.2}% > {:.2}% tolerance)",
                    (c / b - 1.0) * 100.0,
                    rel_tol * 100.0
                ));
            }
        }
        (Str(b), Str(c)) => {
            if b != c {
                diffs.push(format!("{path}: \"{c}\" vs baseline \"{b}\""));
            }
        }
        (Bool(b), Bool(c)) => {
            if b != c {
                diffs.push(format!("{path}: {c} vs baseline {b}"));
            }
        }
        (Null, Null) => {}
        _ => diffs.push(format!(
            "{path}: type {} vs baseline {}",
            current.type_name(),
            baseline.type_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(s: &str) -> JsonValue {
        parse(s).unwrap()
    }

    #[test]
    fn parses_the_emitter_dialect() {
        let v = obj(
            "{\"bench\": \"fig4\", \"seed\": 9, \"ok\": true, \"bad\": null, \
             \"rows\": [{\"x\": 1.5, \"y\": -2e-3, \"s\": \"a\\\"b\\u0041\"}]}",
        );
        let JsonValue::Object(fields) = &v else {
            panic!("not an object")
        };
        assert_eq!(fields[0].1, JsonValue::Str("fig4".into()));
        assert_eq!(fields[1].1, JsonValue::Int(9));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1, JsonValue::Null);
        let JsonValue::Array(rows) = &fields[4].1 else {
            panic!("not an array")
        };
        let JsonValue::Object(row) = &rows[0] else {
            panic!("not an object")
        };
        assert_eq!(row[0].1, JsonValue::Float(1.5));
        assert_eq!(row[1].1, JsonValue::Float(-0.002));
        assert_eq!(row[2].1, JsonValue::Str("a\"bA".into()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn identical_documents_have_no_drift() {
        let s = "{\"a\": 1, \"b\": [1.25, \"x\"], \"c\": {\"d\": null}}";
        assert!(compare(&obj(s), &obj(s), 0.05).is_empty());
    }

    #[test]
    fn float_drift_within_tolerance_passes() {
        let b = obj("{\"miops\": 5.1}");
        let c = obj("{\"miops\": 5.2}");
        assert!(compare(&b, &c, 0.05).is_empty());
    }

    #[test]
    fn float_drift_beyond_tolerance_fails() {
        // The acceptance demonstration: a perturbed baseline must trip the
        // gate once the perturbation exceeds the tolerance band.
        let b = obj("{\"miops\": 5.1}");
        let c = obj("{\"miops\": 5.9}");
        let diffs = compare(&b, &c, 0.05);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("miops"), "{}", diffs[0]);
        // ... and passes when the band is widened.
        assert!(compare(&b, &c, 0.20).is_empty());
    }

    #[test]
    fn integer_fields_are_exact() {
        let b = obj("{\"in_flight\": 66}");
        let c = obj("{\"in_flight\": 67}");
        // Within any float tolerance, but ints are deterministic — fail.
        assert_eq!(compare(&b, &c, 0.5).len(), 1);
    }

    #[test]
    fn integral_float_rendering_still_gets_tolerance() {
        // `6.0` renders as `6`; a regenerated `6.02` must not hard-fail.
        let b = obj("{\"peak\": 6}");
        let c = obj("{\"peak\": 6.02}");
        assert!(compare(&b, &c, 0.05).is_empty());
        assert_eq!(
            compare(&obj("{\"peak\": 6}"), &obj("{\"peak\": 7.5}"), 0.05).len(),
            1
        );
    }

    #[test]
    fn structural_changes_are_reported() {
        let b = obj("{\"rows\": [1, 2], \"seed\": 9}");
        assert_eq!(
            compare(&b, &obj("{\"rows\": [1], \"seed\": 9}"), 0.1).len(),
            1
        );
        assert_eq!(compare(&b, &obj("{\"rows\": [1, 2]}"), 0.1).len(), 1);
        assert_eq!(
            compare(&b, &obj("{\"rows\": [1, 2], \"seed\": 9, \"x\": 1}"), 0.1).len(),
            1
        );
        assert_eq!(
            compare(&b, &obj("{\"rows\": \"oops\", \"seed\": 9}"), 0.1).len(),
            1
        );
        // String drift is exact.
        let names = compare(
            &obj("{\"bench\": \"fig4\"}"),
            &obj("{\"bench\": \"fig5\"}"),
            0.9,
        );
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn tiny_absolute_values_do_not_amplify_relative_noise() {
        let b = obj("{\"x\": 1e-14}");
        let c = obj("{\"x\": 3e-14}");
        assert!(compare(&b, &c, 0.05).is_empty(), "below the noise floor");
    }
}
