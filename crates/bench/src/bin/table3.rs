//! Regenerates Table 3: graph datasets (original sizes and the scaled
//! instances used by the functional runs).
use bam_bench::{misc_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows: Vec<Vec<String>> = misc_exp::table3(GRAPH_SCALE, 42)
        .into_iter()
        .map(|r| {
            vec![
                format!("{} ({})", r.name, r.short_name),
                format!("{:.1}M", r.original_nodes as f64 / 1e6),
                format!("{:.2}B", r.original_edges as f64 / 1e9),
                format!("{:.1}", r.original_size_gb),
                format!("{}", r.generated_nodes),
                format!("{}", r.generated_edges),
            ]
        })
        .collect();
    print_table(
        "Table 3: graph datasets (original -> generated at functional scale)",
        &[
            "Graph",
            "Nodes",
            "Edges",
            "Size (GB)",
            "Gen. nodes",
            "Gen. edges",
        ],
        &rows,
    );
}
