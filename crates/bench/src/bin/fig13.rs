//! Regenerates Figure 13: per-thread register usage with and without BaM.
use bam_bench::{misc_exp, print_table};

fn main() {
    let rows = misc_exp::figure13();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.application.clone(),
                r.without_bam.to_string(),
                r.with_bam.to_string(),
                if r.spills_with_bam { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 13: per-thread register usage",
        &["Application", "Without BaM", "With BaM", "Spills"],
        &table,
    );
}
