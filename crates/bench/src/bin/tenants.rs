//! Multi-tenant interference and fairness sweep (event-driven).
//!
//! 1/2/4/8 tenants — all steady, or with the last replaced by an MMPP bursty
//! antagonist — co-run on a queue-pair-starved 4-SSD array of each Table-2
//! device, under shared vs weighted-fair queue-pair allocation. Each row
//! reports a tenant's co-run tail percentiles next to its solo baseline and
//! the interference ratio (co-run p99 / solo p99; 1.0 = perfect isolation).
//! Pass `--json` to also write `BENCH_tenants.json`, `--timeline-out
//! <path>` to export the flagship bursty-shared run's full timeline
//! document (windowed telemetry, per-resource blame decomposition, and
//! per-tenant SLO outcomes — see `bam_bench::timeline_exp`), and
//! `--workers N` to run the sweep on the sharded engine (default 1 =
//! inline; the output is bit-identical at every worker count).
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::timeline_exp::{timeline_body, timeline_run, TIMELINE_SEED};
use bam_bench::{print_table, sim_exp, timeline_out_path, workers_arg};

const SEED: u64 = 13;

fn main() {
    let workers = workers_arg();
    let rows = sim_exp::tenant_matrix_with_workers(SEED, workers);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                r.policy.to_string(),
                r.scenario.to_string(),
                r.num_tenants.to_string(),
                r.tenant.clone(),
                r.queue_pairs.to_string(),
                format!("{:.0}", r.throughput_per_s / 1e3),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.p999_us),
                format!("{:.1}", r.solo_p99_us),
                format!("{:.2}x", r.interference),
            ]
        })
        .collect();
    print_table(
        "Multi-tenant fairness: 4-SSD arrays, 2 queue pairs per SSD, steady Poisson tenants \
         vs an MMPP bursty antagonist, shared vs weighted-fair queue pairs",
        &[
            "Device",
            "Policy",
            "Scenario",
            "Tenants",
            "Tenant",
            "QPs",
            "KIOPS",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "Solo p99",
            "Interference",
        ],
        &table,
    );
    println!(
        "\nCheck: under shared queue pairs the antagonist's bursts inflate every steady \
         tenant's p99 (interference >> 1); under weighted-fair allocation the backlog stays \
         in the antagonist's own partition and steady interference sits near 1.0x."
    );
    if let Some(path) = timeline_out_path() {
        let (report, telemetry) = timeline_run(TIMELINE_SEED, workers);
        let body = timeline_body(TIMELINE_SEED, &report, &telemetry);
        std::fs::write(&path, format!("{body}\n")).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "tenants")
            .int("seed", SEED)
            .int("access_bytes", sim_exp::TENANT_ACCESS_BYTES)
            .int("steady_requests", sim_exp::TENANT_STEADY_REQUESTS)
            .num("steady_rate_per_s", sim_exp::TENANT_STEADY_RATE_PER_S)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .str("device", &r.device)
                        .str("policy", r.policy)
                        .str("scenario", r.scenario)
                        .int("num_tenants", r.num_tenants as u64)
                        .str("tenant", &r.tenant)
                        .int("weight", u64::from(r.weight))
                        .int("queue_pairs", u64::from(r.queue_pairs))
                        .int("completed", r.completed)
                        .num("throughput_per_s", r.throughput_per_s)
                        .num("mean_us", r.mean_us)
                        .num("p50_us", r.p50_us)
                        .num("p95_us", r.p95_us)
                        .num("p99_us", r.p99_us)
                        .num("p999_us", r.p999_us)
                        .num("solo_p99_us", r.solo_p99_us)
                        .num("interference", r.interference)
                        .build()
                })),
            )
            .build();
        emit_bench_json("tenants", &body);
    }
}
