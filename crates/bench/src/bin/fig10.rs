//! Regenerates Figure 10: cache-capacity sensitivity (K dataset).
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows = graph_exp::figure10(GRAPH_SCALE, 10);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.label().to_string(),
                format!("{}GB", r.cache_gb_equivalent),
                format!("{:.2}x", r.slowdown),
                format!("{:.0}%", r.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 10: BaM cache capacity sweep (K dataset, relative to 8GB)",
        &["Workload", "Cache size", "Slowdown", "Hit rate"],
        &table,
    );
}
