//! Regenerates Figure 7: BFS/CC end-to-end time, Target vs BaM, 1 vs 4 SSDs.
//!
//! The functional phase runs single-worker so the output is bit-identical
//! per seed (the CI drift gate diffs it). Pass `--json` to also write
//! `BENCH_fig7.json`.
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

const SEED: u64 = 7;

fn main() {
    assert!(
        graph_exp::verify_bfs_against_reference(GRAPH_SCALE, SEED),
        "functional BFS must match the host reference before reporting times"
    );
    let rows = graph_exp::figure7_with_workers(GRAPH_SCALE, SEED, 1);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}_T/B_{}I", r.dataset, r.num_ssds),
                r.workload.label().to_string(),
                format!("{:.2}", r.target.total_s()),
                format!("{:.2}", r.bam.total_s()),
                format!("{:.2}", r.bam.compute_s),
                format!("{:.2}", r.bam.cache_api_s),
                format!("{:.2}", r.bam.storage_io_s),
                format!("{:.2}x", r.bam.speedup_vs(&r.target)),
            ]
        })
        .collect();
    print_table(
        "Figure 7: graph analytics, Target (T) vs BaM (B), 1 and 4 Intel Optane SSDs (seconds)",
        &[
            "Config",
            "Workload",
            "Target",
            "BaM",
            "BaM compute",
            "BaM cache",
            "BaM storage",
            "Speedup",
        ],
        &table,
    );
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "fig7")
            .int("seed", SEED)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .str("dataset", r.dataset)
                        .str("workload", r.workload.label())
                        .int("num_ssds", r.num_ssds as u64)
                        .num("target_total_s", r.target.total_s())
                        .num("bam_total_s", r.bam.total_s())
                        .num("bam_compute_s", r.bam.compute_s)
                        .num("bam_cache_s", r.bam.cache_api_s)
                        .num("bam_storage_s", r.bam.storage_io_s)
                        .num("speedup", r.bam.speedup_vs(&r.target))
                        .build()
                })),
            )
            .build();
        emit_bench_json("fig7", &body);
    }
}
