//! Regenerates Figure 7: BFS/CC end-to-end time, Target vs BaM, 1 vs 4 SSDs.
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    assert!(
        graph_exp::verify_bfs_against_reference(GRAPH_SCALE, 7),
        "functional BFS must match the host reference before reporting times"
    );
    let rows = graph_exp::figure7(GRAPH_SCALE, 7);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}_T/B_{}I", r.dataset, r.num_ssds),
                r.workload.label().to_string(),
                format!("{:.2}", r.target.total_s()),
                format!("{:.2}", r.bam.total_s()),
                format!("{:.2}", r.bam.compute_s),
                format!("{:.2}", r.bam.cache_api_s),
                format!("{:.2}", r.bam.storage_io_s),
                format!("{:.2}x", r.bam.speedup_vs(&r.target)),
            ]
        })
        .collect();
    print_table(
        "Figure 7: graph analytics, Target (T) vs BaM (B), 1 and 4 Intel Optane SSDs (seconds)",
        &[
            "Config",
            "Workload",
            "Target",
            "BaM",
            "BaM compute",
            "BaM cache",
            "BaM storage",
            "Speedup",
        ],
        &table,
    );
}
