//! Regenerates Figure 9: slowdown with Samsung PM1735 and 980pro SSDs.
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows = graph_exp::figure9(GRAPH_SCALE, 9);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.workload.label().to_string(),
                format!("{:.2}x", r.pm1735_slowdown),
                format!("{:.2}x", r.s980pro_slowdown),
            ]
        })
        .collect();
    print_table(
        "Figure 9: slowdown vs 4x Intel Optane",
        &["Graph", "Workload", "Datacenter PM1735", "Consumer 980pro"],
        &table,
    );
}
