//! Regenerates Figure 12: data-analytics queries, BaM vs RAPIDS.
use bam_bench::{analytics_exp, print_table, scale::TAXI_ROWS};

fn main() {
    let rows = analytics_exp::figure12(TAXI_ROWS, 12);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("Q{}", r.query),
                format!("{:.2}", r.rapids.total_s()),
                format!("{:.2}", r.bam_seconds[0]),
                format!("{:.2}", r.bam_seconds[1]),
                format!("{:.2}", r.bam_seconds[2]),
                format!("{:.2}x", r.speedup_4ssd()),
                format!("{:.2}x", r.rapids_io_amplification),
                format!("{:.2}x", r.bam_io_amplification),
            ]
        })
        .collect();
    print_table(
        "Figure 12: NYC-taxi-style queries, RAPIDS (CPU-mem) vs BaM (seconds, full 1.7B-row scale)",
        &[
            "Query",
            "RAPIDS",
            "BaM 1 SSD",
            "BaM 2 SSD",
            "BaM 4 SSD",
            "Speedup(4)",
            "RAPIDS amp",
            "BaM amp",
        ],
        &table,
    );
}
