//! Million-tenant SLO admission-control knee sweep (event-driven).
//!
//! A single tenant class of 10k / 100k / 1M logical tenants offers load
//! around the knee of a queue-pair-starved 4-SSD Optane array, with and
//! without the class's SLO admission controller armed. Class aggregation is
//! closed-form, so every cell costs O(classes) event-loop work — the
//! million-tenant rows run as fast as the ten-thousand-tenant ones. Pass
//! `--json` to also write `BENCH_slo.json` and `--workers N` to run on the
//! sharded engine (output is bit-identical at every worker count).
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{print_table, slo_exp, workers_arg};

const SEED: u64 = 37;

fn main() {
    let workers = workers_arg();
    let rows = slo_exp::slo_sweep_with_workers(SEED, workers);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.members.to_string(),
                format!("{:.2}", r.load),
                format!("{:.0}", r.offered_rate_per_s / 1e3),
                if r.controlled { "on" } else { "off" }.to_string(),
                if r.controlled {
                    r.depth_limit.to_string()
                } else {
                    "-".to_string()
                },
                r.offered.to_string(),
                r.rejected.to_string(),
                format!("{:.0}", r.throughput_per_s / 1e3),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.p999_us),
                format!("{:.2}", r.burn_rate),
            ]
        })
        .collect();
    print_table(
        "SLO admission control: one tenant class of N logical members vs the knee of a \
         4-SSD x 2-QP Optane array, controller off/on (p99 budget 30us per 1ms window)",
        &[
            "Members",
            "Load",
            "Offered K/s",
            "Ctl",
            "Depth",
            "Offered",
            "Rejected",
            "KIOPS",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "Burn",
        ],
        &table,
    );
    println!(
        "\nCheck: member count never changes a row (class cost is O(classes): the 1M-tenant \
         cells match the 10k-tenant shape); from just below the knee onward the uncontrolled \
         burn rate blows past 1.0 while the controller sheds load and holds it at 0.0 — a \
         ceiling the conservative depth clamp also prices below the knee as surrendered \
         throughput."
    );
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "slo")
            .int("seed", SEED)
            .int("access_bytes", slo_exp::SLO_ACCESS_BYTES)
            .int("requests", slo_exp::SLO_REQUESTS)
            .num("knee_rate_per_s", slo_exp::SLO_KNEE_RATE_PER_S)
            .num("target_p99_us", slo_exp::SLO_TARGET_P99_US)
            .int("window_ns", slo_exp::SLO_WINDOW_NS)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .int("members", u64::from(r.members))
                        .num("load", r.load)
                        .num("offered_rate_per_s", r.offered_rate_per_s)
                        .str("controlled", if r.controlled { "on" } else { "off" })
                        .int("depth_limit", r.depth_limit)
                        .int("offered", r.offered)
                        .int("admitted", r.admitted)
                        .int("deferrals", r.deferrals)
                        .int("rejected", r.rejected)
                        .int("completed", r.completed)
                        .num("throughput_per_s", r.throughput_per_s)
                        .num("p50_us", r.p50_us)
                        .num("p99_us", r.p99_us)
                        .num("p999_us", r.p999_us)
                        .num("burn_rate", r.burn_rate)
                        .build()
                })),
            )
            .build();
        emit_bench_json("slo", &body);
    }
}
