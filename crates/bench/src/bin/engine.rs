//! Engine-throughput sweep: inline vs sharded event engine (see
//! `bam_bench::engine_exp`).
//!
//! Every sharded point is asserted bit-identical to the inline run before
//! its throughput is reported. Stdout carries only deterministic fields
//! (identical across runs and machines — CI double-runs this binary and
//! diffs the output); the machine-dependent wall-clock figures go to stderr
//! and, under `--json`, into `BENCH_engine.json`, where the drift gate
//! checks the integer fields exactly and the wall-clock floats only against
//! a very loose tolerance.
//!
//! Flags: `--requests <n>` overrides the per-steady-tenant request count,
//! `--json` writes `BENCH_engine.json`.

use bam_bench::engine_exp::{
    engine_sweep, ENGINE_SEED, ENGINE_STEADY_REQUESTS, ENGINE_STEADY_TENANTS,
};
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::print_table;

/// The value following `--requests`, if present.
fn requests_arg() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--requests" {
            let v = args.next().expect("--requests needs a value");
            return Some(v.parse().expect("--requests must be an integer"));
        }
    }
    None
}

fn main() {
    let steady_requests = requests_arg().unwrap_or(ENGINE_STEADY_REQUESTS);
    let rows = engine_sweep(ENGINE_SEED, steady_requests);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                if r.workers == 0 {
                    "-".to_string()
                } else {
                    r.workers.to_string()
                },
                r.completed.to_string(),
                r.events.to_string(),
                r.p99_ns.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Engine equivalence: inline vs sharded on the 8-tenant antagonist workload \
             ({ENGINE_STEADY_TENANTS} steady tenants x {steady_requests} requests + MMPP \
             antagonist; every sharded report asserted bit-identical to inline)"
        ),
        &["Engine", "Workers", "Completed", "Events", "p99 (ns)"],
        &table,
    );
    println!(
        "\nCheck: every row completes the same requests through the same {} events to the \
         same p99 — the engines differ only in wall-clock (stderr / BENCH_engine.json).",
        rows[0].events
    );
    eprintln!("wall-clock (machine-dependent):");
    for r in &rows {
        eprintln!(
            "  {:>7} workers={} {:.3}s {:>12.0} events/s speedup {:.2}x",
            r.engine,
            if r.workers == 0 {
                "-".into()
            } else {
                r.workers.to_string()
            },
            r.wall_s,
            r.events_per_sec,
            r.speedup
        );
    }
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "engine")
            .int("seed", ENGINE_SEED)
            .int("steady_tenants", u64::from(ENGINE_STEADY_TENANTS))
            .int("steady_requests", steady_requests)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .str("engine", r.engine)
                        .int("workers", r.workers as u64)
                        .int("completed", r.completed)
                        .int("events", r.events)
                        .int("p99_ns", r.p99_ns)
                        .num("wall_s", r.wall_s)
                        .num("events_per_sec", r.events_per_sec)
                        .num("speedup", r.speedup)
                        .build()
                })),
            )
            .build();
        emit_bench_json("engine", &body);
    }
}
