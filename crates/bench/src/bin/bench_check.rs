//! The bench-regression gate: compares a freshly regenerated `BENCH_*.json`
//! against the committed baseline with tolerances (see `bam_bench::drift`).
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--rel-tol 0.05]
//! ```
//!
//! Exit status 0 when the trajectory matches (exact on deterministic fields,
//! within the relative tolerance on float fields), 1 when it drifted, 2 on
//! usage or I/O errors. CI stashes the committed files, reruns every
//! `--json` harness, and runs this gate per file, so silent perf drift fails
//! the build while intentional, in-band model refinement does not.

use bam_bench::drift;

fn fail(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    eprintln!("usage: bench_check <baseline.json> <current.json> [--rel-tol 0.05]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&String> = Vec::new();
    let mut rel_tol = 0.05f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--rel-tol" {
            let Some(v) = args.get(i + 1) else {
                fail("--rel-tol needs a value");
            };
            match v.parse::<f64>() {
                Ok(t) if t >= 0.0 => rel_tol = t,
                _ => fail("--rel-tol must be a non-negative number"),
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    if paths.len() != 2 {
        fail("expected exactly two file arguments");
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
    };
    let parse = |path: &str, body: &str| {
        drift::parse(body).unwrap_or_else(|e| fail(&format!("{path}: malformed JSON at {e}")))
    };
    let (baseline_path, current_path) = (paths[0].as_str(), paths[1].as_str());
    let baseline = parse(baseline_path, &read(baseline_path));
    let current = parse(current_path, &read(current_path));
    let diffs = drift::compare(&baseline, &current, rel_tol);
    if diffs.is_empty() {
        println!(
            "bench_check: {current_path} matches {baseline_path} \
             (rel-tol {rel_tol})"
        );
        return;
    }
    eprintln!(
        "bench_check: {current_path} drifted from {baseline_path} in {} place(s) \
         (rel-tol {rel_tol}):",
        diffs.len()
    );
    for d in &diffs {
        eprintln!("  {d}");
    }
    std::process::exit(1);
}
