//! Regenerates Figure 6: BaM vs ActivePointers+GPUfs, hot and cold caches.
use bam_bench::{micro_exp, print_table};

fn main() {
    let rows = micro_exp::figure6(&[65_536, 1 << 20], &[512, 4096, 8192]);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.threads),
                format!("{}B", r.line_bytes),
                if r.hot { "hot" } else { "cold" }.to_string(),
                format!("{:.1}", r.bam_gbps),
                format!("{:.1}", r.activepointers_gbps),
                format!("{:.2}", r.bam_miss_miops),
                format!("{:.2}", r.ap_miss_miops),
            ]
        })
        .collect();
    print_table(
        "Figure 6: BaM (B) vs ActivePointers+GPUfs (AP)",
        &[
            "Threads",
            "Line",
            "Cache",
            "B GB/s",
            "AP GB/s",
            "B miss MIOPS",
            "AP miss MIOPS",
        ],
        &table,
    );
}
