//! Regenerates Figure 11: NVMe queue-pair count sensitivity (K dataset).
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows = graph_exp::figure11(GRAPH_SCALE, 11);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.label().to_string(),
                r.queue_pairs.to_string(),
                format!("{:.2}x", r.slowdown),
            ]
        })
        .collect();
    print_table(
        "Figure 11: queue-pair sweep (K dataset, relative to 128 queue pairs)",
        &["Workload", "Queue pairs", "Slowdown"],
        &table,
    );
}
