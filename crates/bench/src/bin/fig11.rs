//! Regenerates Figure 11: NVMe queue-pair count sensitivity (K dataset).
//!
//! Each sweep point is produced twice — by the closed-form storage envelope
//! and by the `bam-sim` event engine — and both slowdowns are printed side by
//! side as a cross-check. Pass `--json` to also write `BENCH_fig11.json`.
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

const SEED: u64 = 11;

fn main() {
    let rows = graph_exp::figure11(GRAPH_SCALE, SEED);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.label().to_string(),
                r.queue_pairs.to_string(),
                format!("{:.2}x", r.slowdown),
                format!("{:.2}x", r.sim_slowdown),
                format!("{:.1}", r.sim_p99_us),
            ]
        })
        .collect();
    print_table(
        "Figure 11: queue-pair sweep (K dataset, relative to 128 queue pairs; analytic vs event-driven)",
        &["Workload", "Queue pairs", "Slowdown", "Sim slowdown", "Sim p99 (us)"],
        &table,
    );
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "fig11")
            .int("seed", SEED)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .str("workload", r.workload.label())
                        .int("queue_pairs", u64::from(r.queue_pairs))
                        .num("analytic_slowdown", r.slowdown)
                        .num("sim_slowdown", r.sim_slowdown)
                        .num("analytic_total_s", r.analytic_total_s)
                        .num("sim_total_s", r.sim_total_s)
                        .num("sim_p99_us", r.sim_p99_us)
                        .build()
                })),
            )
            .build();
        emit_bench_json("fig11", &body);
    }
}
