//! Regenerates Figure 14: RAPIDS execution-time breakdown and I/O
//! amplification for queries Q0-Q5.
use bam_bench::{analytics_exp, print_table};

fn main() {
    let rows = analytics_exp::figure14();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("Q{}", r.query),
                format!("{:.1}%", r.init_fraction * 100.0),
                format!("{:.1}%", r.query_fraction * 100.0),
                format!("{:.1}%", r.cleanup_fraction * 100.0),
                format!("{:.2}x", r.io_amplification),
            ]
        })
        .collect();
    print_table(
        "Figure 14: RAPIDS time breakdown and I/O amplification",
        &[
            "Query",
            "Row-group init",
            "Query",
            "Cleanup",
            "I/O amplification",
        ],
        &table,
    );
}
