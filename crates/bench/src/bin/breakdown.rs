//! Stage-attribution breakdown: where each request's latency goes.
//!
//! One seeded closed-loop run per Table-2 device (journal-flush stage
//! enabled, 3:1 read/write mix) with per-stage dwell-time accounting; the
//! dwells tile each request's end-to-end latency exactly, so every table's
//! shares sum to 100%. Pass `--json` to also write `BENCH_breakdown.json`,
//! `--trace-out <path>` to export the Optane run's spans as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`),
//! `--timeline-out <path>` to export the Optane run's full timeline
//! document (windowed telemetry + per-resource blame decomposition), and
//! `--workers N` to run on the sharded engine (default 1 = inline; the
//! output is bit-identical at every worker count).

use bam_bench::breakdown_exp::{
    breakdown_with_workers, traced_events_with_workers, BREAKDOWN_ACCESS_BYTES,
    BREAKDOWN_IN_FLIGHT, BREAKDOWN_JOURNAL_OVERHEAD_BYTES, BREAKDOWN_REQUESTS, BREAKDOWN_SEED,
    BREAKDOWN_WRITES,
};
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::timeline_exp::{breakdown_timeline_body, observed_breakdown_run};
use bam_bench::{print_table, timeline_out_path, workers_arg};
use bam_sim::chrome_trace_json;

/// The path following `--trace-out`, if present.
fn trace_out_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return Some(args.next().expect("--trace-out needs a path"));
        }
    }
    None
}

fn main() {
    let workers = workers_arg();
    let results = breakdown_with_workers(BREAKDOWN_SEED, workers);
    for (spec, report, rows) in &results {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.stage.to_string(),
                    r.count.to_string(),
                    format!("{:.2}", r.mean_us),
                    format!("{:.2}", r.p50_us),
                    format!("{:.2}", r.p99_us),
                    format!("{:.1}%", r.share_pct),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{}: stage attribution of {} requests ({} writes), p50 latency {:.1} us",
                spec.name, report.completed, BREAKDOWN_WRITES, report.latency.p50_us
            ),
            &[
                "Stage",
                "Count",
                "Mean (us)",
                "p50 (us)",
                "p99 (us)",
                "Share",
            ],
            &table,
        );
    }
    println!(
        "\nCheck: each table's shares sum to 100% — the per-stage dwells tile every request's \
         end-to-end latency exactly. Queue-pair share grows as media gets slower only where \
         submission slots, not media, are the bottleneck."
    );
    if let Some(path) = trace_out_path() {
        let trace = chrome_trace_json(&traced_events_with_workers(BREAKDOWN_SEED, workers));
        std::fs::write(&path, trace).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = timeline_out_path() {
        let (report, telemetry) = observed_breakdown_run(BREAKDOWN_SEED, workers);
        let body = breakdown_timeline_body(BREAKDOWN_SEED, &report, &telemetry);
        std::fs::write(&path, format!("{body}\n")).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "breakdown")
            .int("seed", BREAKDOWN_SEED)
            .int("requests", BREAKDOWN_REQUESTS)
            .int("writes", BREAKDOWN_WRITES)
            .int("in_flight", u64::from(BREAKDOWN_IN_FLIGHT))
            .int("access_bytes", BREAKDOWN_ACCESS_BYTES)
            .int("journal_overhead_bytes", BREAKDOWN_JOURNAL_OVERHEAD_BYTES)
            .raw(
                "rows",
                json_array(results.iter().flat_map(|(_, _, rows)| {
                    rows.iter().map(|r| {
                        JsonObject::new()
                            .str("device", &r.device)
                            .str("stage", r.stage)
                            .int("count", r.count)
                            .num("mean_us", r.mean_us)
                            .num("p50_us", r.p50_us)
                            .num("p99_us", r.p99_us)
                            .num("share_pct", r.share_pct)
                            .build()
                    })
                })),
            )
            .build();
        emit_bench_json("breakdown", &body);
    }
}
