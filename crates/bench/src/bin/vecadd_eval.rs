//! Regenerates the Section 5.4 vectorAdd comparison: BaM vs proactive tiling.
use bam_bench::misc_exp;

fn main() {
    let e = misc_exp::vectoradd_eval(50_000, 4_000_000_000);
    println!("=== Section 5.4: vectorAdd (two 4B-element inputs, one output) ===");
    println!("proactive tiling baseline : {:.2} s", e.tiling_seconds);
    println!("BaM                       : {:.2} s", e.bam_seconds);
    println!(
        "BaM slowdown              : {:.2}x (paper reports 1.51x)",
        e.bam_slowdown
    );
}
