//! Regenerates Figure 5: achieved bandwidth vs I/O granularity, BaM vs GDS.
//! Pass `--json` to also write `BENCH_fig5.json` (the drift-gated
//! trajectory file).
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{micro_exp, print_table};

const TOTAL_BYTES: u64 = 128 << 30;

fn main() {
    let grans: Vec<u64> = [4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|k| k * 1024)
        .collect();
    let rows = micro_exp::figure5(TOTAL_BYTES, &grans);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}KB", r.io_bytes / 1024),
                format!("{:.1}%", r.gds_utilization * 100.0),
                format!("{:.1}%", r.bam_utilization * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 5: % of peak x16 PCIe bandwidth vs I/O granularity (128 GB, 4 SSDs)",
        &["I/O granularity", "GDS", "BaM"],
        &table,
    );
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "fig5")
            .int("total_bytes", TOTAL_BYTES)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .int("io_bytes", r.io_bytes)
                        .num("gds_utilization", r.gds_utilization)
                        .num("bam_utilization", r.bam_utilization)
                        .build()
                })),
            )
            .build();
        emit_bench_json("fig5", &body);
    }
}
