//! Regenerates Figure 5: achieved bandwidth vs I/O granularity, BaM vs GDS.
use bam_bench::{micro_exp, print_table};

fn main() {
    let grans: Vec<u64> = [4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|k| k * 1024)
        .collect();
    let rows = micro_exp::figure5(128 << 30, &grans);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}KB", r.io_bytes / 1024),
                format!("{:.1}%", r.gds_utilization * 100.0),
                format!("{:.1}%", r.bam_utilization * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 5: % of peak x16 PCIe bandwidth vs I/O granularity (128 GB, 4 SSDs)",
        &["I/O granularity", "GDS", "BaM"],
        &table,
    );
}
