//! Regenerates Figure 8: sources of performance improvement in BaM.
use bam_bench::{graph_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows = graph_exp::figure8(&["K", "U", "F", "M", "Uk"], GRAPH_SCALE, 8);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.workload.label().to_string(),
                format!("{:?}", r.config),
                format!("{:.2}", r.breakdown.total_s()),
                format!("{:.1}x", r.io_amplification),
            ]
        })
        .collect();
    print_table(
        "Figure 8: no cache -> naive cache -> optimized (seconds, 4 Optane SSDs)",
        &[
            "Graph",
            "Workload",
            "Config",
            "Time (s)",
            "I/O amplification",
        ],
        &table,
    );
}
