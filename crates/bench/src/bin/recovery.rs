//! Crash-recovery sweep: crash points × dirty-working-set sizes.
//!
//! For each dirty working set (16/64/256 lines) the harness arms a crash at
//! nine evenly spaced durable steps — journal appends and media write-backs;
//! the ninth lands past the end, the no-crash control — replays the
//! surviving journal, and reports the recovery-replay cost and the journal's
//! write amplification. The replay time is *simulated* (event-driven engine,
//! journal-flush stage enabled), so every number here is deterministic.
//! Pass `--json` to also write `BENCH_recovery.json`, or `--verbose` to
//! additionally dissect one mid-run crash into its per-line replay plan.

use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::print_table;
use bam_bench::recovery_exp::{
    recovery_sweep, verbose_cell, RECOVERY_CRASH_POINTS, RECOVERY_DIRTY_SETS, RECOVERY_SIM_SEED,
    RECOVERY_WRITES_PER_LINE,
};

fn main() {
    let rows = recovery_sweep();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dirty_lines.to_string(),
                format!("{}/{}", r.crash_step, r.total_steps),
                r.acked_writes.to_string(),
                r.journal_bytes.to_string(),
                format!("{:.2}", r.write_amplification),
                r.records_scanned.to_string(),
                if r.torn_tail { "yes" } else { "no" }.to_string(),
                r.replayed_writes.to_string(),
                r.replayed_lines.to_string(),
                format!("{:.1}", r.replay_us),
            ]
        })
        .collect();
    print_table(
        "Crash-recovery sweep: write-ahead journal replay cost by crash point and dirty \
         working set (512 B lines, cache half the working set, test-scale array)",
        &[
            "Dirty lines",
            "Crash step",
            "Acked writes",
            "Journal B",
            "Write amp",
            "Records",
            "Torn",
            "Replayed writes",
            "Replayed lines",
            "Replay (us)",
        ],
        &table,
    );
    println!(
        "\nCheck: the no-crash control rows (crash step == total) replay nothing — committed \
         write-backs are never double-applied — while mid-run crashes replay at most the \
         acknowledged writes, with replay time growing with the dirty working set."
    );
    if std::env::args().any(|a| a == "--verbose") {
        let (plan, report) = verbose_cell();
        let lines: Vec<Vec<String>> = plan
            .iter()
            .map(|l| {
                vec![
                    l.line.to_string(),
                    l.durable_lsn.to_string(),
                    l.pending_writes.to_string(),
                    l.pending_bytes.to_string(),
                ]
            })
            .collect();
        print_table(
            "Per-line replay plan: largest dirty set, crash at half the durable steps",
            &["Line", "Durable LSN", "Pending writes", "Pending bytes"],
            &lines,
        );
        println!("\nrecovery: {report}");
    }
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "recovery")
            .int("sim_seed", RECOVERY_SIM_SEED)
            .int("crash_points", RECOVERY_CRASH_POINTS + 1)
            .int("writes_per_line", RECOVERY_WRITES_PER_LINE)
            .raw(
                "dirty_sets",
                json_array(RECOVERY_DIRTY_SETS.iter().map(|w| w.to_string())),
            )
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .int("dirty_lines", r.dirty_lines)
                        .int("crash_step", r.crash_step)
                        .int("total_steps", r.total_steps)
                        .int("acked_writes", r.acked_writes)
                        .int("journal_bytes", r.journal_bytes)
                        .num("write_amplification", r.write_amplification)
                        .int("records_scanned", r.records_scanned)
                        .int("torn_tail", u64::from(r.torn_tail))
                        .int("replayed_writes", r.replayed_writes)
                        .int("replayed_lines", r.replayed_lines)
                        .num("replay_us", r.replay_us)
                        .build()
                })),
            )
            .build();
        emit_bench_json("recovery", &body);
    }
}
