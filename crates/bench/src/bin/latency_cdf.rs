//! Tail-latency CDFs for the three Table-2 SSD technologies (event-driven).
//!
//! A 4-SSD array of each device is driven closed-loop at 0.5×, 1×, and 2× of
//! its bandwidth-latency product (§2.2) and the per-request latency
//! distribution is reported alongside the analytic envelope it must agree
//! with in the mean — the dynamics behind the Fig 9 slowdowns. Pass `--json`
//! to also write `BENCH_latency_cdf.json`, `--trace-out <path>` to export
//! the Optane 1×-depth cell's spans as Chrome trace-event JSON, and
//! `--workers N` to run on the sharded engine (default 1 = inline; the
//! output is bit-identical at every worker count).
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{print_table, sim_exp, workers_arg};
use bam_sim::chrome_trace_json;

/// Access granularity of the sweep (the graph experiments' 4 KB lines).
const ACCESS_BYTES: u64 = 4096;
const SEED: u64 = 9;

fn main() {
    let workers = workers_arg();
    let rows = sim_exp::latency_cdf_with_workers(4, ACCESS_BYTES, SEED, workers);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.device.clone(),
                format!("{:.1}x", r.depth_multiplier),
                r.in_flight.to_string(),
                format!("{:.2}", r.achieved_miops),
                format!("{:.2}", r.analytic_peak_miops),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p95_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.p999_us),
                format!("{:.1}", r.analytic_latency_us),
                format!("{:.0}", r.mean_in_flight),
                r.analytic_depth.to_string(),
            ]
        })
        .collect();
    print_table(
        "Tail-latency CDFs: 4-SSD arrays, 4KB reads, closed loop at 0.5/1/2x the \
         bandwidth-latency product (simulated vs analytic)",
        &[
            "Device",
            "Depth",
            "In flight",
            "Sim MIOPS",
            "Peak MIOPS",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "p999 (us)",
            "Spec lat",
            "Sim Qd",
            "T*L Qd",
        ],
        &table,
    );
    println!(
        "\nCheck: at 1x depth the simulated mean in-flight must sit near the analytic T*L \
         product (Little's law); at 2x, throughput stays at the peak while every percentile \
         roughly doubles — latency bought nothing."
    );
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            let path = args.next().expect("--trace-out needs a path");
            let events =
                sim_exp::latency_cdf_traced_events_with_workers(4, ACCESS_BYTES, SEED, workers);
            std::fs::write(&path, chrome_trace_json(&events))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "latency_cdf")
            .int("seed", SEED)
            .int("access_bytes", ACCESS_BYTES)
            .int("sample_requests", sim_exp::SAMPLE_REQUESTS)
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    JsonObject::new()
                        .str("device", &r.device)
                        .num("depth_multiplier", r.depth_multiplier)
                        .int("in_flight", u64::from(r.in_flight))
                        .num("achieved_miops", r.achieved_miops)
                        .num("analytic_peak_miops", r.analytic_peak_miops)
                        .num("mean_us", r.mean_us)
                        .num("p50_us", r.p50_us)
                        .num("p95_us", r.p95_us)
                        .num("p99_us", r.p99_us)
                        .num("p999_us", r.p999_us)
                        .num("analytic_latency_us", r.analytic_latency_us)
                        .num("mean_in_flight", r.mean_in_flight)
                        .int("analytic_depth", r.analytic_depth)
                        .build()
                })),
            )
            .build();
        emit_bench_json("latency_cdf", &body);
    }
}
