//! Regenerates Table 2: SSD technology comparison against DRAM.
use bam_bench::{misc_exp, print_table};

fn main() {
    let rows: Vec<Vec<String>> = misc_exp::table2()
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                format!(
                    "{:.1}M / {:.1}M",
                    r.read_iops_512 / 1e6,
                    r.read_iops_4k / 1e6
                ),
                format!(
                    "{:.2}M / {:.2}M",
                    r.write_iops_512 / 1e6,
                    r.write_iops_4k / 1e6
                ),
                format!("{:.1}", r.latency_us),
                format!("{:.1}", r.dwpd),
                format!("{:.2}", r.cost_per_gb),
                format!("{:.1}x", r.gain),
            ]
        })
        .collect();
    print_table(
        "Table 2: SSD technologies vs DRAM",
        &[
            "Product",
            "RD IOPS (512B/4KB)",
            "WR IOPS (512B/4KB)",
            "Latency (us)",
            "DWPD",
            "$/GB",
            "Gain",
        ],
        &rows,
    );
}
