//! Regenerates Figure 4: 512 B random read/write IOPS scaling with request
//! count and SSD count.
use bam_bench::{micro_exp, print_table};

fn main() {
    let requests: Vec<u64> = (10..=25).map(|s| 1u64 << s).collect();
    let rows = micro_exp::figure4(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &requests, 200);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.num_ssds.to_string(),
                r.requests.to_string(),
                format!("{:.2}", r.read_miops),
                format!("{:.2}", r.write_miops),
            ]
        })
        .collect();
    print_table(
        "Figure 4: 512B random read/write IOPS (BaM, Intel Optane P5800X)",
        &["SSDs", "Requests", "Read MIOPS", "Write MIOPS"],
        &table,
    );
}
