//! Regenerates Figure 4: 512 B random read/write IOPS scaling with request
//! count and SSD count. Pass `--json` to also write `BENCH_fig4.json`.
use bam_bench::jsonout::{emit_bench_json, json_array, json_mode, JsonObject};
use bam_bench::{micro_exp, print_table};

fn main() {
    let requests: Vec<u64> = (10..=25).map(|s| 1u64 << s).collect();
    let rows = micro_exp::figure4(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], &requests, 200);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.num_ssds.to_string(),
                r.requests.to_string(),
                format!("{:.2}", r.read_miops),
                format!("{:.2}", r.write_miops),
            ]
        })
        .collect();
    print_table(
        "Figure 4: 512B random read/write IOPS (BaM, Intel Optane P5800X)",
        &["SSDs", "Requests", "Read MIOPS", "Write MIOPS"],
        &table,
    );
    if json_mode() {
        let body = JsonObject::new()
            .str("bench", "fig4")
            .raw(
                "rows",
                json_array(rows.iter().map(|r| {
                    // Projected seconds to drain the request count at the
                    // achieved rate — the drift-tracking scalar for this row.
                    let read_s = r.requests as f64 / (r.read_miops * 1e6);
                    let write_s = r.requests as f64 / (r.write_miops * 1e6);
                    JsonObject::new()
                        .int("num_ssds", r.num_ssds as u64)
                        .int("requests", r.requests)
                        .num("read_miops", r.read_miops)
                        .num("write_miops", r.write_miops)
                        .num("projected_read_s", read_s)
                        .num("projected_write_s", write_s)
                        .build()
                })),
            )
            .build();
        emit_bench_json("fig4", &body);
    }
}
