//! Tail root-cause attribution: windowed telemetry, per-resource blame,
//! and SLO burn rates for the flagship multi-tenant run.
//!
//! Four SLO-carrying steady tenants co-run with the MMPP bursty antagonist
//! on the queue-pair-starved Optane array under *shared* queue pairs. The
//! report shows, window by window, when the tail happened; the blame
//! decomposition shows *which resource's queueing* produced it (service
//! vs. wait per stage, population and tail slice); the SLO table shows what
//! it cost each tenant in violations and error-budget burn. Pass `--json`
//! to also write `BENCH_timeline.json`, `--timeline-out <path>` to export
//! the full timeline document to a file, and `--workers N` to run on the
//! sharded engine (default 1 = inline; every output is bit-identical at
//! any worker count).

use bam_bench::jsonout::{emit_bench_json, json_mode};
use bam_bench::timeline_exp::{dominant_stage, timeline_body, timeline_run, TIMELINE_SEED};
use bam_bench::{print_table, timeline_out_path, workers_arg};
use bam_sim::Stage;

fn main() {
    let workers = workers_arg();
    let (report, telemetry) = timeline_run(TIMELINE_SEED, workers);

    // Window-by-window: when did the tail happen, and was it queueing?
    let table: Vec<Vec<String>> = telemetry
        .series
        .iter()
        .map(|(start_ns, w)| {
            let dwell: u64 = w.stage_dwell_ns.iter().sum();
            let wait: u64 = w.stage_wait_ns.iter().sum();
            vec![
                format!("{:.1}", start_ns as f64 / 1e6),
                w.arrivals.to_string(),
                w.completions.to_string(),
                format!("{:.1}", w.latency.value_at_quantile(0.99) as f64 / 1e3),
                format!("{:.1}", w.depth_mean()),
                format!(
                    "{:.0}%",
                    if dwell == 0 {
                        0.0
                    } else {
                        wait as f64 / dwell as f64 * 100.0
                    }
                ),
            ]
        })
        .collect();
    print_table(
        "Timeline: 1 ms windows, 4 SLO'd steady tenants + MMPP antagonist, shared queue pairs \
         (Optane, 4 SSDs x 2 QPs)",
        &[
            "t (ms)",
            "Arrivals",
            "Done",
            "p99 (us)",
            "Depth",
            "Wait share",
        ],
        &table,
    );

    // Per-resource blame: population vs tail.
    let blame = &telemetry.blame;
    let blame_table: Vec<Vec<String>> = blame
        .overall
        .active_stages()
        .map(|stage| {
            let svc = blame.overall.service_ns(stage);
            let wait = blame.overall.wait_ns(stage);
            let tsvc = blame.tail.service_ns(stage);
            let twait = blame.tail.wait_ns(stage);
            let tail_total = blame.tail.total_ns().max(1);
            vec![
                stage.label().to_string(),
                format!("{:.2}", svc as f64 / 1e6),
                format!("{:.2}", wait as f64 / 1e6),
                format!("{:.2}", tsvc as f64 / 1e6),
                format!("{:.2}", twait as f64 / 1e6),
                format!("{:.1}%", (tsvc + twait) as f64 / tail_total as f64 * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Blame decomposition: {} requests, tail = {} above p99 cut {:.1} us",
            blame.requests,
            blame.tail_requests,
            blame.p99_cut_ns as f64 / 1e3
        ),
        &[
            "Stage",
            "Service (ms)",
            "Wait (ms)",
            "Tail svc (ms)",
            "Tail wait (ms)",
            "Tail share",
        ],
        &blame_table,
    );

    // The slowest requests, with their dominant resource.
    let ex_table: Vec<Vec<String>> = blame
        .exemplars
        .iter()
        .map(|ex| {
            vec![
                ex.id.to_string(),
                format!("{:.2}", ex.arrive_ns as f64 / 1e6),
                format!("{:.1}", ex.latency_ns as f64 / 1e3),
                dominant_stage(ex).label().to_string(),
                ex.waterfall.len().to_string(),
            ]
        })
        .collect();
    print_table(
        "Slowest requests (exemplars with full span waterfalls)",
        &[
            "Request",
            "Arrive (ms)",
            "Latency (us)",
            "Dominant",
            "Stages",
        ],
        &ex_table,
    );

    // Per-tenant SLO outcomes.
    let slo_table: Vec<Vec<String>> = report
        .tenants
        .iter()
        .filter_map(|t| {
            t.slo.map(|s| {
                vec![
                    t.name.clone(),
                    format!("{:.0}", s.target_p99_us),
                    format!("{}/{}", s.violations, s.windows),
                    format!("{:.2}x", s.burn_rate),
                    format!("{:.1}", s.worst_window_p99_us),
                    format!("{:.1}", s.worst_window_start_ns as f64 / 1e6),
                ]
            })
        })
        .collect();
    print_table(
        "SLO burn: p99 target per 1 ms window, burn rate vs a 1% error budget",
        &[
            "Tenant",
            "Target (us)",
            "Violations",
            "Burn rate",
            "Worst p99 (us)",
            "Worst at (ms)",
        ],
        &slo_table,
    );

    let tail_wait_share = blame.tail.total_wait_ns() as f64 / blame.tail.total_ns().max(1) as f64;
    println!(
        "\nCheck: blame attributes 100% of every request's latency (service + wait tile each \
         span). The tail slice is {:.0}% wait — and the wait concentrates in the {} stage: the \
         antagonist's burst backlog in the shared queue pairs, not the media, produces the tail.",
        tail_wait_share * 100.0,
        Stage::QueuePair.label()
    );

    let body = timeline_body(TIMELINE_SEED, &report, &telemetry);
    if let Some(path) = timeline_out_path() {
        std::fs::write(&path, format!("{body}\n")).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if json_mode() {
        emit_bench_json("timeline", &body);
    }
}
