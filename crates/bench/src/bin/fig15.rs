//! Regenerates Figure 15: UVM vs ZeroCopy host-memory bandwidth during BFS.
use bam_bench::{misc_exp, print_table, scale::GRAPH_SCALE};

fn main() {
    let rows = misc_exp::figure15(GRAPH_SCALE, 15);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.1}", r.uvm_gbps),
                format!("{:.1}", r.zerocopy_gbps),
                format!("{:.1}", r.peak_gbps),
            ]
        })
        .collect();
    print_table(
        "Figure 15: UVM vs ZeroCopy bandwidth (GB/s) during BFS",
        &["Graph", "UVM", "ZeroCopy", "Measured peak"],
        &table,
    );
}
