//! Microbenchmark experiments: Figures 4, 5, and 6.

use bam_baselines::{ActivePointersModel, GdsModel};
use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_timing::{GpuRateModel, SsdArrayModel};
use bam_workloads::micro;
use serde::{Deserialize, Serialize};

/// One point of Figure 4: IOPS at a given SSD count and outstanding-request
/// count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Number of Optane SSDs.
    pub num_ssds: usize,
    /// Outstanding 512 B requests (the x-axis).
    pub requests: u64,
    /// Random-read throughput in million IOPS.
    pub read_miops: f64,
    /// Random-write throughput in million IOPS.
    pub write_miops: f64,
}

/// Figure 4: 512 B random read/write IOPS, scaling over SSDs and request
/// counts.
///
/// The `functional_requests` parameter controls how many requests are
/// actually pushed through the simulated stack per configuration (to verify
/// the 1:1 command mapping and doorbell behaviour); the reported IOPS come
/// from the calibrated storage envelope at the full request count.
pub fn figure4(
    ssd_counts: &[usize],
    request_counts: &[u64],
    functional_requests: u64,
) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &num_ssds in ssd_counts {
        // Functional validation run at this SSD count (small, cache off).
        if functional_requests > 0 {
            let sys = micro::build_raw_system(
                SsdSpec::intel_optane_p5800x(),
                num_ssds,
                4,
                64,
                512,
                8 << 20,
            )
            .expect("raw system");
            let n = (4 << 20) / 8;
            let arr = sys.create_array::<u64>(n).expect("array");
            arr.preload(&vec![7u64; n as usize]).expect("preload");
            let run = micro::random_read(&sys, &arr, functional_requests, 256, 4, 42)
                .expect("functional run");
            assert_eq!(
                run.commands, functional_requests,
                "1:1 request-to-command mapping"
            );
        }
        let model = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), num_ssds);
        for &requests in request_counts {
            rows.push(Fig4Row {
                num_ssds,
                requests,
                read_miops: model.read_iops(512, requests) / 1e6,
                write_miops: model.write_iops(512, requests) / 1e6,
            });
        }
    }
    rows
}

/// One point of Figure 5: achieved bandwidth as a fraction of the ×16 link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig5Row {
    /// I/O granularity in bytes.
    pub io_bytes: u64,
    /// GDS utilization of the ×16 link (0–1).
    pub gds_utilization: f64,
    /// BaM utilization of the ×16 link (0–1).
    pub bam_utilization: f64,
}

/// Figure 5: BaM vs GPUDirect Storage across I/O granularities, transferring
/// `total_bytes` from 4 Optane SSDs.
pub fn figure5(total_bytes: u64, granularities: &[u64]) -> Vec<Fig5Row> {
    let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
    let gds = GdsModel::prototype(storage.clone());
    let link = LinkSpec::gen4_x16();
    granularities
        .iter()
        .map(|&g| {
            let transfers = total_bytes / g;
            // BaM keeps tens of thousands of requests outstanding; its
            // utilization is whatever the storage + link envelope allows.
            let bam_time = storage.read_time_s(transfers, g, 1 << 20);
            let bam_bw = total_bytes as f64 / bam_time / 1e9;
            Fig5Row {
                io_bytes: g,
                gds_utilization: gds.link_utilization(total_bytes, g),
                bam_utilization: (bam_bw / link.effective_bandwidth_gbps()).min(1.0),
            }
        })
        .collect()
}

/// One configuration of Figure 6.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Number of GPU threads issuing accesses.
    pub threads: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// `true` for the hot-cache configuration, `false` for cold.
    pub hot: bool,
    /// BaM effective bandwidth in GB/s.
    pub bam_gbps: f64,
    /// ActivePointers effective bandwidth in GB/s.
    pub activepointers_gbps: f64,
    /// BaM miss-handling throughput in million IOPS (cold only; 0 when hot).
    pub bam_miss_miops: f64,
    /// ActivePointers miss-handling throughput in million IOPS.
    pub ap_miss_miops: f64,
}

/// Figure 6: BaM vs ActivePointers for 64 K / 1 M threads, hot and cold
/// caches, 512 B / 4 KB / 8 KB lines, with 4 Optane SSDs behind BaM and the
/// CPU page cache behind ActivePointers (its best case).
pub fn figure6(thread_counts: &[u64], line_sizes: &[u64]) -> Vec<Fig6Row> {
    let ap = ActivePointersModel::prototype();
    let gpu = GpuRateModel::a100();
    let mut rows = Vec::new();
    for &threads in thread_counts {
        for &line in line_sizes {
            let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
            let bam_miss_iops = storage.read_iops(line, threads);
            for hot in [false, true] {
                let (bam_gbps, bam_miss_miops) = if hot {
                    (gpu.hot_cache_bandwidth_gbps(line), 0.0)
                } else {
                    (bam_miss_iops * line as f64 / 1e9, bam_miss_iops / 1e6)
                };
                let (ap_gbps, ap_miss) = if hot {
                    (ap.hot_bandwidth_gbps(line), 0.0)
                } else {
                    (ap.cold_bandwidth_gbps(line), ap.miss_iops() / 1e6)
                };
                rows.push(Fig6Row {
                    threads,
                    line_bytes: line,
                    hot,
                    bam_gbps,
                    activepointers_gbps: ap_gbps,
                    bam_miss_miops,
                    ap_miss_miops: ap_miss,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_peak_and_linear_scaling() {
        let rows = figure4(&[1, 4, 10], &[1024, 65_536, 1 << 22], 200);
        let at = |ssds: usize, reqs: u64| {
            rows.iter()
                .find(|r| r.num_ssds == ssds && r.requests == reqs)
                .copied()
                .unwrap()
        };
        // §4.3: ~45.8M read / ~10.6M write IOPS with 10 SSDs at full load.
        let ten = at(10, 1 << 22);
        assert!((40.0..52.0).contains(&ten.read_miops), "{}", ten.read_miops);
        assert!(
            (9.0..12.0).contains(&ten.write_miops),
            "{}",
            ten.write_miops
        );
        // Linear scaling from 1 to 4 SSDs.
        let one = at(1, 1 << 22);
        let four = at(4, 1 << 22);
        assert!((four.read_miops / one.read_miops - 4.0).abs() < 0.2);
        // 16K-64K requests already saturate a single SSD.
        assert!((at(1, 65_536).read_miops / one.read_miops - 1.0).abs() < 0.05);
    }

    #[test]
    fn figure5_shape_gds_needs_32kb_bam_saturates_at_4kb() {
        let rows = figure5(
            32 << 30,
            &[4096, 8192, 16384, 32768, 65536, 131_072, 262_144],
        );
        let at = |g: u64| rows.iter().find(|r| r.io_bytes == g).copied().unwrap();
        assert!(at(4096).gds_utilization < 0.45);
        assert!(at(32768).gds_utilization > 0.8);
        assert!(
            at(4096).bam_utilization > 0.9,
            "{}",
            at(4096).bam_utilization
        );
    }

    #[test]
    fn figure6_shape_bam_leads_by_an_order_of_magnitude() {
        let rows = figure6(&[65_536, 1 << 20], &[512, 4096, 8192]);
        // Cold, 512B: BaM ~17+ MIOPs vs AP 0.823 MIOPs (≥20x).
        let cold_512 = rows
            .iter()
            .find(|r| !r.hot && r.line_bytes == 512 && r.threads == 1 << 20)
            .unwrap();
        assert!(cold_512.bam_miss_miops / cold_512.ap_miss_miops > 15.0);
        // Hot, 4KB: BaM ~430 GB/s, ~11x AP.
        let hot_4k = rows
            .iter()
            .find(|r| r.hot && r.line_bytes == 4096 && r.threads == 1 << 20)
            .unwrap();
        assert!((9.0..14.0).contains(&(hot_4k.bam_gbps / hot_4k.activepointers_gbps)));
        assert!(hot_4k.bam_gbps > 350.0);
    }
}
