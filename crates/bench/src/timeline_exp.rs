//! Tail root-cause attribution: the flagship observed run and its exports.
//!
//! One seeded multi-tenant run — four steady Poisson tenants carrying a p99
//! SLO co-run with the MMPP bursty antagonist on the queue-pair-starved
//! Optane array, under *shared* queue pairs so the bursts land in front of
//! everyone — executed with full telemetry: a windowed virtual-time series,
//! the per-resource blame decomposition (service vs. wait per stage, tail
//! slice above the population p99, top-k exemplar waterfalls), and
//! per-tenant SLO violation / burn-rate reports. The JSON renderers here
//! feed both `BENCH_timeline.json` (the drift-gated trajectory file) and
//! the `--timeline-out` exports of the `breakdown` and `tenants` binaries;
//! every integer field is deterministic per seed and bit-identical at every
//! engine worker count.

use bam_sim::{
    engine, BlameReport, MultiTenantReport, QueuePairPolicy, RunTelemetry, SimReport, Stage,
    TelemetrySpec, WindowedSeries,
};

use crate::breakdown_exp;
use crate::jsonout::{json_array, JsonObject};
use crate::sim_exp;

/// Seed of the timeline runs.
pub const TIMELINE_SEED: u64 = 37;

/// Telemetry window: 1 ms of virtual time — fine enough to resolve the
/// antagonist's ~1 ms bursts, coarse enough that every window holds a
/// meaningful completion population.
pub const TIMELINE_WINDOW_NS: u64 = 1_000_000;

/// Exemplars kept: the k slowest requests with full span waterfalls.
pub const TIMELINE_TOP_K: usize = 5;

/// The steady tenants' SLO target: p99 at most 30 µs per evaluation window
/// — comfortably met solo on Optane, broken when the antagonist bursts.
pub const TIMELINE_SLO_TARGET_P99_US: f64 = 30.0;

/// SLO evaluation window (aligned with the telemetry window).
pub const TIMELINE_SLO_WINDOW_NS: u64 = 1_000_000;

/// Steady tenants co-running with the antagonist.
pub const TIMELINE_STEADY_TENANTS: usize = 4;

/// The timeline scenario's tenant list: SLO-carrying steady tenants plus
/// the bursty antagonist (no SLO — it is the cause, not the victim).
pub fn timeline_tenants() -> Vec<bam_sim::TenantSpec> {
    let mut tenants: Vec<bam_sim::TenantSpec> = (0..TIMELINE_STEADY_TENANTS as u32)
        .map(|i| {
            sim_exp::steady_tenant(i, sim_exp::TENANT_STEADY_REQUESTS)
                .with_slo(TIMELINE_SLO_TARGET_P99_US, TIMELINE_SLO_WINDOW_NS)
        })
        .collect();
    tenants.push(sim_exp::bursty_antagonist(sim_exp::TENANT_STEADY_REQUESTS));
    tenants
}

/// The telemetry spec every timeline run uses.
pub fn timeline_spec() -> TelemetrySpec {
    TelemetrySpec::full(TIMELINE_WINDOW_NS, TIMELINE_TOP_K)
}

/// Runs the flagship observed scenario (1 = inline engine; the report and
/// telemetry are bit-identical at every worker count).
pub fn timeline_run(seed: u64, workers: usize) -> (MultiTenantReport, RunTelemetry) {
    let spec = bam_nvme_sim::SsdSpec::intel_optane_p5800x();
    let config = sim_exp::tenant_config(&spec, seed);
    engine::run_tenants_observed(
        &config,
        &timeline_tenants(),
        QueuePairPolicy::Shared,
        workers,
        timeline_spec(),
    )
}

/// The observed single-tenant breakdown run (what `breakdown
/// --timeline-out` exports): the Optane stage-attribution workload with
/// full telemetry.
pub fn observed_breakdown_run(seed: u64, workers: usize) -> (SimReport, RunTelemetry) {
    let spec = bam_nvme_sim::SsdSpec::intel_optane_p5800x();
    let config = breakdown_exp::breakdown_config(&spec, seed);
    let reqs = engine::mixed_requests(
        &config,
        breakdown_exp::BREAKDOWN_REQUESTS,
        breakdown_exp::BREAKDOWN_WRITES,
    );
    engine::run_observed(
        &config,
        bam_sim::Workload::ClosedLoop {
            in_flight: breakdown_exp::BREAKDOWN_IN_FLIGHT,
        },
        &reqs,
        workers,
        timeline_spec(),
    )
}

/// Renders the windowed series as a JSON array, one object per populated
/// window in time order.
pub fn windows_json(series: &WindowedSeries) -> String {
    json_array(series.iter().map(|(start_ns, w)| {
        let dwell: u64 = w.stage_dwell_ns.iter().sum();
        let wait: u64 = w.stage_wait_ns.iter().sum();
        JsonObject::new()
            .int("start_ns", start_ns)
            .int("arrivals", w.arrivals)
            .int("completions", w.completions)
            .num("p50_us", w.latency.value_at_quantile(0.50) as f64 / 1e3)
            .num("p99_us", w.latency.value_at_quantile(0.99) as f64 / 1e3)
            .num("depth_mean", w.depth_mean())
            .int("depth_max", w.depth_max)
            .num("occupancy_mean", w.occupancy_mean())
            .int("dwell_ns", dwell)
            .int("wait_ns", wait)
            .build()
    }))
}

/// Renders the blame decomposition as a JSON object: per-stage service/wait
/// totals for the population and the tail slice, plus the exemplar
/// waterfalls.
pub fn blame_json(blame: &BlameReport) -> String {
    let stages = json_array(blame.overall.active_stages().map(|stage| {
        JsonObject::new()
            .str("stage", stage.label())
            .int("service_ns", blame.overall.service_ns(stage))
            .int("wait_ns", blame.overall.wait_ns(stage))
            .int("tail_service_ns", blame.tail.service_ns(stage))
            .int("tail_wait_ns", blame.tail.wait_ns(stage))
            .build()
    }));
    let exemplars = json_array(blame.exemplars.iter().map(|ex| {
        let waterfall = json_array(ex.waterfall.iter().map(|w| {
            JsonObject::new()
                .str("stage", w.stage.label())
                .int("start_ns", w.start_ns)
                .int("end_ns", w.end_ns)
                .int("service_ns", w.service_ns)
                .int("wait_ns", w.wait_ns)
                .build()
        }));
        JsonObject::new()
            .int("id", ex.id)
            .int("arrive_ns", ex.arrive_ns)
            .int("latency_ns", ex.latency_ns)
            .raw("waterfall", waterfall)
            .build()
    }));
    JsonObject::new()
        .int("requests", blame.requests)
        .int("p99_cut_ns", blame.p99_cut_ns)
        .int("tail_requests", blame.tail_requests)
        .raw("stages", stages)
        .raw("exemplars", exemplars)
        .build()
}

/// Renders the per-tenant SLO outcomes as a JSON array (tenants without an
/// SLO are omitted). Tenant-class rows with an armed admission controller
/// append an `admission` object; plain tenants render exactly as before.
pub fn slo_json(report: &MultiTenantReport) -> String {
    json_array(report.tenants.iter().filter_map(|t| {
        t.slo.map(|s| {
            let mut obj = JsonObject::new()
                .str("tenant", &t.name)
                .num("target_p99_us", s.target_p99_us)
                .int("window_ns", s.window_ns)
                .int("windows", s.windows)
                .int("violations", s.violations)
                .int("completions", s.completions)
                .int("over_target", s.over_target)
                .num("burn_rate", s.burn_rate)
                .num("worst_window_p99_us", s.worst_window_p99_us)
                .int("worst_window_start_ns", s.worst_window_start_ns);
            if let Some(a) = t.admission {
                obj = obj.raw(
                    "admission",
                    JsonObject::new()
                        .int("offered", a.offered)
                        .int("admitted", a.admitted)
                        .int("deferrals", a.deferrals)
                        .int("rejected", a.rejected)
                        .int("depth_limit", a.depth_limit)
                        .build(),
                );
            }
            obj.build()
        })
    }))
}

/// The full timeline document of the flagship multi-tenant run — the body
/// of `BENCH_timeline.json` and of `tenants --timeline-out`.
pub fn timeline_body(seed: u64, report: &MultiTenantReport, tel: &RunTelemetry) -> String {
    JsonObject::new()
        .str("bench", "timeline")
        .int("seed", seed)
        .str("scenario", "bursty-shared")
        .int("window_ns", TIMELINE_WINDOW_NS)
        .int("completed", report.overall.completed)
        .num("overall_p99_us", report.overall.latency.p99_us)
        .raw("windows", windows_json(&tel.series))
        .raw("blame", blame_json(&tel.blame))
        .raw("slo", slo_json(report))
        .build()
}

/// The timeline document of the observed single-tenant breakdown run (no
/// SLO section) — the body of `breakdown --timeline-out`.
pub fn breakdown_timeline_body(seed: u64, report: &SimReport, tel: &RunTelemetry) -> String {
    JsonObject::new()
        .str("bench", "breakdown-timeline")
        .int("seed", seed)
        .int("window_ns", TIMELINE_WINDOW_NS)
        .int("completed", report.completed)
        .num("overall_p99_us", report.latency.p99_us)
        .raw("windows", windows_json(&tel.series))
        .raw("blame", blame_json(&tel.blame))
        .build()
}

/// The stage with the largest total (service + wait) share of one
/// exemplar's waterfall — the printed "dominant" column.
pub fn dominant_stage(ex: &bam_sim::Exemplar) -> Stage {
    Stage::ALL
        .into_iter()
        .max_by_key(|s| {
            ex.waterfall
                .iter()
                .filter(|w| w.stage == *s)
                .map(|w| w.service_ns + w.wait_ns)
                .sum::<u64>()
        })
        .expect("Stage::ALL is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift;

    #[test]
    fn timeline_run_attributes_and_violates_as_designed() {
        let (report, tel) = timeline_run(TIMELINE_SEED, 1);
        // Blame tiles the whole run's latency to the nanosecond.
        let total: u64 = report.overall.sorted_latencies_ns.iter().sum();
        assert_eq!(tel.blame.overall.total_ns(), total);
        assert_eq!(tel.blame.requests, report.overall.completed);
        // The tail's wait is queue-pair-dominated: the antagonist's backlog
        // sits in the shared submission slots, not in the media.
        let tail_qp_wait = tel.blame.tail.wait_ns(Stage::QueuePair);
        let tail_media_wait = tel.blame.tail.wait_ns(Stage::Media);
        assert!(
            tail_qp_wait > tail_media_wait,
            "tail blame must point at the queue pairs \
             (qp wait {tail_qp_wait} vs media wait {tail_media_wait})"
        );
        // Every steady tenant's SLO is violated and burning budget; the
        // antagonist carries no SLO.
        let mut with_slo = 0;
        for t in &report.tenants {
            if let Some(slo) = &t.slo {
                with_slo += 1;
                assert!(slo.violations > 0, "{}: no violations", t.name);
                assert!(slo.burn_rate > 1.0, "{}: burn {}", t.name, slo.burn_rate);
                assert_eq!(slo.completions, t.completed);
            }
        }
        assert_eq!(with_slo, TIMELINE_STEADY_TENANTS);
        assert!(report.tenants.last().unwrap().slo.is_none());
        // The series reconciles with the run aggregates.
        let completions: u64 = tel.series.iter().map(|(_, w)| w.completions).sum();
        assert_eq!(completions, report.overall.completed);
    }

    #[test]
    fn timeline_is_deterministic_and_worker_invariant() {
        let (ra, ta) = timeline_run(TIMELINE_SEED, 1);
        let (rb, tb) = timeline_run(TIMELINE_SEED, 4);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
        assert_eq!(
            timeline_body(TIMELINE_SEED, &ra, &ta),
            timeline_body(TIMELINE_SEED, &rb, &tb),
            "the exported document must be byte-identical"
        );
    }

    #[test]
    fn exported_documents_parse_and_carry_every_section() {
        let (report, tel) = timeline_run(TIMELINE_SEED, 1);
        let body = timeline_body(TIMELINE_SEED, &report, &tel);
        let doc = drift::parse(&body).expect("timeline JSON must parse");
        let drift::JsonValue::Object(fields) = doc else {
            panic!("not an object");
        };
        for key in ["bench", "windows", "blame", "slo"] {
            assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
        }

        let (sreport, stel) = observed_breakdown_run(breakdown_exp::BREAKDOWN_SEED, 1);
        let sbody = breakdown_timeline_body(breakdown_exp::BREAKDOWN_SEED, &sreport, &stel);
        drift::parse(&sbody).expect("breakdown timeline JSON must parse");
        let total: u64 = sreport.sorted_latencies_ns.iter().sum();
        assert_eq!(stel.blame.overall.total_ns(), total);
    }
}
