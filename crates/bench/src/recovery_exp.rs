//! Crash-recovery sweep: crash points × dirty-working-set sizes.
//!
//! Each cell drives a fixed dirty-write workload into a journalled
//! [`BamSystem`] with a [`CrashPoint`] armed at one of nine evenly spaced
//! durable steps (the last lands past the end — the no-crash control),
//! replays the surviving journal, and reports what recovery cost: how many
//! writes and lines were replayed, the journal's size and write
//! amplification, and the replay's simulated wall time on the event-driven
//! engine with the journal-flush stage enabled (vNV-Heap-style bounded
//! persist latency). Everything is deterministic — the replay time is
//! simulated, not measured — so the `recovery` binary's output is
//! bit-identical across runs and its `BENCH_recovery.json` sits under the
//! drift gate.

use std::sync::Arc;

use bam_core::journal::RECORD_OVERHEAD_BYTES;
use bam_core::{
    replay_plan, BamArray, BamConfig, BamError, BamSystem, CrashPoint, LineReplay, RecoveryReport,
};
use bam_nvme_sim::{DataLayout, SsdSpec};
use bam_pcie::LinkSpec;
use bam_sim::{run, PipelineParams, RequestDesc, SimConfig, Workload};

/// Dirty working sets swept (cache lines written before the crash).
pub const RECOVERY_DIRTY_SETS: [u64; 3] = [16, 64, 256];

/// Evenly spaced crash points per working set; index `RECOVERY_CRASH_POINTS`
/// itself arms one step past the end (the run that never crashes).
pub const RECOVERY_CRASH_POINTS: u64 = 8;

/// Acknowledged application writes per dirty line.
pub const RECOVERY_WRITES_PER_LINE: u64 = 4;

/// Seed of the replay-time simulation.
pub const RECOVERY_SIM_SEED: u64 = 7;

/// One cell of the recovery sweep.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Dirty working set (lines) the workload writes.
    pub dirty_lines: u64,
    /// Durable step the crash was armed at.
    pub crash_step: u64,
    /// Durable steps the full workload takes (dry-run count).
    pub total_steps: u64,
    /// Writes acknowledged before the crash struck.
    pub acked_writes: u64,
    /// Journal size at the crash, in bytes (including any torn tail).
    pub journal_bytes: u64,
    /// Journal bytes per acknowledged payload byte.
    pub write_amplification: f64,
    /// Complete records recovery decoded.
    pub records_scanned: u64,
    /// Whether the crash tore the final append.
    pub torn_tail: bool,
    /// Write records recovery redid.
    pub replayed_writes: u64,
    /// Lines recovery fetched, patched, and wrote back.
    pub replayed_lines: u64,
    /// Simulated replay time in microseconds (one read + one journalled
    /// write per replayed line on a single Optane SSD).
    pub replay_us: f64,
}

/// The sweep's system: test-scale geometry with the cache halved relative to
/// the working set, so evictions (journalled write-backs) happen mid-run.
fn sweep_config(dirty_lines: u64) -> BamConfig {
    let mut cfg = BamConfig::test_scale();
    cfg.cache_bytes = (dirty_lines / 2).max(4) * cfg.cache_line_bytes;
    cfg
}

/// Drives the cell's workload: `RECOVERY_WRITES_PER_LINE` element writes
/// into each of `dirty_lines` lines, then a full flush. Returns the number
/// of acknowledged writes; once the crash trips, the remaining operations
/// fail with [`BamError::Crashed`] and are not counted.
fn drive_workload(sys: &BamSystem, arr: &BamArray<u64>, dirty_lines: u64) -> u64 {
    let per_line = sys.config().cache_line_bytes / 8;
    let mut acked = 0;
    for line in 0..dirty_lines {
        for j in 0..RECOVERY_WRITES_PER_LINE {
            let idx = line * per_line + j * 13 + line % 7;
            match arr.write(idx, line * 1_000 + j) {
                Ok(()) => acked += 1,
                Err(BamError::Crashed) => {}
                Err(other) => panic!("unexpected write error {other:?}"),
            }
        }
    }
    match sys.flush() {
        Ok(_) | Err(BamError::Crashed) => {}
        Err(other) => panic!("unexpected flush error {other:?}"),
    }
    acked
}

/// Simulated replay time: each replayed line is one 512 B read plus one
/// journalled 512 B write on a single Optane SSD, with the journal-flush
/// stage charging the bounded persist cost of one metadata record.
fn simulate_replay_us(replayed_lines: u64) -> f64 {
    if replayed_lines == 0 {
        return 0.0;
    }
    let pipeline = PipelineParams::from_specs(
        &SsdSpec::intel_optane_p5800x(),
        &LinkSpec::gen4_x4(),
        &LinkSpec::gen4_x16(),
        512,
    )
    .deterministic()
    .with_journal_flush(RECORD_OVERHEAD_BYTES as u64);
    let cfg = SimConfig {
        seed: RECOVERY_SIM_SEED,
        num_ssds: 1,
        queue_pairs_per_ssd: 4,
        pipeline,
    };
    let mut requests = Vec::with_capacity(2 * replayed_lines as usize);
    for _ in 0..replayed_lines {
        requests.push(RequestDesc::read(512));
        requests.push(RequestDesc::write(512));
    }
    let in_flight = (requests.len() as u32).min(64);
    let report = run(&cfg, Workload::ClosedLoop { in_flight }, &requests);
    report.sim_time_s * 1e6
}

/// Runs one cell: workload into an armed crash, then journal replay.
fn run_cell(dirty_lines: u64, crash_step: u64, total_steps: u64, torn_bytes: u64) -> RecoveryRow {
    let cp = Arc::new(CrashPoint::new());
    let sys = BamSystem::with_crash_point(sweep_config(dirty_lines), cp.clone()).unwrap();
    let per_line = sys.config().cache_line_bytes / 8;
    let arr = sys.create_array::<u64>(dirty_lines * per_line).unwrap();
    arr.preload(&vec![0u64; (dirty_lines * per_line) as usize])
        .unwrap();
    cp.arm(crash_step, torn_bytes);
    let acked = drive_workload(&sys, &arr, dirty_lines);

    let journal = sys.journal().expect("sweep systems are journalled");
    let write_amplification = journal.write_amplification();
    let image = journal.snapshot();
    let report = sys.recover_from_journal(&image).unwrap();

    RecoveryRow {
        dirty_lines,
        crash_step,
        total_steps,
        acked_writes: acked,
        journal_bytes: report.journal_bytes,
        write_amplification,
        records_scanned: report.records_scanned,
        torn_tail: report.torn_tail,
        replayed_writes: report.replayed_writes,
        replayed_lines: report.replayed_lines,
        replay_us: simulate_replay_us(report.replayed_lines),
    }
}

/// The cell `recovery --verbose` dissects: the largest dirty working set
/// crashed halfway through its durable steps. Returns the per-line replay
/// plan (decoded from the surviving journal *before* the replay runs) and
/// the recovery report; the plan's pending writes always sum to the
/// report's replayed writes.
pub fn verbose_cell() -> (Vec<LineReplay>, RecoveryReport) {
    let dirty_lines = *RECOVERY_DIRTY_SETS.last().expect("non-empty sweep");
    let per_line = sweep_config(dirty_lines).cache_line_bytes / 8;
    let build = || {
        let cp = Arc::new(CrashPoint::new());
        let sys = BamSystem::with_crash_point(sweep_config(dirty_lines), cp.clone()).unwrap();
        let arr = sys.create_array::<u64>(dirty_lines * per_line).unwrap();
        arr.preload(&vec![0u64; (dirty_lines * per_line) as usize])
            .unwrap();
        (cp, sys, arr)
    };
    // Dry run: count the durable steps this working set takes.
    let (cp, sys, arr) = build();
    drive_workload(&sys, &arr, dirty_lines);
    let total_steps = cp.steps_taken();

    // The mid-run crash, replayed with its plan decoded first.
    let (cp, sys, arr) = build();
    cp.arm(total_steps / 2, 24);
    drive_workload(&sys, &arr, dirty_lines);
    let image = sys
        .journal()
        .expect("sweep systems are journalled")
        .snapshot();
    let cfg = sys.config();
    let logical_capacity = match cfg.layout {
        DataLayout::Replicated => cfg.ssd_capacity_bytes,
        DataLayout::Striped { .. } => cfg.ssd_capacity_bytes * cfg.num_ssds as u64,
    };
    let plan = replay_plan(
        &image,
        logical_capacity / cfg.cache_line_bytes,
        cfg.cache_line_bytes,
    )
    .expect("a live run's journal decodes");
    let report = sys.recover_from_journal(&image).unwrap();
    (plan, report)
}

/// The full sweep: every dirty-set size × nine evenly spaced crash points
/// (the ninth past the end, so the no-crash journal is in the trajectory).
pub fn recovery_sweep() -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for &dirty_lines in &RECOVERY_DIRTY_SETS {
        // Dry run: count the durable steps this working set takes.
        let cp = Arc::new(CrashPoint::new());
        let sys = BamSystem::with_crash_point(sweep_config(dirty_lines), cp.clone()).unwrap();
        let per_line = sys.config().cache_line_bytes / 8;
        let arr = sys.create_array::<u64>(dirty_lines * per_line).unwrap();
        arr.preload(&vec![0u64; (dirty_lines * per_line) as usize])
            .unwrap();
        drive_workload(&sys, &arr, dirty_lines);
        let total_steps = cp.steps_taken();

        for k in 0..=RECOVERY_CRASH_POINTS {
            let crash_step = k * total_steps / RECOVERY_CRASH_POINTS;
            rows.push(run_cell(
                dirty_lines,
                crash_step,
                total_steps,
                (k * 13) % 56,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbose_cell_plan_matches_its_report() {
        let (plan, report) = verbose_cell();
        let planned_writes: u64 = plan.iter().map(|l| l.pending_writes).sum();
        let planned_lines = plan.iter().filter(|l| l.pending_writes > 0).count() as u64;
        assert_eq!(planned_writes, report.replayed_writes);
        assert_eq!(planned_lines, report.replayed_lines);
        assert!(report.replayed_lines > 0, "the mid-run crash owes a replay");
        assert!(report.to_string().contains("replayed"));
    }

    #[test]
    fn sweep_is_deterministic_and_replays_scale_with_dirty_set() {
        let a = recovery_sweep();
        assert_eq!(
            a.len() as u64,
            RECOVERY_DIRTY_SETS.len() as u64 * (RECOVERY_CRASH_POINTS + 1)
        );
        for row in &a {
            assert!(row.crash_step <= row.total_steps);
            assert!(row.replayed_writes <= row.acked_writes);
            assert!(row.replayed_lines <= row.dirty_lines);
            assert_eq!(row.replay_us == 0.0, row.replayed_lines == 0);
            if row.acked_writes > 0 {
                assert!(row.write_amplification > 1.0);
            }
        }
        // The no-crash control row of each working set committed every
        // write-back: nothing to replay.
        for row in a.iter().filter(|r| r.crash_step == r.total_steps) {
            assert_eq!(row.replayed_lines, 0, "committed flush must not replay");
            assert!(!row.torn_tail);
        }
        // Determinism: the whole sweep reproduces bit-identically.
        let b = recovery_sweep();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.crash_step, y.crash_step);
            assert_eq!(x.journal_bytes, y.journal_bytes);
            assert_eq!(x.replayed_writes, y.replayed_writes);
            assert!(x.write_amplification == y.write_amplification);
            assert!(x.replay_us == y.replay_us);
        }
    }
}
