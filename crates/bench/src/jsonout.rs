//! Minimal JSON emission for the `--json` modes of the figure binaries.
//!
//! The offline `serde` shim is a marker-trait stand-in with no serializer, so
//! the harnesses build their `BENCH_<name>.json` perf-tracking files through
//! this small hand-rolled builder instead. Output is deterministic: fields
//! appear in insertion order.

use std::path::PathBuf;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values). Uses
/// `Debug` formatting so integral values keep a trailing `.0`: the drift
/// gate (`crate::drift`) compares integer literals exactly and float
/// literals with tolerance, so a float field must never render in the
/// integer shape or an in-band drift on it would hard-fail the gate.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// An ordered JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), num(value)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let body: Vec<String> = self
            .fields
            .into_iter()
            .map(|(k, v)| format!("\"{}\": {v}", escape(&k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders a JSON array from pre-rendered values.
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(", "))
}

/// Writes `body` to `BENCH_<name>.json` at the workspace root (anchored via
/// this crate's manifest dir, so the invocation directory does not matter)
/// and returns the path. The figure binaries call this under `--json` so
/// future PRs can track perf drift from the committed history of these files.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, body: &str) -> std::io::Result<PathBuf> {
    // crates/bench/ -> crates/ -> workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root");
    let path = root.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{body}\n"))?;
    Ok(path)
}

/// The shared `--json` epilogue of every figure binary: writes
/// `BENCH_<name>.json` at the workspace root and logs the path to stderr.
/// Hoisted here so no binary re-implements the write-and-report sequence
/// (or drifts from the workspace-rooted path convention).
///
/// # Panics
///
/// Panics if the file cannot be written — a bench run that silently loses
/// its trajectory point would defeat the drift gate.
pub fn emit_bench_json(name: &str, body: &str) {
    let path =
        write_bench_json(name, body).unwrap_or_else(|e| panic!("write BENCH_{name}.json: {e}"));
    eprintln!("wrote {}", path.display());
}

/// `true` when the process arguments request JSON output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_renders_in_insertion_order() {
        let s = JsonObject::new()
            .str("name", "fig4")
            .int("requests", 1024)
            .num("miops", 5.1)
            .build();
        assert_eq!(
            s,
            "{\"name\": \"fig4\", \"requests\": 1024, \"miops\": 5.1}"
        );
    }

    #[test]
    fn integral_floats_keep_the_float_shape() {
        // The drift gate treats integer literals as exact fields; a float
        // field landing on an integral value must still render as a float.
        let s = JsonObject::new().num("interference", 1.0).build();
        assert_eq!(s, "{\"interference\": 1.0}");
    }

    #[test]
    fn escaping_and_nonfinite_are_safe() {
        let s = JsonObject::new()
            .str("q", "a\"b\\c\nd")
            .num("bad", f64::INFINITY)
            .build();
        assert_eq!(s, "{\"q\": \"a\\\"b\\\\c\\nd\", \"bad\": null}");
    }

    #[test]
    fn arrays_nest() {
        let arr = json_array([
            JsonObject::new().int("x", 1).build(),
            JsonObject::new().int("x", 2).build(),
        ]);
        let s = JsonObject::new().raw("rows", arr).build();
        assert_eq!(s, "{\"rows\": [{\"x\": 1}, {\"x\": 2}]}");
    }

    #[test]
    fn write_creates_the_bench_file() {
        let path = write_bench_json("jsonout_unit_test", "{}").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(content, "{}\n");
        assert!(path
            .to_string_lossy()
            .contains("BENCH_jsonout_unit_test.json"));
    }
}
