//! # bam-bench — experiment harnesses for every table and figure
//!
//! Each experiment of the paper's evaluation is implemented as a library
//! function that returns structured rows; the `src/bin/*` binaries print
//! those rows in the same form the paper reports, and the Criterion benches
//! and integration tests exercise the same functions at reduced scale.
//!
//! Methodology (see DESIGN.md): workloads execute *functionally* on the
//! simulated BaM stack at a reduced scale, and measured ratios (cache hit
//! rates, I/O per unit of work, amplification) are combined with the
//! calibrated analytical envelopes to produce full-scale numbers. Absolute
//! values are not expected to match the authors' testbed; the shapes — who
//! wins, by what factor, where the knees are — are.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`misc_exp::table2`] | Table 2 (SSD technology comparison) |
//! | [`misc_exp::table3`] | Table 3 (graph datasets) |
//! | [`micro_exp::figure4`] | Fig 4 (512 B random IOPS scaling) |
//! | [`micro_exp::figure5`] | Fig 5 (BaM vs GDS bandwidth vs granularity) |
//! | [`micro_exp::figure6`] | Fig 6 (BaM vs ActivePointers) |
//! | [`graph_exp::figure7`] | Fig 7 (BFS/CC vs Target, 1 vs 4 SSDs) |
//! | [`graph_exp::figure8`] | Fig 8 (sources of improvement) |
//! | [`graph_exp::figure9`] | Fig 9 (SSD technology slowdown) |
//! | [`graph_exp::figure10`] | Fig 10 (cache-size sensitivity) |
//! | [`graph_exp::figure11`] | Fig 11 (queue-pair sensitivity, analytic + event-driven) |
//! | [`sim_exp::latency_cdf`] | Tail-latency CDFs per SSD technology (event-driven; extends Fig 9 / Table 2) |
//! | [`sim_exp::tenant_matrix`] | Multi-tenant interference/fairness sweep (event-driven; beyond the paper) |
//! | [`slo_exp::slo_sweep`] | Million-tenant class knee sweep: SLO admission control on/off (beyond the paper) |
//! | [`breakdown_exp::breakdown`] | Per-stage latency attribution + span traces (event-driven; beyond the paper) |
//! | [`timeline_exp::timeline_run`] | Tail root-cause attribution: windowed telemetry, per-resource blame, SLO burn rates (beyond the paper) |
//! | [`analytics_exp::figure12`] | Fig 12 (BaM vs RAPIDS, I/O amplification) |
//! | [`misc_exp::figure13`] | Fig 13 (register usage) |
//! | [`analytics_exp::figure14`] | Fig 14 (RAPIDS breakdown) |
//! | [`misc_exp::figure15`] | Fig 15 (UVM vs ZeroCopy) |
//! | [`misc_exp::vectoradd_eval`] | §5.4 (vectorAdd) |
//! | [`recovery_exp::recovery_sweep`] | Crash-recovery sweep (journal replay; beyond the paper) |
//! | [`engine_exp::engine_sweep`] | Engine throughput: inline vs sharded event engine (infrastructure; beyond the paper) |

pub mod analytics_exp;
pub mod breakdown_exp;
pub mod drift;
pub mod engine_exp;
pub mod graph_exp;
pub mod jsonout;
pub mod micro_exp;
pub mod misc_exp;
pub mod recovery_exp;
pub mod scale;
pub mod sim_exp;
pub mod slo_exp;
pub mod timeline_exp;

/// The worker count following `--workers` in the process arguments, or 1
/// (the inline engine) when absent — the event-driven binaries take this
/// flag, and their default output stays byte-identical to the
/// single-threaded engine's because `workers == 1` *is* the inline path.
///
/// # Panics
///
/// Panics if the flag is present without a positive integer value.
pub fn workers_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--workers" {
            let v = args.next().expect("--workers needs a value");
            let n: usize = v.parse().expect("--workers must be an integer");
            assert!(n > 0, "--workers must be at least 1");
            return n;
        }
    }
    1
}

/// The path following `--timeline-out` in the process arguments, or `None`
/// when absent — the observability binaries take this flag to export the
/// run's full timeline document (windowed telemetry + blame decomposition
/// [+ SLO outcomes]) as JSON. The export is deterministic per seed and
/// byte-identical at every `--workers` count.
///
/// # Panics
///
/// Panics if the flag is present without a path value.
pub fn timeline_out_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--timeline-out" {
            return Some(args.next().expect("--timeline-out needs a path"));
        }
    }
    None
}

/// Prints a table of rows as aligned columns on stdout (shared by the
/// figure binaries).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<width$}  ",
                c,
                width = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_table_does_not_panic() {
        super::print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
