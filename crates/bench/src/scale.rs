//! Scaled experiment configurations.
//!
//! The paper's runs use terabyte-class SSD arrays and multi-gigabyte caches;
//! the functional simulation runs the same code at a laptop-friendly scale
//! and preserves the ratios that matter (cache-to-dataset ratio, cache-line
//! size, queue geometry). This module centralizes those scaled
//! configurations so every harness and test uses the same ones.

use bam_core::BamConfig;
use bam_nvme_sim::SsdSpec;

/// Default dataset scale for graph experiments: fraction of the original
/// node count that is actually generated and run functionally.
pub const GRAPH_SCALE: f64 = 1.2e-5;

/// Default row count for the functional analytics runs (the full dataset has
/// 1.7 billion rows).
pub const TAXI_ROWS: usize = 100_000;

/// Number of executor worker threads used by the harnesses.
pub const WORKERS: usize = 4;

/// A BaM configuration for functional experiment runs: `num_ssds` devices of
/// `spec`, a cache sized to `cache_fraction` of `dataset_bytes`, and the
/// paper's 4 KB-line-equivalent geometry scaled to 512 B lines.
pub fn experiment_config(
    spec: SsdSpec,
    num_ssds: usize,
    dataset_bytes: u64,
    cache_fraction: f64,
    queue_pairs_per_ssd: u32,
) -> BamConfig {
    let cache_line_bytes = 512;
    // Floor of 64 slots: even the paper's smallest configuration (1 GB at
    // 4 KB lines) has hundreds of thousands of slots, so transient reuse
    // across concurrently running warps is never slot-starved. Without the
    // floor, per-mille-scale functional runs would thrash on a handful of
    // slots — an artifact of the scaling, not of the design.
    let cache_bytes = (((dataset_bytes as f64 * cache_fraction) as u64).max(64 * cache_line_bytes))
        .next_multiple_of(cache_line_bytes);
    let ssd_capacity_bytes = (dataset_bytes * 4).max(8 << 20);
    BamConfig {
        cache_line_bytes,
        cache_bytes,
        num_ssds,
        ssd_spec: spec,
        ssd_capacity_bytes,
        queue_pairs_per_ssd,
        queue_depth: 64,
        gpu_memory_bytes: (cache_bytes + (16 << 20)).max(32 << 20),
        ..BamConfig::default()
    }
}

/// The cache fraction equivalent to the paper's 8 GB cache against its
/// ~30 GB datasets.
pub const PAPER_CACHE_FRACTION: f64 = 8.0 / 30.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_config_is_valid() {
        let cfg = experiment_config(SsdSpec::intel_optane_p5800x(), 4, 4 << 20, 0.25, 8);
        assert!(cfg.validate().is_ok());
        assert!(cfg.cache_bytes >= (1 << 20));
        assert!(cfg.ssd_capacity_bytes >= 16 << 20);
    }

    #[test]
    fn tiny_datasets_still_get_a_cache() {
        let cfg = experiment_config(SsdSpec::samsung_980pro(), 1, 100_000, 0.01, 2);
        assert!(cfg.validate().is_ok());
        assert!(cfg.cache_bytes >= 8 * 512);
    }
}
