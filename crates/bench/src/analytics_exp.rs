//! Data-analytics experiments: Figures 12 and 14.

use serde::{Deserialize, Serialize};

use bam_baselines::{BamPerformanceModel, RapidsModel, RapidsQueryResult};
use bam_core::{BamSystem, MetricsSnapshot};
use bam_gpu_sim::{GpuExecutor, GpuSpec};
use bam_nvme_sim::SsdSpec;
use bam_timing::SsdArrayModel;
use bam_workloads::analytics::{query_bam, query_reference, BamTaxiTable, TaxiTable};

use crate::scale::{experiment_config, WORKERS};

/// Row count of the real NYC Taxi dataset.
pub const FULL_ROWS: u64 = 1_700_000_000;
/// Selected rows (trips of at least 30 miles) in the real dataset.
pub const FULL_SELECTED: u64 = 511_000;
/// Cache-line size of the paper's analytics runs.
const FULL_SCALE_LINE: u64 = 4096;
/// Concurrent GPU threads assumed when converting counts to time.
const PARALLELISM: u64 = 1 << 17;

/// One query's entry in Figure 12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Query index (0–5).
    pub query: usize,
    /// RAPIDS (CPU-memory resident) execution result.
    pub rapids: RapidsQueryResult,
    /// BaM end-to-end seconds with 1, 2, and 4 Optane SSDs.
    pub bam_seconds: [f64; 3],
    /// BaM I/O amplification measured functionally.
    pub bam_io_amplification: f64,
    /// RAPIDS I/O amplification.
    pub rapids_io_amplification: f64,
}

impl Fig12Row {
    /// Speedup of BaM (4 SSDs) over RAPIDS.
    pub fn speedup_4ssd(&self) -> f64 {
        self.rapids.total_s() / self.bam_seconds[2]
    }
}

/// A functional measurement of one query at reduced scale.
#[derive(Debug, Clone)]
pub struct AnalyticsMeasurement {
    /// Query index.
    pub query: usize,
    /// Rows in the functional table.
    pub scaled_rows: u64,
    /// Metrics of the functional BaM run.
    pub metrics: MetricsSnapshot,
}

impl AnalyticsMeasurement {
    /// Rescales the measured counts to the full 1.7 B-row dataset and the
    /// full-scale line size.
    pub fn full_scale_metrics(&self, run_line_bytes: u64) -> MetricsSnapshot {
        let f = FULL_ROWS as f64 / self.scaled_rows.max(1) as f64;
        let line_ratio = run_line_bytes as f64 / FULL_SCALE_LINE as f64;
        let m = &self.metrics;
        MetricsSnapshot {
            cache_hits: (m.cache_hits as f64 * f * line_ratio) as u64,
            cache_misses: (m.cache_misses as f64 * f * line_ratio) as u64,
            cache_evictions: (m.cache_evictions as f64 * f * line_ratio) as u64,
            cache_writebacks: (m.cache_writebacks as f64 * f * line_ratio) as u64,
            probe_attempts: (m.probe_attempts as f64 * f * line_ratio) as u64,
            coalesced_accesses: (m.coalesced_accesses as f64 * f) as u64,
            reused_references: (m.reused_references as f64 * f) as u64,
            read_requests: (m.bytes_read as f64 * f / FULL_SCALE_LINE as f64) as u64,
            write_requests: (m.bytes_written as f64 * f / FULL_SCALE_LINE as f64) as u64,
            bytes_read: (m.bytes_read as f64 * f) as u64,
            bytes_written: (m.bytes_written as f64 * f) as u64,
            bytes_requested: (m.bytes_requested as f64 * f) as u64,
        }
    }
}

/// Runs query `q` functionally through BaM on a generated table of
/// `rows` rows and returns the measurement. Panics if the BaM result
/// disagrees with the host reference.
pub fn measure_query(rows: usize, q: usize, seed: u64) -> AnalyticsMeasurement {
    // Use the paper's selectivity scaled so a few hundred rows are selected
    // even in small functional tables.
    let selectivity = (FULL_SELECTED as f64 / FULL_ROWS as f64).max(200.0 / rows as f64);
    let table = TaxiTable::generate(rows, selectivity, seed);
    let dataset_bytes = table.column_bytes() * 6;
    let config = experiment_config(SsdSpec::intel_optane_p5800x(), 4, dataset_bytes, 0.25, 8);
    let line = config.cache_line_bytes;
    let system = BamSystem::new(config).expect("system");
    let bam_table = BamTaxiTable::upload(&system, &table).expect("upload");
    system.reset_metrics();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), WORKERS);
    let out = query_bam(&bam_table, q, &exec).expect("query");
    let reference = query_reference(&table, q);
    assert_eq!(out.selected_rows, reference.selected_rows, "Q{q} selected rows");
    assert!(
        (out.aggregate - reference.aggregate).abs() <= 1e-6 * reference.aggregate.abs().max(1.0),
        "Q{q} aggregate mismatch"
    );
    let mut metrics = system.metrics();
    // Record the line size used so rescaling can correct request counts.
    metrics.bytes_requested = metrics.bytes_requested.max(1);
    let _ = line;
    AnalyticsMeasurement { query: q, scaled_rows: rows as u64, metrics }
}

/// Figure 12: BaM (1/2/4 SSDs) vs RAPIDS for queries Q0–Q5, with I/O
/// amplification.
pub fn figure12(rows: usize, seed: u64) -> Vec<Fig12Row> {
    let rapids_model = RapidsModel::prototype();
    let mut out = Vec::new();
    for q in 0..=5usize {
        let m = measure_query(rows, q, seed + q as u64);
        // The RAPIDS demand uses the real dataset's row counts.
        let rapids_query = bam_baselines::rapids::RapidsQuery {
            rows: FULL_ROWS,
            value_bytes: 8,
            columns: (q + 1) as u64,
            selected_rows: FULL_SELECTED,
        };
        let rapids = rapids_model.evaluate(&rapids_query);
        let full = m.full_scale_metrics(512);
        let mut bam_seconds = [0.0f64; 3];
        for (i, ssds) in [1usize, 2, 4].into_iter().enumerate() {
            let model = BamPerformanceModel::new(
                SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), ssds),
                FULL_SCALE_LINE,
                PARALLELISM,
            );
            // Compute: one scan op per row plus one per dependent access.
            let compute_ops = FULL_ROWS + full.bytes_requested / 8;
            bam_seconds[i] = model.evaluate(&full, compute_ops).total_s();
        }
        out.push(Fig12Row {
            query: q,
            rapids,
            bam_seconds,
            bam_io_amplification: m.metrics.io_amplification(),
            rapids_io_amplification: rapids_query.io_amplification(),
        });
    }
    out
}

/// One query's entry in Figure 14 (RAPIDS time breakdown + amplification).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Query index (0–5).
    pub query: usize,
    /// Fraction of end-to-end time in row-group initialization.
    pub init_fraction: f64,
    /// Fraction in the GPU query kernel.
    pub query_fraction: f64,
    /// Fraction in cleanup.
    pub cleanup_fraction: f64,
    /// I/O amplification factor.
    pub io_amplification: f64,
}

/// Figure 14: RAPIDS execution-time breakdown and I/O amplification, Q0–Q5.
pub fn figure14() -> Vec<Fig14Row> {
    let model = RapidsModel::prototype();
    (0..=5usize)
        .map(|q| {
            let query = bam_baselines::rapids::RapidsQuery {
                rows: FULL_ROWS,
                value_bytes: 8,
                columns: (q + 1) as u64,
                selected_rows: FULL_SELECTED,
            };
            let r = model.evaluate(&query);
            let total = r.total_s();
            Fig14Row {
                query: q,
                init_fraction: r.row_group_init_s / total,
                query_fraction: r.query_s / total,
                cleanup_fraction: r.cleanup_s / total,
                io_amplification: r.io_amplification,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape_bam_wins_and_gap_grows() {
        let rows = figure12(20_000, 9);
        assert_eq!(rows.len(), 6);
        // BaM beats RAPIDS on every query, even with one SSD.
        for r in &rows {
            assert!(
                r.rapids.total_s() > r.bam_seconds[0],
                "Q{}: RAPIDS {} vs BaM(1) {}",
                r.query,
                r.rapids.total_s(),
                r.bam_seconds[0]
            );
        }
        // The advantage grows with data-dependent columns and reaches ~5x.
        let q0 = rows[0].speedup_4ssd();
        let q5 = rows[5].speedup_4ssd();
        assert!(q5 > q0, "speedup must grow: Q0 {q0} Q5 {q5}");
        assert!(q5 > 3.0, "Q5 speedup {q5}");
        // RAPIDS amplification grows with columns; BaM's stays near 1.
        assert!(rows[5].rapids_io_amplification > 4.0);
        assert!(rows[5].bam_io_amplification < 3.0);
        // More SSDs never hurt.
        for r in &rows {
            assert!(r.bam_seconds[2] <= r.bam_seconds[0] + 1e-9);
        }
    }

    #[test]
    fn figure14_shape_row_group_handling_dominates() {
        let rows = figure14();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.init_fraction > 0.5, "Q{} init fraction {}", r.query, r.init_fraction);
            assert!(r.query_fraction < 0.2);
            let total = r.init_fraction + r.query_fraction + r.cleanup_fraction;
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(rows[5].io_amplification > rows[1].io_amplification);
    }
}
