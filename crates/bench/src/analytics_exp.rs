//! Data-analytics experiments: Figures 12 and 14.

use serde::{Deserialize, Serialize};

use bam_baselines::{BamPerformanceModel, RapidsModel, RapidsQueryResult};
use bam_core::{BamSystem, MetricsSnapshot};
use bam_gpu_sim::{GpuExecutor, GpuSpec};
use bam_nvme_sim::SsdSpec;
use bam_timing::SsdArrayModel;
use bam_workloads::analytics::{query_bam, query_reference, BamTaxiTable, TaxiTable};

use crate::scale::{experiment_config, WORKERS};

/// Row count of the real NYC Taxi dataset.
pub const FULL_ROWS: u64 = 1_700_000_000;
/// Selected rows (trips of at least 30 miles) in the real dataset.
pub const FULL_SELECTED: u64 = 511_000;
/// Cache-line size of the paper's analytics runs.
const FULL_SCALE_LINE: u64 = 4096;
/// Concurrent GPU threads assumed when converting counts to time.
const PARALLELISM: u64 = 1 << 17;

/// One query's entry in Figure 12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Query index (0–5).
    pub query: usize,
    /// RAPIDS (CPU-memory resident) execution result.
    pub rapids: RapidsQueryResult,
    /// BaM end-to-end seconds with 1, 2, and 4 Optane SSDs.
    pub bam_seconds: [f64; 3],
    /// BaM I/O amplification, projected from the functional run to the
    /// full-scale dataset (selectivity-corrected; see
    /// [`AnalyticsMeasurement::full_scale_metrics`]).
    pub bam_io_amplification: f64,
    /// RAPIDS I/O amplification.
    pub rapids_io_amplification: f64,
}

impl Fig12Row {
    /// Speedup of BaM (4 SSDs) over RAPIDS.
    pub fn speedup_4ssd(&self) -> f64 {
        self.rapids.total_s() / self.bam_seconds[2]
    }
}

/// A functional measurement of one query at reduced scale.
#[derive(Debug, Clone)]
pub struct AnalyticsMeasurement {
    /// Query index.
    pub query: usize,
    /// Rows in the functional table.
    pub scaled_rows: u64,
    /// Rows the distance filter selected in the functional run.
    pub selected_rows: u64,
    /// Cache-line size of the functional run, in bytes.
    pub line_bytes: u64,
    /// Metrics of the functional BaM run.
    pub metrics: MetricsSnapshot,
}

impl AnalyticsMeasurement {
    /// Rescales the measured counts to the full 1.7 B-row dataset and the
    /// full-scale line size, correcting for the inflated selectivity of the
    /// functional run.
    ///
    /// The functional table inflates selectivity (≈1 % instead of the real
    /// ≈0.03 %) so that even a few-thousand-row table selects enough rows to
    /// exercise the dependent-access path. Scaling the *whole* metric set by
    /// the row ratio would carry that inflation into the projection, so each
    /// component is split into the sequential distance scan (known
    /// analytically: 8 B requested per row, each line fetched once, no hits)
    /// and the data-dependent column traffic (everything else), and the two
    /// parts are rescaled with their own factors: rows for the scan,
    /// selected rows for the dependent traffic. The line-size ratio shrinks
    /// scan *counts* (fewer, larger lines at full scale) but not dependent
    /// counts — selected rows are sparse, so a dependent access still costs
    /// one probe/miss regardless of line size. Dependent *bytes* therefore
    /// grow by the inverse line ratio: each surviving miss fetches a
    /// full-scale line, keeping `bytes_read ≈ cache_misses × line` coherent.
    pub fn full_scale_metrics(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        let row_factor = FULL_ROWS as f64 / self.scaled_rows.max(1) as f64;
        let sel_factor = FULL_SELECTED as f64 / self.selected_rows.max(1) as f64;
        let line_ratio = self.line_bytes as f64 / FULL_SCALE_LINE as f64;

        // Scan component, known analytically.
        let scan_requested = self.scaled_rows * 8;
        let scan_lines = scan_requested.div_ceil(self.line_bytes);
        let scan_read = scan_lines * self.line_bytes;

        // Dependent component: the remainder of the measured traffic.
        let dep_requested = m.bytes_requested.saturating_sub(scan_requested);
        let dep_accesses = dep_requested / 8;
        let dep_read = m.bytes_read.saturating_sub(scan_read);
        let dep_misses = m.cache_misses.saturating_sub(scan_lines);
        let dep_probes = m.probe_attempts.min(dep_accesses);
        let scan_probes = m.probe_attempts - dep_probes;
        // Dirty evictions are dependent-column lines (the scan never
        // dirties); the clean remainder is scan streaming pressure.
        let dep_evictions = m.cache_writebacks.min(m.cache_evictions);
        let scan_evictions = m.cache_evictions - dep_evictions;

        let scan_count = |n: u64| (n as f64 * row_factor * line_ratio) as u64;
        let dep_count = |n: u64| (n as f64 * sel_factor) as u64;
        let dep_bytes = |n: u64| (n as f64 * sel_factor / line_ratio) as u64;
        let bytes_read = (scan_read as f64 * row_factor) as u64 + dep_bytes(dep_read);
        // Writes only arise from data-dependent updates in this workload.
        let bytes_written = dep_bytes(m.bytes_written);
        MetricsSnapshot {
            // All hits come from dependent accesses: the scan touches each
            // line exactly once.
            cache_hits: dep_count(m.cache_hits),
            cache_misses: scan_count(scan_lines) + dep_count(dep_misses),
            cache_evictions: scan_count(scan_evictions) + dep_count(dep_evictions),
            cache_writebacks: dep_count(m.cache_writebacks),
            probe_attempts: scan_count(scan_probes) + dep_count(dep_probes),
            coalesced_accesses: (m.coalesced_accesses as f64 * row_factor) as u64,
            reused_references: (m.reused_references as f64 * row_factor) as u64,
            read_requests: bytes_read / FULL_SCALE_LINE,
            write_requests: bytes_written / FULL_SCALE_LINE,
            bytes_read,
            bytes_written,
            bytes_requested: (scan_requested as f64 * row_factor
                + dep_requested as f64 * sel_factor) as u64,
            // Retries and journal traffic follow the dependent (write-side)
            // accesses; the scan never retries or journals in this workload.
            storage_retries: dep_count(m.storage_retries),
            journal_appends: dep_count(m.journal_appends),
            journal_bytes: dep_bytes(m.journal_bytes),
        }
    }
}

/// Runs query `q` functionally through BaM on a generated table of
/// `rows` rows and returns the measurement. Panics if the BaM result
/// disagrees with the host reference.
pub fn measure_query(rows: usize, q: usize, seed: u64) -> AnalyticsMeasurement {
    // Use the paper's selectivity scaled so a few hundred rows are selected
    // even in small functional tables.
    let selectivity = (FULL_SELECTED as f64 / FULL_ROWS as f64).max(200.0 / rows as f64);
    let table = TaxiTable::generate(rows, selectivity, seed);
    let dataset_bytes = table.column_bytes() * 6;
    let config = experiment_config(SsdSpec::intel_optane_p5800x(), 4, dataset_bytes, 0.25, 8);
    let line = config.cache_line_bytes;
    let system = BamSystem::new(config).expect("system");
    let bam_table = BamTaxiTable::upload(&system, &table).expect("upload");
    system.reset_metrics();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), WORKERS);
    let out = query_bam(&bam_table, q, &exec).expect("query");
    let reference = query_reference(&table, q);
    assert_eq!(
        out.selected_rows, reference.selected_rows,
        "Q{q} selected rows"
    );
    assert!(
        (out.aggregate - reference.aggregate).abs() <= 1e-6 * reference.aggregate.abs().max(1.0),
        "Q{q} aggregate mismatch"
    );
    let metrics = system.metrics();
    AnalyticsMeasurement {
        query: q,
        scaled_rows: rows as u64,
        selected_rows: out.selected_rows,
        line_bytes: line,
        metrics,
    }
}

/// Figure 12: BaM (1/2/4 SSDs) vs RAPIDS for queries Q0–Q5, with I/O
/// amplification.
pub fn figure12(rows: usize, seed: u64) -> Vec<Fig12Row> {
    let rapids_model = RapidsModel::prototype();
    let mut out = Vec::new();
    for q in 0..=5usize {
        let m = measure_query(rows, q, seed + q as u64);
        // The RAPIDS demand uses the real dataset's row counts.
        let rapids_query = bam_baselines::rapids::RapidsQuery {
            rows: FULL_ROWS,
            value_bytes: 8,
            columns: (q + 1) as u64,
            selected_rows: FULL_SELECTED,
        };
        let rapids = rapids_model.evaluate(&rapids_query);
        let full = m.full_scale_metrics();
        let mut bam_seconds = [0.0f64; 3];
        for (i, ssds) in [1usize, 2, 4].into_iter().enumerate() {
            let model = BamPerformanceModel::new(
                SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), ssds),
                FULL_SCALE_LINE,
                PARALLELISM,
            );
            // Compute: one scan op per row plus one per dependent access.
            let compute_ops = FULL_ROWS + full.bytes_requested / 8;
            bam_seconds[i] = model.evaluate(&full, compute_ops).total_s();
        }
        out.push(Fig12Row {
            query: q,
            rapids,
            bam_seconds,
            bam_io_amplification: full.io_amplification(),
            rapids_io_amplification: rapids_query.io_amplification(),
        });
    }
    out
}

/// One query's entry in Figure 14 (RAPIDS time breakdown + amplification).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Query index (0–5).
    pub query: usize,
    /// Fraction of end-to-end time in row-group initialization.
    pub init_fraction: f64,
    /// Fraction in the GPU query kernel.
    pub query_fraction: f64,
    /// Fraction in cleanup.
    pub cleanup_fraction: f64,
    /// I/O amplification factor.
    pub io_amplification: f64,
}

/// Figure 14: RAPIDS execution-time breakdown and I/O amplification, Q0–Q5.
pub fn figure14() -> Vec<Fig14Row> {
    let model = RapidsModel::prototype();
    (0..=5usize)
        .map(|q| {
            let query = bam_baselines::rapids::RapidsQuery {
                rows: FULL_ROWS,
                value_bytes: 8,
                columns: (q + 1) as u64,
                selected_rows: FULL_SELECTED,
            };
            let r = model.evaluate(&query);
            let total = r.total_s();
            Fig14Row {
                query: q,
                init_fraction: r.row_group_init_s / total,
                query_fraction: r.query_s / total,
                cleanup_fraction: r.cleanup_s / total,
                io_amplification: r.io_amplification,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape_bam_wins_and_gap_grows() {
        let rows = figure12(20_000, 9);
        assert_eq!(rows.len(), 6);
        // BaM beats RAPIDS on every query, even with one SSD.
        for r in &rows {
            assert!(
                r.rapids.total_s() > r.bam_seconds[0],
                "Q{}: RAPIDS {} vs BaM(1) {}",
                r.query,
                r.rapids.total_s(),
                r.bam_seconds[0]
            );
        }
        // The advantage grows with data-dependent columns and reaches ~5x.
        let q0 = rows[0].speedup_4ssd();
        let q5 = rows[5].speedup_4ssd();
        assert!(q5 > q0, "speedup must grow: Q0 {q0} Q5 {q5}");
        assert!(q5 > 3.0, "Q5 speedup {q5}");
        // RAPIDS amplification grows with columns; BaM's stays near 1.
        assert!(rows[5].rapids_io_amplification > 4.0);
        assert!(rows[5].bam_io_amplification < 3.0);
        // More SSDs never hurt.
        for r in &rows {
            assert!(r.bam_seconds[2] <= r.bam_seconds[0] + 1e-9);
        }
    }

    #[test]
    fn figure14_shape_row_group_handling_dominates() {
        let rows = figure14();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.init_fraction > 0.5,
                "Q{} init fraction {}",
                r.query,
                r.init_fraction
            );
            assert!(r.query_fraction < 0.2);
            let total = r.init_fraction + r.query_fraction + r.cleanup_fraction;
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(rows[5].io_amplification > rows[1].io_amplification);
    }
}
