//! SLO admission-control knee sweep over tenant classes (event-driven).
//!
//! A single [`bam_sim::TenantClass`] of 10 thousand to one million logical
//! tenants offers load around the knee of a queue-pair-starved 4-SSD Optane
//! array, with and without the class's SLO admission controller armed. The
//! class merges its members in closed form, so the event-loop cost is
//! O(classes) — the one-million-tenant cells run in the same time as the
//! ten-thousand-tenant cells, which is what makes the sweep CI-feasible.
//!
//! The shape to check: from just below the knee onward the uncontrolled
//! class's open-loop queue grows without bound and its p99 burn rate blows
//! past 1.0 (1.37 at 0.9x, ~99 past the knee), while the controlled class
//! sheds load (rejections, not deferrals — `max_defers: 0`, the
//! reject-biased configuration that protects the SLO under *sustained*
//! overload) and holds the burn rate at 0.0 at every load. The guarantee is
//! priced below the knee: the Little's-law depth clamp converts the p99
//! budget to a mean target through the exponential-tail factor ln(100), so
//! it is conservative for this pipeline's tighter-than-exponential tail and
//! trades admitted throughput for the ceiling even when the array could
//! have kept up.

use bam_sim::{engine, AdmissionSpec, ArrivalProcess, QueuePairPolicy, SimConfig, TenantClass};

/// Transfer size of every request in the sweep.
pub const SLO_ACCESS_BYTES: u64 = 4096;

/// Requests per cell. Class cost is O(classes), not O(members): every cell
/// runs the same number of events regardless of the logical tenant count.
pub const SLO_REQUESTS: u64 = 30_000;

/// The class's SLO: p99 under this budget, per evaluation window.
pub const SLO_TARGET_P99_US: f64 = 30.0;

/// SLO evaluation window (virtual ns).
pub const SLO_WINDOW_NS: u64 = 1_000_000;

/// Aggregate offered rate at load 1.0 — the measured knee of the starved
/// 4-SSD x 2-queue-pair array at 4 KiB (see `sim_exp`'s queue-pair
/// sensitivity sweep; beyond this the open-loop backlog grows without
/// bound).
pub const SLO_KNEE_RATE_PER_S: f64 = 1.2e6;

/// Offered-load multipliers swept around the knee.
pub const SLO_LOAD_MULTIPLIERS: [f64; 4] = [0.6, 0.9, 1.05, 1.2];

/// Logical tenant counts per class. The largest cell aggregates one million
/// members.
pub const SLO_MEMBER_SCALES: [u32; 3] = [10_000, 100_000, 1_000_000];

/// The controller armed on the controlled cells: a small admit burst, a slow
/// token refill, and no deferral retries — under sustained overload the
/// deferral path only moves latency around, so the knee sweep uses the
/// reject-biased configuration (deferrals exist for transient bursts; see
/// DESIGN.md).
pub fn slo_admission() -> AdmissionSpec {
    AdmissionSpec {
        burst: 8,
        refill_per_s: 1_000.0,
        defer_ns: 200_000,
        max_defers: 0,
    }
}

/// One cell of the sweep: a member scale x load multiplier x controller
/// on/off, reporting the achieved tail against the class's SLO budget.
#[derive(Debug, Clone)]
pub struct SloRow {
    /// Logical tenants aggregated by the class.
    pub members: u32,
    /// Offered load as a multiple of the knee rate.
    pub load: f64,
    /// Aggregate offered arrival rate (requests per second).
    pub offered_rate_per_s: f64,
    /// Whether the admission controller was armed.
    pub controlled: bool,
    /// Little's-law depth clamp the controller derived from the SLO budget
    /// (0 when uncontrolled).
    pub depth_limit: u64,
    /// Requests offered to the class.
    pub offered: u64,
    /// Requests admitted into the engine.
    pub admitted: u64,
    /// Deferral decisions (re-offers after a controller-imposed wait).
    pub deferrals: u64,
    /// Requests rejected outright.
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completions per second over the class's active span.
    pub throughput_per_s: f64,
    /// Median latency of admitted requests (us).
    pub p50_us: f64,
    /// 99th-percentile latency of admitted requests (us).
    pub p99_us: f64,
    /// 99.9th-percentile latency of admitted requests (us).
    pub p999_us: f64,
    /// Post-control SLO burn rate (violating windows x completion share
    /// against the error budget; > 1.0 = budget blown).
    pub burn_rate: f64,
}

fn slo_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_ssds: 4,
        queue_pairs_per_ssd: 2,
        pipeline: bam_sim::PipelineParams::from_specs(
            &bam_nvme_sim::SsdSpec::intel_optane_p5800x(),
            &bam_pcie::LinkSpec::gen4_x4(),
            &bam_pcie::LinkSpec::gen4_x16(),
            SLO_ACCESS_BYTES,
        ),
    }
}

/// The class for one cell: `members` logical tenants whose merged stream
/// offers `load x knee` aggregate, with the controller optionally armed.
fn slo_class(members: u32, load: f64, controlled: bool) -> TenantClass {
    let class = TenantClass::new(
        0,
        "steady",
        members,
        ArrivalProcess::Poisson {
            rate_per_s: load * SLO_KNEE_RATE_PER_S / f64::from(members),
        },
        SLO_REQUESTS,
    )
    .with_slo(SLO_TARGET_P99_US, SLO_WINDOW_NS);
    if controlled {
        class.with_admission(slo_admission())
    } else {
        class
    }
}

/// Runs the full sweep on `workers` event-engine workers. The rows are
/// byte-identical at every worker count and contain no wall-clock values.
pub fn slo_sweep_with_workers(seed: u64, workers: usize) -> Vec<SloRow> {
    let cfg = slo_config(seed);
    let mut rows = Vec::new();
    for &members in &SLO_MEMBER_SCALES {
        for &load in &SLO_LOAD_MULTIPLIERS {
            for controlled in [false, true] {
                let class = slo_class(members, load, controlled);
                let offered_rate_per_s = class.offered_rate_per_s().expect("open process");
                let report = engine::run_classes(
                    &cfg,
                    std::slice::from_ref(&class),
                    QueuePairPolicy::Shared,
                    workers,
                );
                let t = &report.tenants[0];
                let slo = t.slo.expect("class carries an SLO");
                let adm = t.admission.unwrap_or_default();
                rows.push(SloRow {
                    members,
                    load,
                    offered_rate_per_s,
                    controlled,
                    depth_limit: adm.depth_limit,
                    offered: if controlled { adm.offered } else { t.completed },
                    admitted: if controlled {
                        adm.admitted
                    } else {
                        t.completed
                    },
                    deferrals: adm.deferrals,
                    rejected: adm.rejected,
                    completed: t.completed,
                    throughput_per_s: t.throughput_per_s,
                    p50_us: t.latency.p50_us,
                    p99_us: t.latency.p99_us,
                    p999_us: t.latency.p999_us,
                    burn_rate: slo.burn_rate,
                });
            }
        }
    }
    rows
}

/// [`slo_sweep_with_workers`] on the inline engine.
pub fn slo_sweep(seed: u64) -> Vec<SloRow> {
    slo_sweep_with_workers(seed, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-scale shape check: one member scale, the extreme loads only.
    /// The full sweep (all scales, the CI-facing assertions) runs in the
    /// `slo` binary and the `class_equivalence` suite.
    #[test]
    fn controller_holds_the_budget_at_every_load_and_overload_blows_it() {
        let cfg = slo_config(37);
        for (load, overloaded) in [(0.6, false), (1.2, true)] {
            let base = engine::run_classes(
                &cfg,
                &[slo_class(10_000, load, false)],
                QueuePairPolicy::Shared,
                1,
            );
            let capped = engine::run_classes(
                &cfg,
                &[slo_class(10_000, load, true)],
                QueuePairPolicy::Shared,
                1,
            );
            let adm = capped.tenants[0].admission.expect("controller armed");
            assert_eq!(adm.offered, SLO_REQUESTS);
            assert_eq!(adm.admitted + adm.rejected, adm.offered);
            let burn_base = base.tenants[0].slo.unwrap().burn_rate;
            let burn_capped = capped.tenants[0].slo.unwrap().burn_rate;
            assert!(
                burn_capped < 1.0,
                "controller must hold the budget at load {load} (burn {burn_capped})"
            );
            if overloaded {
                assert!(adm.rejected > 0, "overload must shed");
                assert!(
                    burn_base > 1.0,
                    "uncontrolled overload must blow the budget (burn {burn_base})"
                );
            } else {
                assert!(
                    burn_base < 1.0,
                    "below the knee the uncontrolled class meets its SLO (burn {burn_base})"
                );
            }
        }
    }
}
