//! Stage-attribution breakdown of simulated request latency.
//!
//! One seeded closed-loop run per Table-2 device — journal-flush stage
//! enabled, 3:1 read/write mix — drives the event engine, which measures
//! each request's dwell time in every pipeline stage it passes through. The
//! harness reports where the end-to-end latency went: per stage, how many
//! requests dwelled there, the dwell-time distribution, and the stage's
//! share of all attributed nanoseconds. The dwells tile each request's
//! latency exactly (the marks are taken at the same virtual instants the
//! latency is), so the shares sum to 100% — the attribution property the
//! unit test asserts.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{engine, PipelineParams, SimConfig, SimReport, SpanEvent, SpanRecorder, Workload};

/// Seed of the breakdown runs.
pub const BREAKDOWN_SEED: u64 = 23;

/// Requests simulated per device.
pub const BREAKDOWN_REQUESTS: u64 = 20_000;

/// Writes among them (each one pays the journal-flush stage).
pub const BREAKDOWN_WRITES: u64 = 5_000;

/// Closed-loop depth.
pub const BREAKDOWN_IN_FLIGHT: u32 = 256;

/// Access granularity (the graph experiments' 4 KB lines).
pub const BREAKDOWN_ACCESS_BYTES: u64 = 4096;

/// Journal record overhead charged per durable write (bam-core's framing).
pub const BREAKDOWN_JOURNAL_OVERHEAD_BYTES: u64 = 48;

/// One stage row of one device's breakdown table.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Device name (Table 2 row).
    pub device: String,
    /// Stage label (see [`bam_sim::Stage::label`]).
    pub stage: &'static str,
    /// Requests that dwelled in this stage.
    pub count: u64,
    /// Mean dwell time (µs).
    pub mean_us: f64,
    /// Median dwell time (µs).
    pub p50_us: f64,
    /// 99th-percentile dwell time (µs).
    pub p99_us: f64,
    /// This stage's share of all attributed nanoseconds, in percent.
    pub share_pct: f64,
}

/// The simulation configuration of one device's run: a 4-SSD array in the
/// queue-pair-starved regime (2 QPs each), so queueing is visible in the
/// attribution, with the journal-flush stage enabled.
pub fn breakdown_config(spec: &SsdSpec, seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_ssds: 4,
        queue_pairs_per_ssd: 2,
        pipeline: PipelineParams::from_specs(
            spec,
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            BREAKDOWN_ACCESS_BYTES,
        )
        .with_journal_flush(BREAKDOWN_JOURNAL_OVERHEAD_BYTES),
    }
}

/// Runs one device's seeded breakdown workload, optionally recording every
/// stage interval as span events (the `--trace-out` export). `workers`
/// selects the engine (1 = inline, more = sharded); the report and spans
/// are bit-identical at every count.
pub fn breakdown_report(
    spec: &SsdSpec,
    seed: u64,
    recorder: Option<&SpanRecorder>,
    workers: usize,
) -> SimReport {
    let config = breakdown_config(spec, seed);
    let reqs = engine::mixed_requests(&config, BREAKDOWN_REQUESTS, BREAKDOWN_WRITES);
    let workload = Workload::ClosedLoop {
        in_flight: BREAKDOWN_IN_FLIGHT,
    };
    match recorder {
        Some(rec) => engine::run_traced_with_workers(&config, workload, &reqs, workers, rec),
        None => engine::run_with_workers(&config, workload, &reqs, workers),
    }
}

/// Flattens one report's stage breakdown into table rows, in pipeline order
/// (stages with no samples are omitted).
pub fn stage_rows(device: &str, report: &SimReport) -> Vec<BreakdownRow> {
    let total = report.stages.total_ns();
    report
        .stages
        .active_stages()
        .map(|stage| {
            let h = report.stages.histo(stage);
            BreakdownRow {
                device: device.to_string(),
                stage: stage.label(),
                count: h.count(),
                mean_us: h.mean_ns() / 1e3,
                p50_us: h.value_at_quantile(0.50) as f64 / 1e3,
                p99_us: h.value_at_quantile(0.99) as f64 / 1e3,
                share_pct: if total == 0 {
                    0.0
                } else {
                    h.sum_ns() as f64 / total as f64 * 100.0
                },
            }
        })
        .collect()
}

/// The full breakdown: the three Table-2 devices, each returning its run
/// report and stage table.
pub fn breakdown(seed: u64) -> Vec<(SsdSpec, SimReport, Vec<BreakdownRow>)> {
    breakdown_with_workers(seed, 1)
}

/// [`breakdown`] with an explicit engine worker count (1 = inline).
pub fn breakdown_with_workers(
    seed: u64,
    workers: usize,
) -> Vec<(SsdSpec, SimReport, Vec<BreakdownRow>)> {
    [
        SsdSpec::intel_optane_p5800x(),
        SsdSpec::samsung_pm1735(),
        SsdSpec::samsung_980pro(),
    ]
    .into_iter()
    .map(|spec| {
        let report = breakdown_report(&spec, seed, None, workers);
        let rows = stage_rows(&spec.name, &report);
        (spec, report, rows)
    })
    .collect()
}

/// The Optane run's span events (what `breakdown --trace-out` exports):
/// bounded to the recorder's default capacity, deterministic per seed.
pub fn traced_events(seed: u64) -> Vec<SpanEvent> {
    traced_events_with_workers(seed, 1)
}

/// [`traced_events`] with an explicit engine worker count (1 = inline).
pub fn traced_events_with_workers(seed: u64, workers: usize) -> Vec<SpanEvent> {
    let rec = SpanRecorder::new();
    breakdown_report(&SsdSpec::intel_optane_p5800x(), seed, Some(&rec), workers);
    rec.events()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_dwells_attribute_all_of_the_latency() {
        // The acceptance bar is >= 95% of each request's end-to-end latency
        // attributed to named stages; the engine's marks tile the latency
        // exactly, so the attribution is in fact 100%.
        for (spec, report, rows) in breakdown(BREAKDOWN_SEED) {
            let latency_total: u64 = report.sorted_latencies_ns.iter().sum();
            let attributed = report.stages.total_ns();
            assert!(
                attributed as f64 >= latency_total as f64 * 0.95,
                "{}: attributed {attributed} of {latency_total}",
                spec.name
            );
            assert_eq!(
                attributed, latency_total,
                "{}: dwells must tile the latency exactly",
                spec.name
            );
            let share_sum: f64 = rows.iter().map(|r| r.share_pct).sum();
            assert!((share_sum - 100.0).abs() < 1e-9, "{share_sum}");
            // Only writes pay the journal flush.
            let flush = rows.iter().find(|r| r.stage == "journal_flush").unwrap();
            assert_eq!(flush.count, BREAKDOWN_WRITES);
            let media = rows.iter().find(|r| r.stage == "media").unwrap();
            assert_eq!(media.count, BREAKDOWN_REQUESTS);
        }
    }

    #[test]
    fn breakdown_and_trace_are_deterministic() {
        let a = breakdown(BREAKDOWN_SEED);
        let b = breakdown(BREAKDOWN_SEED);
        for ((_, ra, rows_a), (_, rb, rows_b)) in a.iter().zip(&b) {
            assert_eq!(ra.stages, rb.stages);
            for (x, y) in rows_a.iter().zip(rows_b) {
                assert_eq!(x.stage, y.stage);
                assert!(x.mean_us == y.mean_us);
                assert!(x.share_pct == y.share_pct);
            }
        }
        let ta = traced_events(BREAKDOWN_SEED);
        let tb = traced_events(BREAKDOWN_SEED);
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "trace must be bit-identical per seed");
    }
}
