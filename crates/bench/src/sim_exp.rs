//! Event-driven experiments: tail-latency CDFs and the simulated half of the
//! Figure 11 queue-pair sweep.
//!
//! These harnesses drive `bam-sim` — the reproduction's third methodology
//! layer — and print the matching analytic numbers alongside, so every
//! simulated result is cross-checked against the closed-form envelope it
//! must agree with in the mean.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{engine, PipelineParams, SimConfig, SimReport, Workload};
use bam_timing::{required_queue_depth, SsdArrayModel};
use serde::{Deserialize, Serialize};

/// Requests simulated per configuration. The stream is a steady-state sample:
/// rates measured over it are applied to full-scale request counts.
pub const SAMPLE_REQUESTS: u64 = 30_000;

/// Outstanding requests for saturated closed-loop sweeps — far above every
/// knee in play (the largest is the 980 Pro's ~1K bandwidth-latency product)
/// yet cheap to simulate.
pub const SWEEP_IN_FLIGHT: u32 = 2048;

/// One row of the `latency_cdf` experiment: one device technology at one
/// closed-loop depth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyCdfRow {
    /// Device name (Table 2 row).
    pub device: String,
    /// Closed-loop depth as a multiple of the bandwidth-latency product.
    pub depth_multiplier: f64,
    /// Concurrently outstanding requests.
    pub in_flight: u32,
    /// Simulated throughput in million IOPS.
    pub achieved_miops: f64,
    /// Simulated mean in-flight depth (steady state).
    pub mean_in_flight: f64,
    /// Simulated latency percentiles, in microseconds.
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs).
    pub p999_us: f64,
    /// Simulated mean latency (µs).
    pub mean_us: f64,
    /// Analytic check: the array's peak IOPS envelope (millions).
    pub analytic_peak_miops: f64,
    /// Analytic check: the spec's published mean latency (µs).
    pub analytic_latency_us: f64,
    /// Analytic check: `required_queue_depth` at the peak (§2.2).
    pub analytic_depth: u64,
}

/// Tail-latency CDFs for the three Table-2 SSD technologies behind a 4-SSD
/// array at `access_bytes` granularity, each at 0.5×, 1×, and 2× its
/// bandwidth-latency product (Fig 9 / Table 2, event-driven).
pub fn latency_cdf(num_ssds: usize, access_bytes: u64, seed: u64) -> Vec<LatencyCdfRow> {
    let mut rows = Vec::new();
    for spec in [
        SsdSpec::intel_optane_p5800x(),
        SsdSpec::samsung_pm1735(),
        SsdSpec::samsung_980pro(),
    ] {
        let model = SsdArrayModel::prototype(spec.clone(), num_ssds);
        let peak = model.peak_read_iops(access_bytes);
        let qd = required_queue_depth(peak, spec.read_latency_us).max(1);
        for multiplier in [0.5, 1.0, 2.0] {
            let in_flight = ((qd as f64 * multiplier).round() as u32).max(1);
            let config = SimConfig {
                seed,
                num_ssds: num_ssds as u32,
                queue_pairs_per_ssd: spec.max_queue_pairs,
                pipeline: PipelineParams::from_specs(
                    &spec,
                    &LinkSpec::gen4_x4(),
                    &LinkSpec::gen4_x16(),
                    access_bytes,
                ),
            };
            let reqs = engine::uniform_reads(&config, SAMPLE_REQUESTS);
            let report = engine::run(&config, Workload::ClosedLoop { in_flight }, &reqs);
            rows.push(LatencyCdfRow {
                device: spec.name.clone(),
                depth_multiplier: multiplier,
                in_flight,
                achieved_miops: report.throughput_per_s / 1e6,
                mean_in_flight: report.depth.steady_state_mean(),
                p50_us: report.latency.p50_us,
                p95_us: report.latency.p95_us,
                p99_us: report.latency.p99_us,
                p999_us: report.latency.p999_us,
                mean_us: report.latency.mean_us,
                analytic_peak_miops: peak / 1e6,
                analytic_latency_us: spec.read_latency_us,
                analytic_depth: qd,
            });
        }
    }
    rows
}

/// Simulated storage phase of one Figure-11 configuration: a 4-SSD Optane
/// array limited to `queue_pairs_total` queue pairs serving the measured
/// read/write mix. Returns the simulated seconds for the full-scale request
/// counts plus the run report.
///
/// # Panics
///
/// Panics unless `queue_pairs_total` is a positive multiple of `num_ssds` —
/// the engine models identical devices, so an uneven split would silently
/// simulate a different configuration than requested.
pub fn simulated_storage_time(
    spec: SsdSpec,
    num_ssds: usize,
    queue_pairs_total: u32,
    access_bytes: u64,
    reads: u64,
    writes: u64,
    seed: u64,
) -> (f64, SimReport) {
    assert!(
        queue_pairs_total > 0 && queue_pairs_total.is_multiple_of(num_ssds as u32),
        "queue_pairs_total ({queue_pairs_total}) must be a positive multiple of num_ssds ({num_ssds})"
    );
    let queue_pairs_per_ssd = queue_pairs_total / num_ssds as u32;
    let config = SimConfig {
        seed,
        num_ssds: num_ssds as u32,
        queue_pairs_per_ssd,
        pipeline: PipelineParams::from_specs(
            &spec,
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            access_bytes,
        ),
    };
    let total = reads + writes;
    let sample_writes = if total == 0 {
        0
    } else {
        (SAMPLE_REQUESTS as u128 * writes as u128 / total as u128) as u64
    };
    let reqs = engine::mixed_requests(&config, SAMPLE_REQUESTS, sample_writes);
    let report = engine::run(
        &config,
        Workload::ClosedLoop {
            in_flight: SWEEP_IN_FLIGHT,
        },
        &reqs,
    );
    let seconds = total as f64 / report.throughput_per_s;
    (seconds, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_cdf_shapes_match_table2() {
        let rows = latency_cdf(4, 4096, 11);
        assert_eq!(rows.len(), 9, "3 devices x 3 depths");
        let at = |device: &str, mult: f64| {
            rows.iter()
                .find(|r| r.device.contains(device) && r.depth_multiplier == mult)
                .unwrap()
        };
        // At half the bandwidth-latency product the device is unsaturated and
        // p50 sits near the published latency; at 2x the queues double the
        // sojourn time while throughput stays pinned at the peak.
        for device in ["Optane", "PM1735", "980pro"] {
            let half = at(device, 0.5);
            let double = at(device, 2.0);
            assert!(
                half.p50_us <= half.analytic_latency_us * 1.5,
                "{device}: unsaturated p50 {} vs latency {}",
                half.p50_us,
                half.analytic_latency_us
            );
            assert!(
                double.mean_us > half.mean_us * 1.5,
                "{device}: overdriving must inflate latency"
            );
            assert!(
                double.achieved_miops <= double.analytic_peak_miops * 1.10,
                "{device}: sim must respect the analytic envelope"
            );
        }
        // Tails order by technology: NAND flash >> Z-NAND > Optane.
        assert!(at("980pro", 1.0).p999_us > at("Optane", 1.0).p999_us * 5.0);
        assert!(at("PM1735", 1.0).p999_us > at("Optane", 1.0).p999_us);
    }

    #[test]
    fn latency_cdf_is_deterministic() {
        let a = latency_cdf(4, 4096, 5);
        let b = latency_cdf(4, 4096, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.p999_us, y.p999_us);
            assert_eq!(x.achieved_miops, y.achieved_miops);
        }
    }

    #[test]
    fn queue_pair_sweep_storage_time_degrades_below_the_knee() {
        let spec = SsdSpec::intel_optane_p5800x;
        let (t128, _) = simulated_storage_time(spec(), 4, 128, 4096, 10_000_000, 0, 3);
        let (t48, _) = simulated_storage_time(spec(), 4, 48, 4096, 10_000_000, 0, 3);
        let (t32, r32) = simulated_storage_time(spec(), 4, 32, 4096, 10_000_000, 0, 3);
        assert!(
            (t48 / t128 - 1.0).abs() < 0.10,
            "flat region: {t48} vs {t128}"
        );
        assert!(t32 > t128 * 1.1, "below the knee: {t32} vs {t128}");
        // The starved queue pairs are visibly backed up.
        assert!(r32.queue_occupancy_mean > 1.0);
    }
}
