//! Event-driven experiments: tail-latency CDFs and the simulated half of the
//! Figure 11 queue-pair sweep.
//!
//! These harnesses drive `bam-sim` — the reproduction's third methodology
//! layer — and print the matching analytic numbers alongside, so every
//! simulated result is cross-checked against the closed-form envelope it
//! must agree with in the mean.

use std::collections::HashMap;

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{
    engine, interference_ratio, ArrivalProcess, Mmpp2, PipelineParams, QueuePairPolicy, SimConfig,
    SimReport, SpanEvent, SpanRecorder, TenantSpec, Workload,
};
use bam_timing::{required_queue_depth, SsdArrayModel};
use serde::{Deserialize, Serialize};

/// Requests simulated per configuration. The stream is a steady-state sample:
/// rates measured over it are applied to full-scale request counts.
pub const SAMPLE_REQUESTS: u64 = 30_000;

/// Outstanding requests for saturated closed-loop sweeps — far above every
/// knee in play (the largest is the 980 Pro's ~1K bandwidth-latency product)
/// yet cheap to simulate.
pub const SWEEP_IN_FLIGHT: u32 = 2048;

/// One row of the `latency_cdf` experiment: one device technology at one
/// closed-loop depth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyCdfRow {
    /// Device name (Table 2 row).
    pub device: String,
    /// Closed-loop depth as a multiple of the bandwidth-latency product.
    pub depth_multiplier: f64,
    /// Concurrently outstanding requests.
    pub in_flight: u32,
    /// Simulated throughput in million IOPS.
    pub achieved_miops: f64,
    /// Simulated mean in-flight depth (steady state).
    pub mean_in_flight: f64,
    /// Simulated latency percentiles, in microseconds.
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs).
    pub p999_us: f64,
    /// Simulated mean latency (µs).
    pub mean_us: f64,
    /// Analytic check: the array's peak IOPS envelope (millions).
    pub analytic_peak_miops: f64,
    /// Analytic check: the spec's published mean latency (µs).
    pub analytic_latency_us: f64,
    /// Analytic check: `required_queue_depth` at the peak (§2.2).
    pub analytic_depth: u64,
}

/// Tail-latency CDFs for the three Table-2 SSD technologies behind a 4-SSD
/// array at `access_bytes` granularity, each at 0.5×, 1×, and 2× its
/// bandwidth-latency product (Fig 9 / Table 2, event-driven).
pub fn latency_cdf(num_ssds: usize, access_bytes: u64, seed: u64) -> Vec<LatencyCdfRow> {
    latency_cdf_with_workers(num_ssds, access_bytes, seed, 1)
}

/// [`latency_cdf`] on the sharded engine with `workers` accounting workers
/// (1 = the inline engine). The rows are bit-identical at every worker
/// count — the flag only changes how the simulation is executed.
pub fn latency_cdf_with_workers(
    num_ssds: usize,
    access_bytes: u64,
    seed: u64,
    workers: usize,
) -> Vec<LatencyCdfRow> {
    let mut rows = Vec::new();
    for spec in [
        SsdSpec::intel_optane_p5800x(),
        SsdSpec::samsung_pm1735(),
        SsdSpec::samsung_980pro(),
    ] {
        let model = SsdArrayModel::prototype(spec.clone(), num_ssds);
        let peak = model.peak_read_iops(access_bytes);
        let qd = required_queue_depth(peak, spec.read_latency_us).max(1);
        for multiplier in [0.5, 1.0, 2.0] {
            let in_flight = ((qd as f64 * multiplier).round() as u32).max(1);
            let config = SimConfig {
                seed,
                num_ssds: num_ssds as u32,
                queue_pairs_per_ssd: spec.max_queue_pairs,
                pipeline: PipelineParams::from_specs(
                    &spec,
                    &LinkSpec::gen4_x4(),
                    &LinkSpec::gen4_x16(),
                    access_bytes,
                ),
            };
            let reqs = engine::uniform_reads(&config, SAMPLE_REQUESTS);
            let report = engine::run_with_workers(
                &config,
                Workload::ClosedLoop { in_flight },
                &reqs,
                workers,
            );
            rows.push(LatencyCdfRow {
                device: spec.name.clone(),
                depth_multiplier: multiplier,
                in_flight,
                achieved_miops: report.throughput_per_s / 1e6,
                mean_in_flight: report.depth.steady_state_mean(),
                p50_us: report.latency.p50_us,
                p95_us: report.latency.p95_us,
                p99_us: report.latency.p99_us,
                p999_us: report.latency.p999_us,
                mean_us: report.latency.mean_us,
                analytic_peak_miops: peak / 1e6,
                analytic_latency_us: spec.read_latency_us,
                analytic_depth: qd,
            });
        }
    }
    rows
}

/// Span events of one representative `latency_cdf` cell — Optane at 1× its
/// bandwidth-latency product — re-run under tracing (which changes nothing:
/// the report is identical to the untraced cell's). This is what
/// `latency_cdf --trace-out` exports; deterministic per seed.
pub fn latency_cdf_traced_events(num_ssds: usize, access_bytes: u64, seed: u64) -> Vec<SpanEvent> {
    latency_cdf_traced_events_with_workers(num_ssds, access_bytes, seed, 1)
}

/// [`latency_cdf_traced_events`] on the sharded engine (1 = inline); the
/// exported spans are bit-identical at every worker count.
pub fn latency_cdf_traced_events_with_workers(
    num_ssds: usize,
    access_bytes: u64,
    seed: u64,
    workers: usize,
) -> Vec<SpanEvent> {
    let spec = SsdSpec::intel_optane_p5800x();
    let model = SsdArrayModel::prototype(spec.clone(), num_ssds);
    let qd = required_queue_depth(model.peak_read_iops(access_bytes), spec.read_latency_us).max(1);
    let config = SimConfig {
        seed,
        num_ssds: num_ssds as u32,
        queue_pairs_per_ssd: spec.max_queue_pairs,
        pipeline: PipelineParams::from_specs(
            &spec,
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            access_bytes,
        ),
    };
    let reqs = engine::uniform_reads(&config, SAMPLE_REQUESTS);
    let recorder = SpanRecorder::new();
    engine::run_traced_with_workers(
        &config,
        Workload::ClosedLoop {
            in_flight: qd as u32,
        },
        &reqs,
        workers,
        &recorder,
    );
    recorder.events()
}

/// Simulated storage phase of one Figure-11 configuration: a 4-SSD Optane
/// array limited to `queue_pairs_total` queue pairs serving the measured
/// read/write mix. Returns the simulated seconds for the full-scale request
/// counts plus the run report.
///
/// # Panics
///
/// Panics unless `queue_pairs_total` is a positive multiple of `num_ssds` —
/// the engine models identical devices, so an uneven split would silently
/// simulate a different configuration than requested.
pub fn simulated_storage_time(
    spec: SsdSpec,
    num_ssds: usize,
    queue_pairs_total: u32,
    access_bytes: u64,
    reads: u64,
    writes: u64,
    seed: u64,
) -> (f64, SimReport) {
    assert!(
        queue_pairs_total > 0 && queue_pairs_total.is_multiple_of(num_ssds as u32),
        "queue_pairs_total ({queue_pairs_total}) must be a positive multiple of num_ssds ({num_ssds})"
    );
    let queue_pairs_per_ssd = queue_pairs_total / num_ssds as u32;
    let config = SimConfig {
        seed,
        num_ssds: num_ssds as u32,
        queue_pairs_per_ssd,
        pipeline: PipelineParams::from_specs(
            &spec,
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            access_bytes,
        ),
    };
    let total = reads + writes;
    let sample_writes = if total == 0 {
        0
    } else {
        (SAMPLE_REQUESTS as u128 * writes as u128 / total as u128) as u64
    };
    let reqs = engine::mixed_requests(&config, SAMPLE_REQUESTS, sample_writes);
    let report = engine::run(
        &config,
        Workload::ClosedLoop {
            in_flight: SWEEP_IN_FLIGHT,
        },
        &reqs,
    );
    let seconds = total as f64 / report.throughput_per_s;
    (seconds, report)
}

// --- Multi-tenant interference and fairness ------------------------------

/// Access granularity of the tenant experiment (the graph experiments' 4 KB
/// lines).
pub const TENANT_ACCESS_BYTES: u64 = 4096;

/// Requests each steady tenant issues in the sweep.
pub const TENANT_STEADY_REQUESTS: u64 = 6_000;

/// Arrival rate of one steady tenant, in requests per second. Far below any
/// capacity limit: a steady tenant only suffers when a neighbour's backlog
/// lands in front of its commands.
pub const TENANT_STEADY_RATE_PER_S: f64 = 100.0e3;

/// Stable id of the bursty antagonist (its arrival stream is a pure function
/// of run seed and id, so solo and co-run streams are identical).
pub const ANTAGONIST_ID: u32 = 100;

/// The antagonist's MMPP: long calm stretches at 50 K/s punctuated by ~1 ms
/// bursts at 1.6 M/s — above the 8-queue-pair protocol ceiling
/// (8 × 150 K/s = 1.2 M/s) but below every array's media envelope, so the
/// damage happens in the queue pairs, exactly where the allocation policy
/// acts.
pub fn antagonist_mmpp() -> Mmpp2 {
    Mmpp2 {
        calm_rate_per_s: 50.0e3,
        burst_rate_per_s: 1.6e6,
        mean_calm_s: 4.0e-3,
        mean_burst_s: 1.0e-3,
    }
}

/// A steady read-only Poisson tenant.
pub fn steady_tenant(id: u32, requests: u64) -> TenantSpec {
    TenantSpec::new(
        id,
        &format!("steady-{id}"),
        ArrivalProcess::Poisson {
            rate_per_s: TENANT_STEADY_RATE_PER_S,
        },
        requests,
    )
}

/// The bursty antagonist, sized so it stays active for roughly the same span
/// as a steady tenant with `steady_requests` (its mean rate is 3.6× higher).
pub fn bursty_antagonist(steady_requests: u64) -> TenantSpec {
    let m = antagonist_mmpp();
    let requests =
        (steady_requests as f64 * m.mean_rate_per_s() / TENANT_STEADY_RATE_PER_S).round() as u64;
    TenantSpec::new(
        ANTAGONIST_ID,
        "antagonist",
        ArrivalProcess::Mmpp(m),
        requests,
    )
}

/// The tenant experiment's array: 4 SSDs with only 2 queue pairs each — the
/// queue-pair-starved regime of Fig 11, where submission slots (not media)
/// are the contended resource.
pub fn tenant_config(spec: &SsdSpec, seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_ssds: 4,
        queue_pairs_per_ssd: 2,
        pipeline: PipelineParams::from_specs(
            spec,
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            TENANT_ACCESS_BYTES,
        ),
    }
}

/// One per-tenant row of the multi-tenant sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantRow {
    /// Device name (Table 2 row).
    pub device: String,
    /// Queue-pair allocation policy label.
    pub policy: &'static str,
    /// Workload scenario: `"steady"` (all tenants steady) or `"bursty"`
    /// (last tenant is the MMPP antagonist).
    pub scenario: &'static str,
    /// Tenants co-running in this configuration.
    pub num_tenants: usize,
    /// This tenant's name.
    pub tenant: String,
    /// This tenant's queue-pair weight.
    pub weight: u32,
    /// Queue pairs the policy granted this tenant.
    pub queue_pairs: u32,
    /// Requests the tenant completed.
    pub completed: u64,
    /// Completions per second over the tenant's active span.
    pub throughput_per_s: f64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 95th percentile (µs).
    pub p95_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
    /// 99.9th percentile (µs).
    pub p999_us: f64,
    /// The tenant's p99 when running alone under the same configuration and
    /// policy (µs).
    pub solo_p99_us: f64,
    /// Interference metric: co-run p99 over solo p99 (1.0 = perfect
    /// isolation).
    pub interference: f64,
}

/// The tenant list of one scenario: `n` tenants, the last replaced by the
/// bursty antagonist when `bursty` is set.
fn scenario_tenants(n: usize, bursty: bool, steady_requests: u64) -> Vec<TenantSpec> {
    let mut tenants: Vec<TenantSpec> = (0..n as u32)
        .map(|i| steady_tenant(i, steady_requests))
        .collect();
    if bursty {
        tenants.pop();
        tenants.push(bursty_antagonist(steady_requests));
    }
    tenants
}

/// The full multi-tenant sweep: 1/2/4/8 tenants × (all-steady, bursty
/// antagonist) × shared vs weighted-fair queue pairs × the three Table-2
/// devices, with each tenant's solo p99 as the interference baseline.
pub fn tenant_matrix(seed: u64) -> Vec<TenantRow> {
    tenant_matrix_scaled(seed, TENANT_STEADY_REQUESTS)
}

/// [`tenant_matrix`] on the sharded engine with `workers` accounting
/// workers (1 = the inline engine); rows are bit-identical at every count.
pub fn tenant_matrix_with_workers(seed: u64, workers: usize) -> Vec<TenantRow> {
    tenant_matrix_scaled_with_workers(seed, TENANT_STEADY_REQUESTS, workers)
}

/// [`tenant_matrix`] with an explicit per-steady-tenant request count (the
/// unit tests run a reduced scale; the `tenants` binary runs the full one).
pub fn tenant_matrix_scaled(seed: u64, steady_requests: u64) -> Vec<TenantRow> {
    tenant_matrix_scaled_with_workers(seed, steady_requests, 1)
}

/// [`tenant_matrix_scaled`] with an explicit engine worker count.
pub fn tenant_matrix_scaled_with_workers(
    seed: u64,
    steady_requests: u64,
    workers: usize,
) -> Vec<TenantRow> {
    let mut rows = Vec::new();
    // Solo-run p99 baselines, keyed by (device, policy, tenant id).
    let mut solo_p99: HashMap<(String, &'static str, u32), f64> = HashMap::new();
    for spec in [
        SsdSpec::intel_optane_p5800x(),
        SsdSpec::samsung_pm1735(),
        SsdSpec::samsung_980pro(),
    ] {
        let config = tenant_config(&spec, seed);
        for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
            for num_tenants in [1usize, 2, 4, 8] {
                for bursty in [false, true] {
                    let tenants = scenario_tenants(num_tenants, bursty, steady_requests);
                    let report =
                        engine::run_tenants_with_workers(&config, &tenants, policy, workers);
                    for (t, summary) in tenants.iter().zip(&report.tenants) {
                        let key = (spec.name.clone(), policy.label(), t.id);
                        // An n=1 run *is* the tenant's solo run (the engine
                        // is deterministic), so it seeds its own baseline.
                        let solo = if num_tenants == 1 {
                            *solo_p99.entry(key).or_insert(summary.latency.p99_us)
                        } else {
                            *solo_p99.entry(key).or_insert_with(|| {
                                engine::run_tenants_with_workers(
                                    &config,
                                    std::slice::from_ref(t),
                                    policy,
                                    workers,
                                )
                                .tenants[0]
                                    .latency
                                    .p99_us
                            })
                        };
                        rows.push(TenantRow {
                            device: spec.name.clone(),
                            policy: policy.label(),
                            scenario: if bursty { "bursty" } else { "steady" },
                            num_tenants,
                            tenant: summary.name.clone(),
                            weight: summary.weight,
                            queue_pairs: summary.queue_pairs,
                            completed: summary.completed,
                            throughput_per_s: summary.throughput_per_s,
                            mean_us: summary.latency.mean_us,
                            p50_us: summary.latency.p50_us,
                            p95_us: summary.latency.p95_us,
                            p99_us: summary.latency.p99_us,
                            p999_us: summary.latency.p999_us,
                            solo_p99_us: solo,
                            interference: interference_ratio(summary.latency.p99_us, solo),
                        });
                    }
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_cdf_shapes_match_table2() {
        let rows = latency_cdf(4, 4096, 11);
        assert_eq!(rows.len(), 9, "3 devices x 3 depths");
        let at = |device: &str, mult: f64| {
            rows.iter()
                .find(|r| r.device.contains(device) && r.depth_multiplier == mult)
                .unwrap()
        };
        // At half the bandwidth-latency product the device is unsaturated and
        // p50 sits near the published latency; at 2x the queues double the
        // sojourn time while throughput stays pinned at the peak.
        for device in ["Optane", "PM1735", "980pro"] {
            let half = at(device, 0.5);
            let double = at(device, 2.0);
            assert!(
                half.p50_us <= half.analytic_latency_us * 1.5,
                "{device}: unsaturated p50 {} vs latency {}",
                half.p50_us,
                half.analytic_latency_us
            );
            assert!(
                double.mean_us > half.mean_us * 1.5,
                "{device}: overdriving must inflate latency"
            );
            assert!(
                double.achieved_miops <= double.analytic_peak_miops * 1.10,
                "{device}: sim must respect the analytic envelope"
            );
        }
        // Tails order by technology: NAND flash >> Z-NAND > Optane.
        assert!(at("980pro", 1.0).p999_us > at("Optane", 1.0).p999_us * 5.0);
        assert!(at("PM1735", 1.0).p999_us > at("Optane", 1.0).p999_us);
    }

    #[test]
    fn latency_cdf_is_deterministic() {
        let a = latency_cdf(4, 4096, 5);
        let b = latency_cdf(4, 4096, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.p999_us, y.p999_us);
            assert_eq!(x.achieved_miops, y.achieved_miops);
        }
    }

    #[test]
    fn bursty_antagonist_degrades_steady_p99_only_under_shared_queue_pairs() {
        // The PR's headline scenario: a steady tenant co-runs with an MMPP
        // antagonist whose bursts exceed the array's queue-pair protocol
        // ceiling. Shared queue pairs let the burst backlog land in front of
        // the steady tenant's commands; weighted-fair allocation keeps the
        // backlog in the antagonist's own partition.
        let spec = SsdSpec::intel_optane_p5800x();
        let config = tenant_config(&spec, 17);
        let tenants = [
            steady_tenant(0, TENANT_STEADY_REQUESTS),
            bursty_antagonist(TENANT_STEADY_REQUESTS),
        ];
        let measure = |policy: QueuePairPolicy| {
            let solo = engine::run_tenants(&config, std::slice::from_ref(&tenants[0]), policy)
                .tenants[0]
                .latency
                .p99_us;
            let corun = engine::run_tenants(&config, &tenants, policy);
            let steady = corun.tenant(0).unwrap().latency.p99_us;
            interference_ratio(steady, solo)
        };
        let shared = measure(QueuePairPolicy::Shared);
        let fair = measure(QueuePairPolicy::WeightedFair);
        assert!(
            shared > 2.0,
            "shared queue pairs must let the antagonist inflate the steady \
             tenant's p99 (interference {shared:.2})"
        );
        assert!(
            fair < 1.4,
            "weighted-fair allocation must isolate the steady tenant \
             (interference {fair:.2})"
        );
        assert!(
            shared > fair * 2.0,
            "isolation gap: shared {shared:.2} vs fair {fair:.2}"
        );
    }

    #[test]
    fn antagonist_pays_for_its_own_bursts_under_weighted_fair() {
        // Fairness is not free lunch: under weighted-fair the antagonist's
        // bursts queue in its own partition, so its p99 is worse than under
        // the shared free-for-all where it could spill onto everyone.
        let spec = SsdSpec::intel_optane_p5800x();
        let config = tenant_config(&spec, 18);
        let tenants = [
            steady_tenant(0, TENANT_STEADY_REQUESTS),
            bursty_antagonist(TENANT_STEADY_REQUESTS),
        ];
        let p99 = |policy| {
            engine::run_tenants(&config, &tenants, policy)
                .tenant(ANTAGONIST_ID)
                .unwrap()
                .latency
                .p99_us
        };
        assert!(p99(QueuePairPolicy::WeightedFair) > p99(QueuePairPolicy::Shared));
    }

    #[test]
    fn tenant_matrix_covers_the_sweep_and_is_deterministic() {
        let rows = tenant_matrix_scaled(19, 800);
        // 3 devices × 2 policies × (1+2+4+8 tenants) × 2 scenarios.
        assert_eq!(rows.len(), 3 * 2 * 15 * 2);
        let again = tenant_matrix_scaled(19, 800);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.p99_us, b.p99_us);
            assert_eq!(a.throughput_per_s, b.throughput_per_s);
            assert_eq!(a.interference, b.interference);
        }
        // Solo rows are their own baseline: interference exactly 1.
        for r in rows.iter().filter(|r| r.num_tenants == 1) {
            assert!((r.interference - 1.0).abs() < 1e-12, "{r:?}");
        }
        // Weighted-fair partitions sum to the array's 8 queue pairs.
        for n in [1usize, 2, 4, 8] {
            let total: u32 = rows
                .iter()
                .filter(|r| {
                    r.policy == "weighted-fair"
                        && r.scenario == "steady"
                        && r.num_tenants == n
                        && r.device.contains("Optane")
                })
                .map(|r| r.queue_pairs)
                .sum();
            assert_eq!(total, 8, "{n} tenants");
        }
    }

    #[test]
    fn queue_pair_sweep_storage_time_degrades_below_the_knee() {
        let spec = SsdSpec::intel_optane_p5800x;
        let (t128, _) = simulated_storage_time(spec(), 4, 128, 4096, 10_000_000, 0, 3);
        let (t48, _) = simulated_storage_time(spec(), 4, 48, 4096, 10_000_000, 0, 3);
        let (t32, r32) = simulated_storage_time(spec(), 4, 32, 4096, 10_000_000, 0, 3);
        assert!(
            (t48 / t128 - 1.0).abs() < 0.10,
            "flat region: {t48} vs {t128}"
        );
        assert!(t32 > t128 * 1.1, "below the knee: {t32} vs {t128}");
        // The starved queue pairs are visibly backed up.
        assert!(r32.queue_occupancy_mean > 1.0);
    }
}
