//! Criterion wrappers over the figure/table harnesses so `cargo bench` also
//! regenerates every evaluation artifact end to end (at reduced scale).
//!
//! The `src/bin/fig*.rs` binaries remain the primary way to print the
//! paper-style rows; these benches measure how long each harness takes and
//! keep them exercised by CI-style runs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bam_bench::{analytics_exp, graph_exp, micro_exp, misc_exp};

/// Scale used for the graph-based harnesses inside criterion (smaller than
/// the binaries' default so iterations stay sub-second).
const BENCH_SCALE: f64 = 3.0e-6;

fn bench_tables_and_analytic_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/analytic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("table2", |b| {
        b.iter(|| std::hint::black_box(misc_exp::table2()))
    });
    group.bench_function("table3", |b| {
        b.iter(|| std::hint::black_box(misc_exp::table3(BENCH_SCALE, 1)))
    });
    group.bench_function("fig4_iops_scaling", |b| {
        b.iter(|| std::hint::black_box(micro_exp::figure4(&[1, 4, 10], &[1024, 1 << 20], 0)))
    });
    group.bench_function("fig5_granularity_sweep", |b| {
        b.iter(|| std::hint::black_box(micro_exp::figure5(8 << 30, &[4096, 32768, 262_144])))
    });
    group.bench_function("fig6_activepointers", |b| {
        b.iter(|| std::hint::black_box(micro_exp::figure6(&[65_536, 1 << 20], &[512, 4096, 8192])))
    });
    group.bench_function("fig13_registers", |b| {
        b.iter(|| std::hint::black_box(misc_exp::figure13()))
    });
    group.bench_function("fig14_rapids_breakdown", |b| {
        b.iter(|| std::hint::black_box(analytics_exp::figure14()))
    });
    group.finish();
}

fn bench_functional_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/functional");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(4));
    group.bench_function("fig7_graph_end_to_end", |b| {
        b.iter(|| std::hint::black_box(graph_exp::figure7(BENCH_SCALE, 1)))
    });
    group.bench_function("fig8_sources_of_improvement_k", |b| {
        b.iter(|| std::hint::black_box(graph_exp::figure8(&["K"], BENCH_SCALE, 2)))
    });
    group.bench_function("fig9_ssd_technologies", |b| {
        b.iter(|| std::hint::black_box(graph_exp::figure9(BENCH_SCALE, 3)))
    });
    group.bench_function("fig10_cache_capacity", |b| {
        b.iter(|| std::hint::black_box(graph_exp::figure10(BENCH_SCALE, 4)))
    });
    group.bench_function("fig11_queue_pairs", |b| {
        b.iter(|| std::hint::black_box(graph_exp::figure11(BENCH_SCALE, 5)))
    });
    group.bench_function("fig12_analytics_queries", |b| {
        b.iter(|| std::hint::black_box(analytics_exp::figure12(8_192, 6)))
    });
    group.bench_function("fig15_uvm_zerocopy", |b| {
        b.iter(|| std::hint::black_box(misc_exp::figure15(BENCH_SCALE, 7)))
    });
    group.bench_function("vectoradd_eval", |b| {
        b.iter(|| std::hint::black_box(misc_exp::vectoradd_eval(10_000, 4_000_000_000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables_and_analytic_figures,
    bench_functional_figures
);
criterion_main!(benches);
