//! Criterion benches of the BaM I/O queue protocol (§3.3), including the
//! doorbell-coalescing ablation called out in DESIGN.md: submission
//! throughput with one thread (every submission rings the doorbell itself)
//! vs many threads (one winner sweeps and rings for the whole batch).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bam_core::BamQueuePair;
use bam_mem::{BumpAllocator, ByteRegion};
use bam_nvme_sim::{SsdDevice, SsdSpec};

struct Rig {
    _region: Arc<ByteRegion>,
    alloc: BumpAllocator,
    ssd: SsdDevice,
    qp: Arc<BamQueuePair>,
}

fn rig(queue_entries: u32) -> Rig {
    let region = Arc::new(ByteRegion::new(32 << 20));
    let alloc = BumpAllocator::new(region.len() as u64);
    let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 16 << 20);
    let raw = ssd.create_queue_pair(&alloc, queue_entries).unwrap();
    ssd.start();
    Rig {
        _region: region,
        alloc,
        ssd,
        qp: Arc::new(BamQueuePair::new(raw)),
    }
}

fn bench_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_protocol/submit_and_wait");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let r = rig(64);
                let per_thread = 64usize;
                let bufs: Vec<u64> = (0..threads)
                    .map(|_| r.alloc.alloc(512, 512).unwrap())
                    .collect();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for (t, &dst) in bufs.iter().enumerate() {
                            let qp = r.qp.clone();
                            s.spawn(move || {
                                for i in 0..per_thread {
                                    qp.read_and_wait((t * per_thread + i) as u64 % 1024, 1, dst)
                                        .unwrap();
                                }
                            });
                        }
                    });
                });
                drop(r.ssd);
            },
        );
    }
    group.finish();
}

fn bench_doorbell_coalescing(c: &mut Criterion) {
    // Not a timing bench: reports the doorbell-write ratio under contention,
    // the quantity the coalesced move_tail protocol optimizes.
    let r = rig(256);
    let dst = r.alloc.alloc(512, 512).unwrap();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let qp = r.qp.clone();
            s.spawn(move || {
                for i in 0..500u64 {
                    qp.read_and_wait(i % 1024, 1, dst).unwrap();
                }
            });
        }
    });
    let submissions = r.qp.submissions();
    let doorbells = r.qp.sq_doorbell_writes();
    println!(
        "doorbell coalescing: {submissions} submissions -> {doorbells} doorbell writes \
         ({:.2} submissions per MMIO write)",
        submissions as f64 / doorbells.max(1) as f64
    );
    // Keep criterion happy with a trivial measured closure.
    c.bench_function("queue_protocol/doorbell_counter_read", |b| {
        b.iter(|| std::hint::black_box(r.qp.sq_doorbell_writes()))
    });
}

criterion_group!(benches, bench_submission, bench_doorbell_coalescing);
criterion_main!(benches);
