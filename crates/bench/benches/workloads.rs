//! Criterion benches of the end-to-end workloads at reduced scale: BFS, CC,
//! an analytics query, and vectorAdd, all running through the full BaM stack.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bam_core::{BamConfig, BamSystem};
use bam_gpu_sim::{GpuExecutor, GpuSpec};
use bam_workloads::analytics::{query_bam, BamTaxiTable, TaxiTable};
use bam_workloads::graph::{bfs_bam, cc_bam, uniform_random, upload_edge_list};
use bam_workloads::vectoradd::{setup, vectoradd_bam};

fn small_system() -> BamSystem {
    BamSystem::new(BamConfig::test_scale()).unwrap()
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/graph");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let graph = uniform_random(2000, 16_000, 17);
    let sys = small_system();
    let edges = upload_edge_list(&sys, &graph).unwrap();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
    group.bench_function("bfs_2k_nodes", |b| {
        b.iter(|| std::hint::black_box(bfs_bam(&graph.offsets, &edges, 0, &exec).unwrap()))
    });
    group.bench_function("cc_2k_nodes", |b| {
        b.iter(|| std::hint::black_box(cc_bam(&graph.offsets, &edges, &exec).unwrap()))
    });
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/analytics");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let table = TaxiTable::generate(16_384, 0.01, 3);
    let mut cfg = BamConfig::test_scale();
    cfg.ssd_capacity_bytes = 16 << 20;
    let sys = BamSystem::new(cfg).unwrap();
    let bam_table = BamTaxiTable::upload(&sys, &table).unwrap();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
    group.bench_function("query_q5_16k_rows", |b| {
        b.iter(|| std::hint::black_box(query_bam(&bam_table, 5, &exec).unwrap()))
    });
    group.finish();
}

fn bench_vectoradd(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/vectoradd");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let sys = small_system();
    let (a, b_arr, out) = setup(&sys, 20_000).unwrap();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
    group.bench_function("vectoradd_20k", |b| {
        b.iter(|| std::hint::black_box(vectoradd_bam(&sys, &a, &b_arr, &out, &exec).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_graph, bench_analytics, bench_vectoradd);
criterion_main!(benches);
