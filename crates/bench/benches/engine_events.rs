//! Criterion bench of event-engine throughput (events/s): the inline engine
//! vs the sharded engine at 1/2/4 workers, on a reduced-scale cut of the
//! `engine` harness's 8-tenant MMPP-antagonist workload.
//!
//! Throughput is reported in events (`Throughput::Elements`), so Criterion's
//! elem/s figure *is* events/s — the same unit `BENCH_engine.json` records
//! at full scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bam_bench::engine_exp::{engine_workload, ENGINE_SEED};
use bam_sim::{engine, QueuePairPolicy};

fn bench_engine_events(c: &mut Criterion) {
    let (config, tenants) = engine_workload(ENGINE_SEED, 6_000);
    let policy = QueuePairPolicy::Shared;
    let events = engine::run_tenants(&config, &tenants, policy)
        .overall
        .events;

    let mut group = c.benchmark_group("engine/events");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(events));
    group.bench_function("inline", |b| {
        b.iter(|| std::hint::black_box(engine::run_tenants(&config, &tenants, policy)))
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("sharded_{workers}w"), |b| {
            b.iter(|| {
                std::hint::black_box(engine::run_tenants_sharded(
                    &config, &tenants, policy, workers,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_events);
criterion_main!(benches);
