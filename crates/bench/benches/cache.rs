//! Criterion benches of the BaM software cache (§3.4) and its ablations:
//! hit path, miss/eviction path, warp coalescing on vs off, and clock
//! replacement under a streaming working set.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bam_core::{BamConfig, BamSystem};
use bam_gpu_sim::{GpuExecutor, GpuSpec, WARP_SIZE};

fn system(coalescing: bool, cache_kib: u64) -> BamSystem {
    let cfg = BamConfig {
        cache_bytes: cache_kib * 1024,
        warp_coalescing: coalescing,
        ..BamConfig::test_scale()
    };
    BamSystem::new(cfg).unwrap()
}

fn bench_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/hit_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let sys = system(true, 256);
    let arr = sys.create_array::<u64>(8192).unwrap();
    arr.preload(&(0..8192u64).collect::<Vec<_>>()).unwrap();
    // Warm the cache.
    for i in 0..8192 {
        arr.read(i).unwrap();
    }
    group.bench_function("single_element_hot", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 8192;
            std::hint::black_box(arr.read(i).unwrap())
        })
    });
    group.bench_function("read_run_hot_64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % 8000;
            std::hint::black_box(arr.read_run(i, 64).unwrap())
        })
    });
    group.finish();
}

fn bench_miss_and_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/miss_eviction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // Cache of 64 KiB streaming over a 2 MiB working set: every run iteration
    // evicts.
    let sys = system(true, 64);
    let n = (2u64 << 20) / 8;
    let arr = sys.create_array::<u64>(n).unwrap();
    arr.preload(&(0..n).collect::<Vec<_>>()).unwrap();
    group.bench_function("streaming_eviction_run_64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4096) % (n - 64);
            std::hint::black_box(arr.read_run(i, 64).unwrap())
        })
    });
    group.finish();
}

fn bench_coalescing_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache/warp_coalescing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for coalescing in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("enabled", coalescing),
            &coalescing,
            |b, &coalescing| {
                let sys = system(coalescing, 512);
                let arr = sys.create_array::<u32>(1 << 16).unwrap();
                arr.preload(&(0..1u32 << 16).collect::<Vec<_>>()).unwrap();
                let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
                b.iter(|| {
                    exec.launch(4096, |warp| {
                        let mut indices = [None; WARP_SIZE];
                        for (lane, tid) in warp.lanes() {
                            indices[lane] = Some(tid as u64 % (1 << 16));
                        }
                        std::hint::black_box(arr.gather_warp(warp, &indices).unwrap());
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hit_path,
    bench_miss_and_eviction,
    bench_coalescing_ablation
);
criterion_main!(benches);
