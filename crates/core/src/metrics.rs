//! Runtime metrics of the BaM software stack.
//!
//! Every count the experiment harnesses need — cache hits and misses, I/O
//! requests issued, bytes moved, doorbell writes, coalescing savings — is
//! collected here with relaxed atomics so the hot paths stay cheap. Two
//! latency-valued metrics (miss-fetch and writeback wall time) accumulate
//! into [`LatencyHisto`]s behind a mutex — they are off the per-access hot
//! path, recorded once per storage round trip.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bam_obs::LatencyHisto;
use serde::{Deserialize, Serialize};

/// Live counters for one BaM system instance.
#[derive(Debug, Default)]
pub struct BamMetrics {
    // Cache.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_writebacks: AtomicU64,
    probe_attempts: AtomicU64,
    coalesced_accesses: AtomicU64,
    reused_references: AtomicU64,
    // I/O stack.
    read_requests: AtomicU64,
    write_requests: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    // Application-level accounting (for I/O amplification).
    bytes_requested: AtomicU64,
    // Robustness.
    storage_retries: AtomicU64,
    journal_appends: AtomicU64,
    journal_bytes: AtomicU64,
    // Latency-valued metrics (wall-clock nanoseconds; sample counts are
    // deterministic, the values are not — they never enter drift gates).
    fetch_latency_ns: Mutex<LatencyHisto>,
    writeback_latency_ns: Mutex<LatencyHisto>,
}

/// A point-in-time copy of [`BamMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Cache probes that hit a valid line.
    pub cache_hits: u64,
    /// Cache probes that required fetching the line from storage.
    pub cache_misses: u64,
    /// Lines evicted to make room.
    pub cache_evictions: u64,
    /// Dirty lines written back to storage.
    pub cache_writebacks: u64,
    /// Cache probes performed (group leaders only when coalescing).
    pub probe_attempts: u64,
    /// Accesses that were satisfied by another lane's probe (coalescing win).
    pub coalesced_accesses: u64,
    /// Accesses that reused an already-pinned line reference (reuse win).
    pub reused_references: u64,
    /// Read commands submitted to storage.
    pub read_requests: u64,
    /// Write commands submitted to storage.
    pub write_requests: u64,
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes the application actually asked for (element granularity).
    pub bytes_requested: u64,
    /// Transient storage failures retried on the cache-miss fetch path.
    pub storage_retries: u64,
    /// Records appended to the cache's write-ahead journal.
    pub journal_appends: u64,
    /// Bytes appended to the cache's write-ahead journal.
    pub journal_bytes: u64,
}

impl MetricsSnapshot {
    /// Cache hit rate in `[0, 1]`; zero when no probes happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// I/O amplification factor: bytes moved from storage divided by bytes
    /// the application requested (the metric of Figures 12 and 14).
    pub fn io_amplification(&self) -> f64 {
        if self.bytes_requested == 0 {
            if self.bytes_read + self.bytes_written == 0 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        (self.bytes_read + self.bytes_written) as f64 / self.bytes_requested as f64
    }

    /// Total storage commands.
    pub fn total_requests(&self) -> u64 {
        self.read_requests + self.write_requests
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// Two human-readable lines: cache behaviour, then storage traffic — the
    /// summary every example and harness wants to print.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, \
             coalescing saved {} probes, {} reference reuses",
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
            self.cache_evictions,
            self.coalesced_accesses,
            self.reused_references
        )?;
        write!(
            f,
            "storage: {} reads / {} writes, {} B read, {} B written, \
             I/O amplification {:.2}x, {} retries, {} journal records ({} B)",
            self.read_requests,
            self.write_requests,
            self.bytes_read,
            self.bytes_written,
            self.io_amplification(),
            self.storage_retries,
            self.journal_appends,
            self.journal_bytes
        )
    }
}

impl BamMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_writeback(&self) {
        self.cache_writebacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_probe(&self) {
        self.probe_attempts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_coalesced(&self, lanes_saved: u64) {
        self.coalesced_accesses
            .fetch_add(lanes_saved, Ordering::Relaxed);
    }

    pub(crate) fn record_reuse(&self) {
        self.reused_references.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read_request(&self, bytes: u64) {
        self.read_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write_request(&self, bytes: u64) {
        self.write_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_requested_bytes(&self, bytes: u64) {
        self.bytes_requested.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.storage_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_journal_append(&self, bytes: u64) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_fetch_latency(&self, ns: u64) {
        self.fetch_latency_ns
            .lock()
            .expect("metrics lock poisoned")
            .record(ns);
    }

    pub(crate) fn record_writeback_latency(&self, ns: u64) {
        self.writeback_latency_ns
            .lock()
            .expect("metrics lock poisoned")
            .record(ns);
    }

    /// Wall-clock latency histogram of cache-miss fetches (whole retry
    /// loops, storage round trip included). A copy — the live histogram
    /// keeps accumulating.
    pub fn fetch_latency(&self) -> LatencyHisto {
        self.fetch_latency_ns
            .lock()
            .expect("metrics lock poisoned")
            .clone()
    }

    /// Wall-clock latency histogram of dirty-line writebacks.
    pub fn writeback_latency(&self) -> LatencyHisto {
        self.writeback_latency_ns
            .lock()
            .expect("metrics lock poisoned")
            .clone()
    }

    /// Copies the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_writebacks: self.cache_writebacks.load(Ordering::Relaxed),
            probe_attempts: self.probe_attempts.load(Ordering::Relaxed),
            coalesced_accesses: self.coalesced_accesses.load(Ordering::Relaxed),
            reused_references: self.reused_references.load(Ordering::Relaxed),
            read_requests: self.read_requests.load(Ordering::Relaxed),
            write_requests: self.write_requests.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_requested: self.bytes_requested.load(Ordering::Relaxed),
            storage_retries: self.storage_retries.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (used between experiment phases).
    pub fn reset(&self) {
        // Relaxed stores are fine: resets happen between kernel launches.
        for c in [
            &self.cache_hits,
            &self.cache_misses,
            &self.cache_evictions,
            &self.cache_writebacks,
            &self.probe_attempts,
            &self.coalesced_accesses,
            &self.reused_references,
            &self.read_requests,
            &self.write_requests,
            &self.bytes_read,
            &self.bytes_written,
            &self.bytes_requested,
            &self.storage_retries,
            &self.journal_appends,
            &self.journal_bytes,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        *self.fetch_latency_ns.lock().expect("metrics lock poisoned") = LatencyHisto::new();
        *self
            .writeback_latency_ns
            .lock()
            .expect("metrics lock poisoned") = LatencyHisto::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_amplification() {
        let m = BamMetrics::new();
        m.record_hit();
        m.record_hit();
        m.record_hit();
        m.record_miss();
        m.record_read_request(4096);
        m.record_requested_bytes(1024);
        let s = m.snapshot();
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.io_amplification() - 4.0).abs() < 1e-12);
        assert_eq!(s.total_requests(), 1);
    }

    #[test]
    fn empty_metrics_have_sane_ratios() {
        let s = BamMetrics::new().snapshot();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.io_amplification(), 1.0);
    }

    #[test]
    fn display_summarizes_cache_and_storage() {
        let m = BamMetrics::new();
        m.record_hit();
        m.record_miss();
        m.record_read_request(4096);
        m.record_requested_bytes(2048);
        let s = m.snapshot().to_string();
        assert!(s.contains("50.0% hit rate"), "{s}");
        assert!(s.contains("I/O amplification 2.00x"), "{s}");
        assert!(s.lines().count() == 2, "{s}");
    }

    #[test]
    fn reset_clears_everything() {
        let m = BamMetrics::new();
        m.record_miss();
        m.record_write_request(512);
        m.record_retry();
        m.record_journal_append(48);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn latency_histograms_accumulate_and_reset() {
        let m = BamMetrics::new();
        m.record_fetch_latency(1_000);
        m.record_fetch_latency(5_000);
        m.record_writeback_latency(2_000);
        assert_eq!(m.fetch_latency().count(), 2);
        assert_eq!(m.fetch_latency().sum_ns(), 6_000);
        assert_eq!(m.writeback_latency().count(), 1);
        m.reset();
        assert!(m.fetch_latency().is_empty());
        assert!(m.writeback_latency().is_empty());
        // The Copy snapshot stays latency-free and comparable.
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn retry_and_journal_counters_accumulate() {
        let m = BamMetrics::new();
        m.record_retry();
        m.record_retry();
        m.record_journal_append(48);
        m.record_journal_append(112);
        let s = m.snapshot();
        assert_eq!(s.storage_retries, 2);
        assert_eq!(s.journal_appends, 2);
        assert_eq!(s.journal_bytes, 160);
        assert!(s.to_string().contains("2 retries"), "{s}");
    }
}
