//! # bam-core — the BaM system architecture (paper contribution)
//!
//! This crate implements the core of *GPU-Initiated On-Demand
//! High-Throughput Storage Access in the BaM System Architecture*
//! (ASPLOS 2023) on top of the simulated substrates in the companion crates:
//!
//! * [`queue::BamQueuePair`] — the high-throughput submission/completion
//!   queue protocol (§3.3): atomic ticket counter, per-entry `turn_counter`,
//!   mark bit-vectors, and coalesced doorbell updates, so thousands of GPU
//!   threads can submit NVMe commands without a serializing critical section.
//! * [`cache::BamCache`] — the software cache (§3.4): pre-allocated slots,
//!   per-line state words manipulated with single atomics, clock
//!   replacement, reference-count pinning, dirty tracking and write-back.
//! * [`array::BamArray`] — the `bam::array<T>` abstraction (§3.5): element
//!   reads/writes with warp coalescing (`match_any` + leader election) and
//!   cache-line reference reuse.
//! * [`iostack::IoStack`] — routes line fetches/write-backs to the SSD array
//!   through the BaM queues, round-robining across devices and queue pairs.
//! * [`system::BamSystem`] — one-call initialization that allocates
//!   everything in GPU memory up front, mirroring the prototype's setup.
//!
//! ## Quick start
//!
//! ```
//! use bam_core::{BamConfig, BamSystem};
//!
//! # fn main() -> Result<(), bam_core::BamError> {
//! // Build a scaled-down system (2 simulated Optane SSDs, 512 B lines).
//! let system = BamSystem::new(BamConfig::test_scale())?;
//!
//! // Map a storage-backed array and initialize it.
//! let data = system.create_array::<f32>(10_000)?;
//! data.preload(&(0..10_000).map(|i| i as f32).collect::<Vec<_>>())?;
//!
//! // GPU threads (see `bam-gpu-sim`) can now access it on demand.
//! assert_eq!(data.read(1234)?, 1234.0);
//! println!("cache hit rate: {:.2}", system.metrics().hit_rate());
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod backing;
pub mod cache;
pub mod config;
pub mod crash;
pub mod error;
pub mod iostack;
pub mod journal;
pub mod metrics;
pub mod queue;
pub mod system;

pub use array::BamArray;
pub use backing::{CacheBacking, CrashBacking, MemoryBacking};
pub use bam_obs::{
    chrome_trace_json, LatencyHisto, PromWriter, SpanEvent, SpanId, SpanRecorder, SpanSink, Stage,
};
pub use cache::{BamCache, LineGuard};
pub use config::BamConfig;
pub use crash::{CrashPoint, StepOutcome};
pub use error::BamError;
pub use iostack::IoStack;
pub use journal::{
    decode_records, recover, recover_observed, replay_plan, CacheJournal, DecodedJournal,
    JournalRecord, LineReplay, RecoveryReport,
};
pub use metrics::{BamMetrics, MetricsSnapshot};
pub use queue::BamQueuePair;
pub use system::BamSystem;
