//! Error types for the BaM core library.

use bam_nvme_sim::NvmeError;

/// Errors surfaced by the BaM software stack.
#[derive(Debug, Clone, PartialEq)]
pub enum BamError {
    /// GPU memory was exhausted while building the cache, queues, or buffers.
    OutOfDeviceMemory {
        /// Bytes that were requested.
        requested: u64,
        /// Bytes that remained available.
        remaining: u64,
    },
    /// The storage namespace is too small for the requested array mapping.
    OutOfStorageCapacity {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// A storage command completed with an error status.
    Storage(NvmeError),
    /// Configuration is inconsistent (for example a cache line size that is
    /// not a multiple of the device block size).
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The cache could not find an evictable slot: every slot is pinned by a
    /// concurrently executing thread. This is the "working set larger than
    /// the cache *and* fully pinned" condition; the paper avoids it by
    /// construction (threads pin at most one line at a time).
    CacheThrashing,
    /// An index was outside the bounds of a [`crate::BamArray`].
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The array length.
        len: u64,
    },
    /// The cache journal could not be decoded or replayed: a fully-present
    /// record failed its checksum, framing, or sequencing checks. (A *torn*
    /// final record is not corruption — see `crate::journal::decode_records`.)
    JournalCorrupt {
        /// LSN the journal was expected to contain at the failure point.
        lsn: u64,
    },
    /// An injected crash point tripped: the stack is down and every durable
    /// operation fails until the crash point is reset (the reboot) and the
    /// journal is replayed.
    Crashed,
}

impl std::fmt::Display for BamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BamError::OutOfDeviceMemory { requested, remaining } => write!(
                f,
                "gpu memory exhausted: requested {requested} bytes with {remaining} remaining"
            ),
            BamError::OutOfStorageCapacity { requested, available } => write!(
                f,
                "storage namespace exhausted: requested {requested} bytes with {available} available"
            ),
            BamError::Storage(e) => write!(f, "storage error: {e}"),
            BamError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            BamError::CacheThrashing => {
                write!(f, "cache thrashing: every cache slot is pinned by a concurrent thread")
            }
            BamError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            BamError::JournalCorrupt { lsn } => {
                write!(f, "cache journal corrupt at lsn {lsn}")
            }
            BamError::Crashed => {
                write!(f, "injected crash point tripped: the stack is down until recovery")
            }
        }
    }
}

impl std::error::Error for BamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BamError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmeError> for BamError {
    fn from(e: NvmeError) -> Self {
        BamError::Storage(e)
    }
}

impl From<bam_mem::AllocError> for BamError {
    fn from(e: bam_mem::AllocError) -> Self {
        BamError::OutOfDeviceMemory {
            requested: e.requested,
            remaining: e.remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = BamError::Storage(NvmeError::UnknownQueue { queue_id: 3 });
        assert!(e.to_string().contains("storage error"));
        assert!(e.source().is_some());
        let e2 = BamError::CacheThrashing;
        assert!(e2.source().is_none());
        assert!(e2.to_string().contains("pinned"));
        let e3 = BamError::JournalCorrupt { lsn: 42 };
        assert!(e3.to_string().contains("lsn 42"));
        assert!(BamError::Crashed.to_string().contains("crash point"));
    }

    #[test]
    fn conversions() {
        let alloc_err = bam_mem::AllocError {
            requested: 10,
            remaining: 5,
        };
        let b: BamError = alloc_err.into();
        assert!(matches!(
            b,
            BamError::OutOfDeviceMemory {
                requested: 10,
                remaining: 5
            }
        ));
        let n: BamError = NvmeError::UnknownQueue { queue_id: 1 }.into();
        assert!(matches!(n, BamError::Storage(_)));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BamError>();
    }
}
