//! BaM system configuration.

use bam_nvme_sim::{DataLayout, SsdSpec, BLOCK_SIZE};
use serde::{Deserialize, Serialize};

use crate::error::BamError;

/// Configuration of a BaM system instance.
///
/// The defaults reproduce the configuration used throughout the paper's
/// evaluation (§5.2): 4 KB cache lines, an 8 GB cache, 128 queue pairs of
/// depth 1024 per SSD, Intel Optane SSDs, and data replicated across SSDs.
/// Experiments scale the byte capacities down; the *ratios* are what matter
/// for the reproduced shapes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BamConfig {
    /// Cache line size in bytes (also the storage I/O granularity, §5.1).
    pub cache_line_bytes: u64,
    /// Total cache capacity in bytes.
    pub cache_bytes: u64,
    /// Number of SSDs in the array.
    pub num_ssds: usize,
    /// SSD model used for every device in the array.
    pub ssd_spec: SsdSpec,
    /// Per-device media capacity in bytes (scaled down in experiments).
    pub ssd_capacity_bytes: u64,
    /// Number of NVMe queue pairs per SSD.
    pub queue_pairs_per_ssd: u32,
    /// Queue depth of each queue pair.
    pub queue_depth: u32,
    /// How the dataset is laid out across SSDs.
    pub layout: DataLayout,
    /// Whether warp coalescing is enabled in the cache (§3.4). Disabled only
    /// by the Figure 8 ablation.
    pub warp_coalescing: bool,
    /// Whether the software cache is used at all. Disabled only by the
    /// Figure 8 "no cache" ablation, in which every access issues storage I/O.
    pub use_cache: bool,
    /// GPU memory capacity to back in the simulation, in bytes. Must hold the
    /// cache, queues, and I/O buffers.
    pub gpu_memory_bytes: u64,
    /// Whether the cache keeps a write-ahead metadata journal, making
    /// acknowledged writes crash-recoverable (see `crate::journal`).
    pub use_journal: bool,
    /// Extra attempts for a cache-miss fetch failing with a transient
    /// storage error (0 disables retry).
    pub fetch_retries: u32,
    /// Base backoff in microseconds before a fetch retry; doubles per
    /// attempt.
    pub fetch_retry_base_us: u64,
}

impl Default for BamConfig {
    fn default() -> Self {
        Self {
            cache_line_bytes: 4096,
            cache_bytes: 8 << 30,
            num_ssds: 4,
            ssd_spec: SsdSpec::intel_optane_p5800x(),
            ssd_capacity_bytes: 64 << 30,
            queue_pairs_per_ssd: 128,
            queue_depth: 1024,
            layout: DataLayout::Replicated,
            warp_coalescing: true,
            use_cache: true,
            gpu_memory_bytes: 16 << 30,
            use_journal: true,
            fetch_retries: 3,
            fetch_retry_base_us: 20,
        }
    }
}

impl BamConfig {
    /// A configuration scaled down for unit/integration tests and laptop-size
    /// experiment runs: 512-byte lines, a small cache, small namespaces, and
    /// few queue pairs, preserving every ratio the protocol cares about.
    pub fn test_scale() -> Self {
        Self {
            cache_line_bytes: 512,
            cache_bytes: 64 * 1024,
            num_ssds: 2,
            ssd_spec: SsdSpec::intel_optane_p5800x(),
            ssd_capacity_bytes: 16 << 20,
            queue_pairs_per_ssd: 4,
            queue_depth: 64,
            layout: DataLayout::Replicated,
            warp_coalescing: true,
            use_cache: true,
            gpu_memory_bytes: 8 << 20,
            use_journal: true,
            fetch_retries: 3,
            fetch_retry_base_us: 1,
        }
    }

    /// Number of cache slots implied by the capacity and line size.
    pub fn cache_slots(&self) -> u64 {
        self.cache_bytes / self.cache_line_bytes
    }

    /// Blocks per cache line on the device.
    pub fn blocks_per_line(&self) -> u32 {
        (self.cache_line_bytes / BLOCK_SIZE as u64) as u32
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::InvalidConfig`] describing the first inconsistency
    /// found.
    pub fn validate(&self) -> Result<(), BamError> {
        let fail = |reason: String| Err(BamError::InvalidConfig { reason });
        if self.cache_line_bytes == 0 || !self.cache_line_bytes.is_multiple_of(BLOCK_SIZE as u64) {
            return fail(format!(
                "cache line size {} must be a non-zero multiple of the {BLOCK_SIZE}-byte block",
                self.cache_line_bytes
            ));
        }
        if self.use_cache && self.cache_bytes < self.cache_line_bytes {
            return fail("cache capacity smaller than one cache line".into());
        }
        if self.num_ssds == 0 {
            return fail("at least one SSD is required".into());
        }
        if self.queue_pairs_per_ssd == 0 || self.queue_depth < 2 {
            return fail("need at least one queue pair of depth >= 2 per SSD".into());
        }
        if self.queue_depth > self.ssd_spec.max_queue_depth {
            return fail(format!(
                "queue depth {} exceeds device maximum {}",
                self.queue_depth, self.ssd_spec.max_queue_depth
            ));
        }
        if self.queue_pairs_per_ssd > self.ssd_spec.max_queue_pairs {
            return fail(format!(
                "{} queue pairs exceeds device maximum {}",
                self.queue_pairs_per_ssd, self.ssd_spec.max_queue_pairs
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let c = BamConfig::default();
        assert_eq!(c.cache_line_bytes, 4096);
        assert_eq!(c.cache_bytes, 8 << 30);
        assert_eq!(c.num_ssds, 4);
        assert_eq!(c.queue_pairs_per_ssd, 128);
        assert_eq!(c.queue_depth, 1024);
        assert!(c.validate().is_ok());
        assert_eq!(c.cache_slots(), (8 << 30) / 4096);
        assert_eq!(c.blocks_per_line(), 8);
    }

    #[test]
    fn test_scale_is_valid() {
        assert!(BamConfig::test_scale().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = BamConfig::test_scale();
        c.cache_line_bytes = 100;
        assert!(c.validate().is_err());

        let mut c = BamConfig::test_scale();
        c.num_ssds = 0;
        assert!(c.validate().is_err());

        let mut c = BamConfig::test_scale();
        c.queue_depth = 4096;
        assert!(c.validate().is_err());

        let mut c = BamConfig::test_scale();
        c.queue_pairs_per_ssd = 1000;
        assert!(c.validate().is_err());

        let mut c = BamConfig::test_scale();
        c.cache_bytes = 0;
        assert!(c.validate().is_err());
    }
}
