//! Crash-point injection: kill the stack at any durable step.
//!
//! Durability reasoning is only testable if a test can stop the world at
//! *every* point where volatile state and durable state may diverge. A
//! [`CrashPoint`] counts the stack's durable steps — every journal append and
//! every media write-back consumes exactly one step — and trips at an armed
//! step index. Tripping means the durable action *did not take effect*
//! (except journal appends, which may persist a configurable torn byte
//! prefix, modelling a write torn mid-sector), and every later durable
//! operation fails with [`crate::BamError::Crashed`] until [`CrashPoint::reset`]
//! models the reboot.
//!
//! This is the Memento-style discipline (SNIPPETS §1): enumerate the durable
//! steps, crash at each one, and prove recovery replays to a consistent
//! state. A dry run with a disarmed crash point counts the steps
//! ([`CrashPoint::steps_taken`]); sweeps then arm each index in turn.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Step index meaning "never trip".
const DISARMED: u64 = u64::MAX;

/// What a durable operation should do at this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Not the armed step: perform the durable action normally.
    Run,
    /// The armed step: the crash strikes *before* the action takes effect.
    /// Journal appends persist at most `torn_bytes` of the record (always a
    /// strict prefix); media write-backs persist nothing.
    Crash {
        /// Bytes of the in-flight journal record that reached the journal.
        torn_bytes: u64,
    },
    /// A previous step already crashed: the stack is down, nothing persists.
    Down,
}

/// A shared crash trigger, threaded through the journal and the backing
/// store (see [`crate::backing::CrashBacking`]).
#[derive(Debug, Default)]
pub struct CrashPoint {
    /// Next durable step index to hand out.
    next_step: AtomicU64,
    /// Step index at which to trip ([`DISARMED`] = never).
    crash_at: AtomicU64,
    /// Torn prefix length applied if the tripped step is a journal append.
    torn_bytes: AtomicU64,
    /// Latched once tripped; cleared only by [`CrashPoint::reset`].
    crashed: AtomicBool,
}

impl CrashPoint {
    /// A disarmed crash point: counts steps, never trips.
    pub fn new() -> Self {
        Self {
            next_step: AtomicU64::new(0),
            crash_at: AtomicU64::new(DISARMED),
            torn_bytes: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Arms the crash to trip at durable step `at_step` (0-based), tearing
    /// journal appends to at most `torn_bytes` bytes.
    pub fn arm(&self, at_step: u64, torn_bytes: u64) {
        self.torn_bytes.store(torn_bytes, Ordering::Relaxed);
        self.crash_at.store(at_step, Ordering::Relaxed);
    }

    /// Consumes one durable step and reports whether it may proceed.
    ///
    /// The outcome is decided purely from the step index drawn by the
    /// `fetch_add` (strictly before the armed step → run, the armed step →
    /// crash, after it → down), so the trip is atomic with step consumption:
    /// no thread can draw a post-crash index yet observe a not-yet-latched
    /// `crashed` flag and run a durable op after the crash tripped.
    pub fn consume_step(&self) -> StepOutcome {
        let crash_at = self.crash_at.load(Ordering::Acquire);
        let step = self.next_step.fetch_add(1, Ordering::AcqRel);
        match step.cmp(&crash_at) {
            std::cmp::Ordering::Less => StepOutcome::Run,
            std::cmp::Ordering::Equal => {
                self.crashed.store(true, Ordering::Release);
                StepOutcome::Crash {
                    torn_bytes: self.torn_bytes.load(Ordering::Acquire),
                }
            }
            std::cmp::Ordering::Greater => {
                // Keep the latch consistent for `is_crashed` even if this
                // thread outraced the one that drew the armed index.
                self.crashed.store(true, Ordering::Release);
                StepOutcome::Down
            }
        }
    }

    /// Durable steps consumed so far (dry runs use this to size sweeps).
    pub fn steps_taken(&self) -> u64 {
        self.next_step.load(Ordering::Acquire)
    }

    /// Whether the crash has tripped.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Models the reboot: clears the tripped state, disarms, and restarts the
    /// step counter so recovery and post-recovery traffic run normally.
    pub fn reset(&self) {
        self.crash_at.store(DISARMED, Ordering::Relaxed);
        self.torn_bytes.store(0, Ordering::Relaxed);
        self.next_step.store(0, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_counts_but_never_trips() {
        let cp = CrashPoint::new();
        for _ in 0..100 {
            assert_eq!(cp.consume_step(), StepOutcome::Run);
        }
        assert_eq!(cp.steps_taken(), 100);
        assert!(!cp.is_crashed());
    }

    #[test]
    fn armed_step_trips_once_then_stays_down() {
        let cp = CrashPoint::new();
        cp.arm(2, 7);
        assert_eq!(cp.consume_step(), StepOutcome::Run);
        assert_eq!(cp.consume_step(), StepOutcome::Run);
        assert_eq!(cp.consume_step(), StepOutcome::Crash { torn_bytes: 7 });
        assert!(cp.is_crashed());
        assert_eq!(cp.consume_step(), StepOutcome::Down);
        assert_eq!(cp.consume_step(), StepOutcome::Down);
    }

    #[test]
    fn concurrent_steps_trip_exactly_once_and_never_run_past_the_crash() {
        // 4 threads × 50 steps against a crash armed at index 50: exactly 50
        // steps may Run, exactly one trips, and every later index is Down —
        // regardless of thread interleaving. This is the check-then-act race
        // the single atomic draw closes.
        let cp = CrashPoint::new();
        cp.arm(50, 3);
        let (runs, crashes, downs) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let (mut r, mut c, mut d) = (0u64, 0u64, 0u64);
                        for _ in 0..50 {
                            match cp.consume_step() {
                                StepOutcome::Run => r += 1,
                                StepOutcome::Crash { torn_bytes } => {
                                    assert_eq!(torn_bytes, 3);
                                    c += 1;
                                }
                                StepOutcome::Down => d += 1,
                            }
                        }
                        (r, c, d)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0, 0, 0), |(r, c, d), (r2, c2, d2)| {
                    (r + r2, c + c2, d + d2)
                })
        });
        assert_eq!(runs, 50, "a durable op ran at or after the crash step");
        assert_eq!(crashes, 1, "the armed step must trip exactly once");
        assert_eq!(downs, 149);
        assert!(cp.is_crashed());
    }

    #[test]
    fn reset_models_the_reboot() {
        let cp = CrashPoint::new();
        cp.arm(0, 0);
        assert_eq!(cp.consume_step(), StepOutcome::Crash { torn_bytes: 0 });
        cp.reset();
        assert!(!cp.is_crashed());
        assert_eq!(cp.consume_step(), StepOutcome::Run);
        assert_eq!(cp.steps_taken(), 1);
    }
}
