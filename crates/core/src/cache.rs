//! The BaM software cache (paper §3.4).
//!
//! The cache is sized and allocated entirely at startup, keeping the runtime
//! critical sections tiny: probing is a single atomic read-modify-write on a
//! per-line state word, insertion locks only the line being inserted (by
//! flipping it to a transient *busy* state), and eviction uses a clock hand
//! advanced with one atomic increment so concurrent threads evict distinct
//! slots in parallel. Reference counts pin lines while in use; dirty bits
//! drive write-back.
//!
//! Per-line state is a packed 64-bit word:
//!
//! ```text
//!  63           32 31    4  3      2     1..0
//! +---------------+--------+--------+---------+
//! |   slot index  | refcnt | dirty  |  state  |
//! +---------------+--------+--------+---------+
//! ```
//!
//! with `state ∈ {INVALID, BUSY, VALID}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bam_mem::DevAddr;
use bam_obs::{SpanEvent, SpanSink, Stage};

use crate::backing::CacheBacking;
use crate::error::BamError;
use crate::journal::CacheJournal;
use crate::metrics::BamMetrics;

const STATE_INVALID: u64 = 0;
const STATE_BUSY: u64 = 1;
const STATE_VALID: u64 = 2;
const STATE_MASK: u64 = 0b11;
const DIRTY_BIT: u64 = 1 << 2;
const REF_SHIFT: u32 = 3;
const REF_MASK: u64 = (1 << 29) - 1; // 29 bits of reference count
const SLOT_SHIFT: u32 = 32;

/// Sentinel in `slot_to_line` marking a slot claimed by an in-progress fetch.
const SLOT_CLAIMED: u64 = u64::MAX;

/// Stripes in the per-line write-lock table. Same-line writes serialize on
/// their stripe so journal LSN order matches the order payloads land in the
/// line image (see [`BamCache::journalled_write`]).
const WRITE_LOCK_STRIPES: usize = 64;

#[inline]
fn pack(state: u64, dirty: bool, refs: u64, slot: u64) -> u64 {
    debug_assert!(refs <= REF_MASK);
    state | if dirty { DIRTY_BIT } else { 0 } | (refs << REF_SHIFT) | (slot << SLOT_SHIFT)
}

#[inline]
fn state_of(word: u64) -> u64 {
    word & STATE_MASK
}

#[inline]
fn is_dirty(word: u64) -> bool {
    word & DIRTY_BIT != 0
}

#[inline]
fn refs_of(word: u64) -> u64 {
    (word >> REF_SHIFT) & REF_MASK
}

#[inline]
fn slot_of(word: u64) -> u64 {
    word >> SLOT_SHIFT
}

/// A pinned reference to a cache line, returned by [`BamCache::acquire`].
///
/// While the guard lives, the line cannot be evicted. Dropping it releases
/// the reference (the paper's "decrement its reference count when done").
pub struct LineGuard<'a> {
    cache: &'a BamCache,
    line: u64,
    slot: u64,
}

impl LineGuard<'_> {
    /// The cache line index this guard pins.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// GPU-memory address of the first byte of the cached line.
    pub fn addr(&self) -> DevAddr {
        self.cache.slot_addr(self.slot)
    }

    /// Marks the line dirty (call after writing through [`LineGuard::addr`]).
    pub fn mark_dirty(&self) {
        self.cache.line_state[self.line as usize].fetch_or(DIRTY_BIT, Ordering::AcqRel);
    }
}

impl Drop for LineGuard<'_> {
    fn drop(&mut self) {
        self.cache.release(self.line);
    }
}

impl std::fmt::Debug for LineGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineGuard")
            .field("line", &self.line)
            .field("slot", &self.slot)
            .finish()
    }
}

/// The BaM software cache.
pub struct BamCache {
    backing: Arc<dyn CacheBacking>,
    metrics: Arc<BamMetrics>,
    /// Per-line packed state word.
    line_state: Vec<AtomicU64>,
    /// Per-slot owner line (+1), 0 when empty, `SLOT_CLAIMED` mid-fetch.
    slot_to_line: Vec<AtomicU64>,
    /// Clock hand for eviction.
    clock: AtomicU64,
    /// Base address of the slot data array in GPU memory.
    slots_base: DevAddr,
    line_bytes: u64,
    num_slots: u64,
    /// Write-ahead metadata journal; when present, every acknowledged write
    /// and every dirty-line write-back is journalled (see [`crate::journal`]).
    journal: Option<Arc<CacheJournal>>,
    /// Per-line newest write LSN whose payload has landed in the cached line
    /// image (0 = none). Write-back intents cover exactly this horizon: a
    /// journalled-but-unapplied write stays above it and is replayed by
    /// recovery, so a flush racing with a write can never seal a commit
    /// claiming bytes the media never saw.
    applied_lsn: Vec<AtomicU64>,
    /// Striped per-line write locks held across journal-append + data-apply
    /// in [`BamCache::journalled_write`], keeping `applied_lsn` monotone in
    /// LSN order under concurrent same-line writers.
    write_locks: Vec<Mutex<()>>,
    /// Optional span sink: when a recorder is installed, probe, miss-fetch
    /// and journal-append stages emit [`bam_obs::SpanEvent`]s (virtual time
    /// is the recorder's step counter; `arg` carries the line index).
    spans: SpanSink,
}

impl std::fmt::Debug for BamCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BamCache")
            .field("num_slots", &self.num_slots)
            .field("num_lines", &self.line_state.len())
            .field("line_bytes", &self.line_bytes)
            .finish()
    }
}

impl BamCache {
    /// Creates a cache of `num_slots` lines over `backing`, with slot storage
    /// pre-allocated at `slots_base` in GPU memory (`num_slots × line_bytes`
    /// bytes).
    ///
    /// # Panics
    ///
    /// Panics if `num_slots` is zero.
    pub fn new(
        backing: Arc<dyn CacheBacking>,
        metrics: Arc<BamMetrics>,
        slots_base: DevAddr,
        num_slots: u64,
    ) -> Self {
        assert!(num_slots > 0, "cache must have at least one slot");
        let num_lines = backing.num_lines();
        let line_bytes = backing.line_bytes();
        let mut line_state = Vec::with_capacity(num_lines as usize);
        line_state.resize_with(num_lines as usize, || {
            AtomicU64::new(pack(STATE_INVALID, false, 0, 0))
        });
        let mut slot_to_line = Vec::with_capacity(num_slots as usize);
        slot_to_line.resize_with(num_slots as usize, || AtomicU64::new(0));
        let mut applied_lsn = Vec::with_capacity(num_lines as usize);
        applied_lsn.resize_with(num_lines as usize, || AtomicU64::new(0));
        let mut write_locks = Vec::with_capacity(WRITE_LOCK_STRIPES);
        write_locks.resize_with(WRITE_LOCK_STRIPES, || Mutex::new(()));
        Self {
            backing,
            metrics,
            line_state,
            slot_to_line,
            clock: AtomicU64::new(0),
            slots_base,
            line_bytes,
            num_slots,
            journal: None,
            applied_lsn,
            write_locks,
            spans: SpanSink::new(),
        }
    }

    /// The cache's span sink; install a [`bam_obs::SpanRecorder`] to trace
    /// probe, miss-fetch and journal-append stages.
    pub fn spans(&self) -> &SpanSink {
        &self.spans
    }

    /// Emits one span event covering `[start_step, now]` when a recorder is
    /// installed; a fresh span id is allocated per event and correlated with
    /// other subsystems via `arg` (the line index).
    fn emit_span(&self, stage: Stage, start_step: u64, line: u64) {
        self.spans.with(|rec| {
            rec.record(SpanEvent {
                span: rec.next_span_id(),
                stage,
                start_ns: start_step,
                end_ns: rec.tick(),
                track: 0,
                arg: line,
            });
        });
    }

    /// Attaches a write-ahead journal: from here on, writes acknowledged via
    /// [`BamCache::journalled_write`] and dirty-line write-backs are durably
    /// logged, making the cache crash-recoverable through
    /// [`crate::journal::recover`].
    pub fn with_journal(mut self, journal: Arc<CacheJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The attached write-ahead journal, if any.
    pub fn journal(&self) -> Option<&Arc<CacheJournal>> {
        self.journal.as_ref()
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of cache slots.
    pub fn num_slots(&self) -> u64 {
        self.num_slots
    }

    /// Number of backing lines.
    pub fn num_lines(&self) -> u64 {
        self.line_state.len() as u64
    }

    /// GPU-memory address of slot `slot`.
    pub fn slot_addr(&self, slot: u64) -> DevAddr {
        self.slots_base + slot * self.line_bytes
    }

    /// Acquires (pins) `line`, fetching it from the backing store on a miss.
    ///
    /// This is the cache-probe path of Figure 2: probe the line state ❹; on a
    /// hit bump the reference count; on a miss lock the line (busy), find a
    /// victim with the clock hand, fetch from backing ❺–❼, publish, and
    /// return.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] for a line beyond the backing
    /// store, [`BamError::CacheThrashing`] if every slot stays pinned, or a
    /// storage error from the fetch.
    pub fn acquire(&self, line: u64) -> Result<LineGuard<'_>, BamError> {
        if line >= self.num_lines() {
            return Err(BamError::IndexOutOfBounds {
                index: line,
                len: self.num_lines(),
            });
        }
        self.metrics.record_probe();
        let probe_start = self.spans.with(|rec| rec.tick()).unwrap_or(0);
        let state = &self.line_state[line as usize];
        let mut spins = 0u64;
        loop {
            let cur = state.load(Ordering::Acquire);
            match state_of(cur) {
                STATE_VALID => {
                    let next = pack(STATE_VALID, is_dirty(cur), refs_of(cur) + 1, slot_of(cur));
                    if state
                        .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.metrics.record_hit();
                        self.emit_span(Stage::CacheProbe, probe_start, line);
                        return Ok(LineGuard {
                            cache: self,
                            line,
                            slot: slot_of(cur),
                        });
                    }
                }
                STATE_BUSY => {
                    // Another thread is fetching or evicting this line; the
                    // lock on the line prevents duplicate storage requests.
                    spin(&mut spins);
                }
                _ => {
                    // INVALID: try to become the fetching thread.
                    let busy = pack(STATE_BUSY, false, 0, 0);
                    if state
                        .compare_exchange_weak(cur, busy, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    self.metrics.record_miss();
                    self.emit_span(Stage::CacheProbe, probe_start, line);
                    let fetch_start = self.spans.with(|rec| rec.tick()).unwrap_or(0);
                    let slot = match self.find_victim() {
                        Ok(s) => s,
                        Err(e) => {
                            // Roll back so other threads are not stuck behind
                            // a permanently busy line.
                            state.store(pack(STATE_INVALID, false, 0, 0), Ordering::Release);
                            return Err(e);
                        }
                    };
                    if let Err(e) = self.backing.fetch_line(line, self.slot_addr(slot)) {
                        self.slot_to_line[slot as usize].store(0, Ordering::Release);
                        state.store(pack(STATE_INVALID, false, 0, 0), Ordering::Release);
                        return Err(e);
                    }
                    self.emit_span(Stage::MissFetch, fetch_start, line);
                    self.slot_to_line[slot as usize].store(line + 1, Ordering::Release);
                    state.store(pack(STATE_VALID, false, 1, slot), Ordering::Release);
                    return Ok(LineGuard {
                        cache: self,
                        line,
                        slot,
                    });
                }
            }
        }
    }

    /// Journals and applies an application write of `payload` at byte
    /// `offset` within `line`: appends the redo record (the acknowledgement
    /// point), runs `apply` to land the bytes in the cached line image,
    /// advances the line's applied-LSN horizon, and marks the line dirty.
    ///
    /// The line's write-lock stripe is held across append + apply, so the
    /// applied horizon only ever names payloads that are really in GPU
    /// memory and rises in LSN order even under concurrent same-line
    /// writers. A write-back intent sealed mid-write therefore covers at
    /// most the previous write; the in-flight one stays above the horizon
    /// and is redone (idempotently) by recovery.
    ///
    /// Without a journal this is a plain apply + mark-dirty.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::Crashed`] if an injected crash point tripped
    /// during the append; `apply` is not run and the line is untouched (the
    /// write was never acknowledged and owes the application nothing).
    pub fn journalled_write(
        &self,
        line: u64,
        offset: u64,
        payload: &[u8],
        apply: impl FnOnce(),
    ) -> Result<(), BamError> {
        let Some(journal) = &self.journal else {
            apply();
            self.line_state[line as usize].fetch_or(DIRTY_BIT, Ordering::AcqRel);
            return Ok(());
        };
        let _write_order = self.write_locks[line as usize % WRITE_LOCK_STRIPES].lock();
        let append_start = self.spans.with(|rec| rec.tick()).unwrap_or(0);
        let appended = journal.append_write(line, offset, payload)?;
        self.metrics.record_journal_append(appended.bytes);
        self.emit_span(Stage::JournalAppend, append_start, line);
        apply();
        self.applied_lsn[line as usize].fetch_max(appended.lsn, Ordering::AcqRel);
        self.line_state[line as usize].fetch_or(DIRTY_BIT, Ordering::AcqRel);
        Ok(())
    }

    /// Writes `line` back to the backing store under write-ahead journalling:
    /// intent before the media write, commit after it succeeded. Without a
    /// journal this is a plain write-back.
    fn journalled_writeback(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
        let Some(journal) = &self.journal else {
            return self.backing.writeback_line(line, src);
        };
        // Cover only writes whose payloads had landed in the line image
        // before the media write begins (never the journal's own view of
        // what was appended): anything racing past this snapshot is left
        // above the horizon for recovery to redo.
        let covered = self.applied_lsn[line as usize].load(Ordering::Acquire);
        let intent = journal.append_writeback_intent(line, covered)?;
        self.metrics.record_journal_append(intent.bytes);
        self.backing.writeback_line(line, src)?;
        let commit = journal.append_writeback_commit(line, intent.lsn)?;
        self.metrics.record_journal_append(commit.bytes);
        Ok(())
    }

    /// Rebuilds the cache directory after a crash: every line is INVALID,
    /// every slot empty, the clock hand rewound. Cached data in GPU memory is
    /// volatile and did not survive the crash; the journal replay
    /// ([`crate::journal::recover`]) has already restored acknowledged writes
    /// to the backing store, so a cold directory *is* the consistent state.
    ///
    /// The per-line applied-LSN horizons are deliberately kept: recovery has
    /// made every journalled write durable on the media, so each horizon
    /// still lower-bounds the write coverage of any freshly fetched line
    /// image (a conservative horizon only ever causes idempotent re-replay,
    /// never a lost write).
    pub fn reset_after_crash(&self) {
        for state in &self.line_state {
            state.store(pack(STATE_INVALID, false, 0, 0), Ordering::Release);
        }
        for slot in &self.slot_to_line {
            slot.store(0, Ordering::Release);
        }
        self.clock.store(0, Ordering::Release);
    }

    /// Releases one reference on `line` (used by [`LineGuard::drop`]).
    fn release(&self, line: u64) {
        let prev = self.line_state[line as usize].fetch_sub(1 << REF_SHIFT, Ordering::AcqRel);
        debug_assert!(refs_of(prev) > 0, "release without a matching acquire");
    }

    /// Finds a slot to hold a newly fetched line, evicting an unpinned valid
    /// line if necessary (clock replacement, §3.4).
    fn find_victim(&self) -> Result<u64, BamError> {
        // Bound the search: after enough full sweeps with every slot pinned
        // or busy, report thrashing rather than hanging. Yield between sweeps
        // so short-lived pins held by concurrent threads get a chance to be
        // released (transient full-pin states are normal; permanent ones are
        // the application bug this error reports).
        let limit = self.num_slots * 4096 + 65_536;
        for attempt in 0..limit {
            if attempt > 0 && attempt % self.num_slots == 0 {
                std::thread::yield_now();
            }
            let slot = self.clock.fetch_add(1, Ordering::Relaxed) % self.num_slots;
            let owner = self.slot_to_line[slot as usize].load(Ordering::Acquire);
            if owner == SLOT_CLAIMED {
                continue;
            }
            if owner == 0 {
                // Empty slot: claim it.
                if self.slot_to_line[slot as usize]
                    .compare_exchange(0, SLOT_CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Ok(slot);
                }
                continue;
            }
            let victim_line = owner - 1;
            let vstate = &self.line_state[victim_line as usize];
            let cur = vstate.load(Ordering::Acquire);
            if state_of(cur) != STATE_VALID || refs_of(cur) != 0 || slot_of(cur) != slot {
                continue; // pinned, busy, or stale mapping — advance the hand
            }
            // Lock the victim line while we (possibly) write it back, so a
            // concurrent re-fetch of the victim cannot read stale media.
            let busy = pack(STATE_BUSY, false, 0, 0);
            if vstate
                .compare_exchange(cur, busy, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            if is_dirty(cur) {
                if let Err(e) = self.journalled_writeback(victim_line, self.slot_addr(slot)) {
                    // Put the victim back exactly as found (valid, dirty,
                    // unpinned, same slot) so the line is neither wedged busy
                    // nor silently stripped of its dirty data.
                    vstate.store(cur, Ordering::Release);
                    return Err(e);
                }
                self.metrics.record_writeback();
            }
            vstate.store(pack(STATE_INVALID, false, 0, 0), Ordering::Release);
            self.slot_to_line[slot as usize].store(SLOT_CLAIMED, Ordering::Release);
            self.metrics.record_eviction();
            return Ok(slot);
        }
        Err(BamError::CacheThrashing)
    }

    /// Writes back every dirty line (the cache is write-back; the paper's API
    /// exposes exactly this flush, §4.4).
    ///
    /// # Errors
    ///
    /// Propagates backing-store write errors.
    pub fn flush(&self) -> Result<u64, BamError> {
        let mut flushed = 0;
        for line in 0..self.num_lines() {
            let state = &self.line_state[line as usize];
            loop {
                let cur = state.load(Ordering::Acquire);
                if state_of(cur) != STATE_VALID || !is_dirty(cur) {
                    break;
                }
                // Clear the dirty bit first; a concurrent write re-dirties
                // and will be caught by a later flush.
                let cleaned = cur & !DIRTY_BIT;
                if state
                    .compare_exchange(cur, cleaned, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    if let Err(e) = self.journalled_writeback(line, self.slot_addr(slot_of(cur))) {
                        // The media write failed, so the line is still dirty:
                        // restore the bit or the data would be silently lost.
                        state.fetch_or(DIRTY_BIT, Ordering::AcqRel);
                        return Err(e);
                    }
                    self.metrics.record_writeback();
                    flushed += 1;
                    break;
                }
            }
        }
        Ok(flushed)
    }

    /// Returns `(state, refcount, dirty)` of a line for tests and debugging.
    pub fn line_debug(&self, line: u64) -> (u8, u64, bool) {
        let cur = self.line_state[line as usize].load(Ordering::Acquire);
        (state_of(cur) as u8, refs_of(cur), is_dirty(cur))
    }
}

#[inline]
fn spin(spins: &mut u64) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemoryBacking;
    use bam_mem::ByteRegion;

    /// 64 lines of 512 bytes in "storage", an 8-slot cache in "GPU memory".
    fn rig(num_slots: u64) -> (Arc<ByteRegion>, Arc<ByteRegion>, BamCache) {
        let data = Arc::new(ByteRegion::new(64 * 512));
        for line in 0..64u64 {
            data.write_bytes(line * 512, &vec![line as u8; 512]);
        }
        let gpu = Arc::new(ByteRegion::new(1 << 20));
        let backing = Arc::new(MemoryBacking::new(data.clone(), 0, gpu.clone(), 512, 64));
        let metrics = Arc::new(BamMetrics::new());
        let cache = BamCache::new(backing, metrics, 0, num_slots);
        (data, gpu, cache)
    }

    #[test]
    fn spans_trace_probe_miss_and_hit() {
        let (_data, _gpu, cache) = rig(8);
        let rec = Arc::new(bam_obs::SpanRecorder::new());
        cache.spans().install(rec.clone());
        drop(cache.acquire(3).unwrap()); // miss: probe + fetch
        drop(cache.acquire(3).unwrap()); // hit: probe only
        let events = rec.events();
        let stages: Vec<Stage> = events.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::CacheProbe, Stage::MissFetch, Stage::CacheProbe]
        );
        assert!(events.iter().all(|e| e.arg == 3));
        assert!(events.iter().all(|e| e.end_ns > e.start_ns));
        cache.spans().uninstall();
        drop(cache.acquire(4).unwrap());
        assert_eq!(rec.len(), 3, "uninstalled sink records nothing");
    }

    #[test]
    fn miss_then_hit() {
        let (_data, gpu, cache) = rig(8);
        {
            let g = cache.acquire(5).unwrap();
            let mut buf = [0u8; 512];
            gpu.read_bytes(g.addr(), &mut buf);
            assert!(buf.iter().all(|&b| b == 5));
        }
        // Second access hits.
        let _g = cache.acquire(5).unwrap();
        let (state, refs, dirty) = cache.line_debug(5);
        assert_eq!(state, STATE_VALID as u8);
        assert_eq!(refs, 1);
        assert!(!dirty);
    }

    #[test]
    fn guard_drop_unpins() {
        let (_d, _g, cache) = rig(4);
        let g = cache.acquire(1).unwrap();
        assert_eq!(cache.line_debug(1).1, 1);
        drop(g);
        assert_eq!(cache.line_debug(1).1, 0);
    }

    #[test]
    fn eviction_cycles_through_working_set_larger_than_cache() {
        let (_d, gpu, cache) = rig(4);
        // Touch 16 distinct lines through a 4-slot cache.
        for line in 0..16u64 {
            let g = cache.acquire(line).unwrap();
            let mut buf = [0u8; 512];
            gpu.read_bytes(g.addr(), &mut buf);
            assert!(buf.iter().all(|&b| b == line as u8), "line {line}");
        }
    }

    #[test]
    fn dirty_lines_are_written_back_on_eviction() {
        let (data, gpu, cache) = rig(2);
        {
            let g = cache.acquire(3).unwrap();
            gpu.write_bytes(g.addr(), &[0xAAu8; 512]);
            g.mark_dirty();
        }
        // Force eviction of line 3 by touching more lines than slots.
        for line in 10..14u64 {
            let _ = cache.acquire(line).unwrap();
        }
        let mut out = [0u8; 512];
        data.read_bytes(3 * 512, &mut out);
        assert!(
            out.iter().all(|&b| b == 0xAA),
            "dirty line must reach the backing store"
        );
    }

    #[test]
    fn flush_writes_dirty_lines_without_eviction() {
        let (data, gpu, cache) = rig(8);
        let g = cache.acquire(7).unwrap();
        gpu.write_bytes(g.addr(), &[0x55u8; 512]);
        g.mark_dirty();
        drop(g);
        let flushed = cache.flush().unwrap();
        assert_eq!(flushed, 1);
        let mut out = [0u8; 512];
        data.read_bytes(7 * 512, &mut out);
        assert!(out.iter().all(|&b| b == 0x55));
        // Second flush has nothing to do.
        assert_eq!(cache.flush().unwrap(), 0);
    }

    #[test]
    fn pinned_lines_are_never_evicted() {
        let (_d, gpu, cache) = rig(2);
        let g0 = cache.acquire(0).unwrap();
        // Stream many other lines through the remaining slot.
        for line in 1..20u64 {
            let _ = cache.acquire(line).unwrap();
        }
        // Line 0 must still be resident and readable.
        let mut buf = [0u8; 512];
        gpu.read_bytes(g0.addr(), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        let (state, refs, _) = cache.line_debug(0);
        assert_eq!(state, STATE_VALID as u8);
        assert_eq!(refs, 1);
    }

    #[test]
    fn clock_skips_pinned_lines_under_pinning_pressure() {
        // All but one slot pinned: the clock hand must pass over every pinned
        // line (however many sweeps that takes) and keep serving an arbitrary
        // stream of other lines through the single free slot — terminating,
        // never evicting a pinned line.
        let (_d, gpu, cache) = rig(8);
        let pinned: Vec<LineGuard<'_>> = (0..7).map(|l| cache.acquire(l).unwrap()).collect();
        for line in 7..64u64 {
            let g = cache.acquire(line).unwrap();
            let mut buf = [0u8; 512];
            gpu.read_bytes(g.addr(), &mut buf);
            assert!(buf.iter().all(|&b| b == line as u8), "line {line}");
        }
        // Every pinned line is still resident with its pin intact.
        for g in &pinned {
            let (state, refs, _) = cache.line_debug(g.line());
            assert_eq!(state, STATE_VALID as u8, "line {} evicted", g.line());
            assert_eq!(refs, 1);
            let mut buf = [0u8; 512];
            gpu.read_bytes(g.addr(), &mut buf);
            assert!(buf.iter().all(|&b| b == g.line() as u8));
        }
    }

    /// A backing store that checks, at fetch time, that the previously
    /// evicted dirty line's data has already reached the media — i.e. the
    /// write-back happens *before* the slot is handed to the new line.
    struct WritebackOrderProbe {
        inner: MemoryBacking,
        data: Arc<ByteRegion>,
        /// `(dirty_line, expected_byte)` to verify on the next fetch.
        expectation: std::sync::Mutex<Option<(u64, u8)>>,
        verified: std::sync::atomic::AtomicBool,
    }

    impl CacheBacking for WritebackOrderProbe {
        fn line_bytes(&self) -> u64 {
            self.inner.line_bytes()
        }

        fn num_lines(&self) -> u64 {
            self.inner.num_lines()
        }

        fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
            if let Some((dirty_line, expected)) = self.expectation.lock().expect("poisoned").take()
            {
                let mut media = [0u8; 512];
                self.data.read_bytes(dirty_line * 512, &mut media);
                assert!(
                    media.iter().all(|&b| b == expected),
                    "slot reused for line {line} before line {dirty_line} reached the media"
                );
                self.verified
                    .store(true, std::sync::atomic::Ordering::Release);
            }
            self.inner.fetch_line(line, dst)
        }

        fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
            self.inner.writeback_line(line, src)
        }
    }

    #[test]
    fn dirty_victim_reaches_backing_store_before_slot_reuse() {
        let data = Arc::new(ByteRegion::new(64 * 512));
        let gpu = Arc::new(ByteRegion::new(1 << 20));
        let probe = Arc::new(WritebackOrderProbe {
            inner: MemoryBacking::new(data.clone(), 0, gpu.clone(), 512, 64),
            data: data.clone(),
            expectation: std::sync::Mutex::new(None),
            verified: std::sync::atomic::AtomicBool::new(false),
        });
        let metrics = Arc::new(BamMetrics::new());
        let cache = BamCache::new(probe.clone(), metrics, 0, 1);
        // Dirty line 3 in the single slot...
        {
            let g = cache.acquire(3).unwrap();
            gpu.write_bytes(g.addr(), &[0xD7u8; 512]);
            g.mark_dirty();
        }
        // ...then demand a different line. The probe asserts, from inside the
        // replacement fetch, that line 3's bytes are already on the media.
        *probe.expectation.lock().unwrap() = Some((3, 0xD7));
        let g = cache.acquire(9).unwrap();
        assert!(
            probe.verified.load(std::sync::atomic::Ordering::Acquire),
            "fetch happened without exercising the ordering probe"
        );
        drop(g);
        let mut media = [0u8; 512];
        data.read_bytes(3 * 512, &mut media);
        assert!(media.iter().all(|&b| b == 0xD7));
    }

    #[test]
    fn thrashing_is_reported_not_hung() {
        let (_d, _g, cache) = rig(2);
        let _g0 = cache.acquire(0).unwrap();
        let _g1 = cache.acquire(1).unwrap();
        // Both slots pinned; a third distinct line cannot be inserted.
        match cache.acquire(2) {
            Err(BamError::CacheThrashing) => {}
            other => panic!("expected CacheThrashing, got {other:?}"),
        }
        // After the error the line is not stuck busy.
        let (state, _, _) = cache.line_debug(2);
        assert_eq!(state, STATE_INVALID as u8);
    }

    #[test]
    fn out_of_range_line_rejected() {
        let (_d, _g, cache) = rig(4);
        assert!(matches!(
            cache.acquire(64),
            Err(BamError::IndexOutOfBounds { .. })
        ));
    }

    /// A backing store whose write-backs fail while `broken` is set.
    struct FlakyWriteback {
        inner: MemoryBacking,
        broken: std::sync::atomic::AtomicBool,
    }

    impl CacheBacking for FlakyWriteback {
        fn line_bytes(&self) -> u64 {
            self.inner.line_bytes()
        }

        fn num_lines(&self) -> u64 {
            self.inner.num_lines()
        }

        fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
            self.inner.fetch_line(line, dst)
        }

        fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
            if self.broken.load(std::sync::atomic::Ordering::Acquire) {
                return Err(BamError::Crashed);
            }
            self.inner.writeback_line(line, src)
        }
    }

    fn flaky_rig(num_slots: u64) -> (Arc<ByteRegion>, Arc<FlakyWriteback>, BamCache) {
        let data = Arc::new(ByteRegion::new(64 * 512));
        let gpu = Arc::new(ByteRegion::new(1 << 20));
        let backing = Arc::new(FlakyWriteback {
            inner: MemoryBacking::new(data, 0, gpu.clone(), 512, 64),
            broken: std::sync::atomic::AtomicBool::new(false),
        });
        let metrics = Arc::new(BamMetrics::new());
        let cache = BamCache::new(backing.clone(), metrics, 0, num_slots);
        (gpu, backing, cache)
    }

    #[test]
    fn failed_eviction_writeback_restores_the_victim() {
        let (gpu, backing, cache) = flaky_rig(1);
        {
            let g = cache.acquire(3).unwrap();
            gpu.write_bytes(g.addr(), &[0xBBu8; 512]);
            g.mark_dirty();
        }
        backing
            .broken
            .store(true, std::sync::atomic::Ordering::Release);
        // Evicting line 3 fails at the media; neither line may be left busy,
        // and line 3 must keep its dirty data.
        assert_eq!(cache.acquire(9).unwrap_err(), BamError::Crashed);
        let (state, refs, dirty) = cache.line_debug(3);
        assert_eq!(state, STATE_VALID as u8, "victim wedged");
        assert_eq!(refs, 0);
        assert!(dirty, "dirty bit lost on failed eviction");
        assert_eq!(cache.line_debug(9).0, STATE_INVALID as u8);
        // Once the device heals, both the eviction and the data survive.
        backing
            .broken
            .store(false, std::sync::atomic::Ordering::Release);
        let g = cache.acquire(9).unwrap();
        drop(g);
        let mut media = [0u8; 512];
        backing.inner.fetch_line(3, 4096).unwrap();
        gpu.read_bytes(4096, &mut media);
        assert!(media.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn failed_flush_keeps_the_dirty_bit() {
        let (gpu, backing, cache) = flaky_rig(8);
        {
            let g = cache.acquire(5).unwrap();
            gpu.write_bytes(g.addr(), &[0xCCu8; 512]);
            g.mark_dirty();
        }
        backing
            .broken
            .store(true, std::sync::atomic::Ordering::Release);
        assert_eq!(cache.flush().unwrap_err(), BamError::Crashed);
        assert!(cache.line_debug(5).2, "dirty bit lost on failed flush");
        backing
            .broken
            .store(false, std::sync::atomic::Ordering::Release);
        assert_eq!(cache.flush().unwrap(), 1);
        let mut media = [0u8; 512];
        backing.inner.fetch_line(5, 4096).unwrap();
        gpu.read_bytes(4096, &mut media);
        assert!(media.iter().all(|&b| b == 0xCC));
    }

    #[test]
    fn journalled_writebacks_emit_intent_then_commit() {
        use crate::journal::{decode_records, JournalRecord};
        let data = Arc::new(ByteRegion::new(64 * 512));
        let gpu = Arc::new(ByteRegion::new(1 << 20));
        let backing = Arc::new(MemoryBacking::new(data, 0, gpu.clone(), 512, 64));
        let journal = Arc::new(CacheJournal::new());
        let metrics = Arc::new(BamMetrics::new());
        let cache = BamCache::new(backing, metrics.clone(), 0, 8).with_journal(journal.clone());

        let g = cache.acquire(2).unwrap();
        let addr = g.addr();
        cache
            .journalled_write(2, 0, &[0x11; 512], || gpu.write_bytes(addr, &[0x11; 512]))
            .unwrap();
        drop(g);
        cache.flush().unwrap();

        let decoded = decode_records(&journal.snapshot()).unwrap();
        assert!(matches!(
            decoded.records.as_slice(),
            [
                JournalRecord::Write { line: 2, .. },
                JournalRecord::WritebackIntent {
                    line: 2,
                    covered_lsn: 1,
                    ..
                },
                JournalRecord::WritebackCommit {
                    line: 2,
                    intent_lsn: 2,
                    ..
                },
            ]
        ));
        let s = metrics.snapshot();
        assert_eq!(s.journal_appends, 3);
        assert_eq!(s.journal_bytes, journal.appended_bytes());
    }

    /// Regression test for the lost-acked-write race: a flush that runs
    /// after a write's journal append but before its payload lands in the
    /// line image must not seal a commit covering that write. The flush is
    /// driven deterministically from inside the write's `apply` closure —
    /// exactly the window a concurrent thread would hit.
    #[test]
    fn flush_racing_a_write_never_covers_unapplied_bytes() {
        use crate::journal::{decode_records, recover, JournalRecord};
        let data = Arc::new(ByteRegion::new(64 * 512));
        let gpu = Arc::new(ByteRegion::new(1 << 20));
        let backing = Arc::new(MemoryBacking::new(data.clone(), 0, gpu.clone(), 512, 64));
        let journal = Arc::new(CacheJournal::new());
        let metrics = Arc::new(BamMetrics::new());
        let cache = BamCache::new(backing.clone(), metrics, 0, 8).with_journal(journal.clone());

        let g = cache.acquire(2).unwrap();
        let addr = g.addr();
        cache
            .journalled_write(2, 0, &[0x11; 512], || gpu.write_bytes(addr, &[0x11; 512]))
            .unwrap();
        // Second write: its redo record (LSN 2) is appended, then — before
        // the payload reaches the image — a flush writes the line back.
        cache
            .journalled_write(2, 0, &[0x22; 16], || {
                cache.flush().unwrap();
                gpu.write_bytes(addr, &[0x22; 16]);
            })
            .unwrap();

        // The intent sealed mid-write may cover only the applied LSN 1.
        let decoded = decode_records(&journal.snapshot()).unwrap();
        let covered: Vec<u64> = decoded
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::WritebackIntent { covered_lsn, .. } => Some(*covered_lsn),
                _ => None,
            })
            .collect();
        assert_eq!(
            covered,
            vec![1],
            "intent must not claim the in-flight write"
        );

        // Crash now (volatile image lost): recovery must redo write 2.
        let report = recover(&journal.snapshot(), backing.as_ref(), &gpu, 16 * 512).unwrap();
        assert_eq!(report.replayed_writes, 1);
        let mut media = [0u8; 16];
        data.read_bytes(2 * 512, &mut media);
        assert_eq!(
            media, [0x22; 16],
            "acknowledged write lost across the crash"
        );
    }

    #[test]
    fn reset_after_crash_cools_the_directory() {
        let (_d, _g, cache) = rig(4);
        for line in 0..4u64 {
            drop(cache.acquire(line).unwrap());
        }
        cache.reset_after_crash();
        for line in 0..64 {
            let (state, refs, dirty) = cache.line_debug(line);
            assert_eq!(state, STATE_INVALID as u8);
            assert_eq!(refs, 0);
            assert!(!dirty);
        }
        // The cache serves traffic again from cold.
        assert!(cache.acquire(3).is_ok());
    }

    #[test]
    fn concurrent_mixed_access_pattern_is_consistent() {
        let (_d, gpu, cache) = rig(8);
        let cache = &cache;
        let gpu = &gpu;
        std::thread::scope(|s| {
            for t in 0..8u64 {
                s.spawn(move || {
                    for i in 0..200u64 {
                        let line = (t * 7 + i * 13) % 64;
                        let g = cache.acquire(line).unwrap();
                        let mut buf = [0u8; 512];
                        gpu.read_bytes(g.addr(), &mut buf);
                        assert!(
                            buf.iter().all(|&b| b == line as u8),
                            "thread {t} line {line} saw corrupt data"
                        );
                    }
                });
            }
        });
        // All references released.
        for line in 0..64 {
            assert_eq!(cache.line_debug(line).1, 0, "line {line} still pinned");
        }
    }
}
