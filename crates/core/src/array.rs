//! The `bam::array<T>` programming abstraction (paper §3.5).
//!
//! `BamArray<T>` gives GPU kernels an array interface over data that lives on
//! storage: element reads consult the software cache, coalesce accesses
//! across the lanes of a warp, and issue storage I/O only on misses; element
//! writes go through the write-back cache. The warp-level entry point
//! ([`BamArray::gather_warp`]) mirrors the overloaded subscript operator of
//! the CUDA implementation, which performs its coalescing at warp scope.

use std::sync::Arc;

use bam_gpu_sim::exec::WarpCtx;
use bam_gpu_sim::warp::{groups, match_any, WARP_SIZE};
use bam_mem::Pod;

use crate::error::BamError;
use crate::system::SystemInner;

/// A storage-backed array of `T`, accessed on demand by GPU threads.
///
/// Created with [`crate::BamSystem::create_array`]; cloning is cheap and
/// clones refer to the same storage.
#[derive(Clone)]
pub struct BamArray<T: Pod> {
    inner: Arc<SystemInner>,
    /// Byte offset of element 0 within the logical storage namespace.
    base: u64,
    len: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> std::fmt::Debug for BamArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BamArray")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("elem_bytes", &T::SIZE)
            .finish()
    }
}

impl<T: Pod> BamArray<T> {
    pub(crate) fn new(inner: Arc<SystemInner>, base: u64, len: u64) -> Self {
        Self {
            inner,
            base,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte offset of element 0 within the storage namespace (diagnostics).
    pub fn base_offset(&self) -> u64 {
        self.base
    }

    fn check(&self, idx: u64) -> Result<(), BamError> {
        if idx >= self.len {
            return Err(BamError::IndexOutOfBounds {
                index: idx,
                len: self.len,
            });
        }
        Ok(())
    }

    #[inline]
    fn line_of(&self, idx: u64) -> (u64, u64) {
        let byte = self.base + idx * T::SIZE as u64;
        (byte / self.inner.line_bytes, byte % self.inner.line_bytes)
    }

    /// Preloads the array contents onto the SSDs (host-side initialization,
    /// the equivalent of writing the dataset file before running).
    ///
    /// # Errors
    ///
    /// Propagates media errors.
    pub fn preload(&self, values: &[T]) -> Result<(), BamError> {
        assert!(values.len() as u64 <= self.len, "preload larger than array");
        let mut bytes = vec![0u8; values.len() * T::SIZE];
        for (i, v) in values.iter().enumerate() {
            v.to_bytes(&mut bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
        self.inner.preload_bytes(self.base, &bytes)
    }

    /// Reads element `idx` from a single GPU thread (no warp coalescing).
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn read(&self, idx: u64) -> Result<T, BamError> {
        self.check(idx)?;
        self.inner.metrics.record_requested_bytes(T::SIZE as u64);
        let (line, offset) = self.line_of(idx);
        self.inner
            .read_element(line, offset, T::SIZE)
            .map(|buf| T::from_bytes(&buf))
    }

    /// Writes element `idx` from a single GPU thread. The data goes through
    /// the write-back cache (or straight to storage in uncached mode).
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn write(&self, idx: u64, value: T) -> Result<(), BamError> {
        self.check(idx)?;
        self.inner.metrics.record_requested_bytes(T::SIZE as u64);
        let (line, offset) = self.line_of(idx);
        let mut buf = vec![0u8; T::SIZE];
        value.to_bytes(&mut buf);
        self.inner.write_element(line, offset, &buf)
    }

    /// Warp-coalesced gather: every active lane with `Some(index)` reads that
    /// element; lanes accessing the same cache line share a single probe and
    /// a single storage request, led by the lowest lane of each group
    /// (§3.4's `__match_any_sync` coalescer).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered by any group leader.
    pub fn gather_warp(
        &self,
        warp: &WarpCtx,
        indices: &[Option<u64>; WARP_SIZE],
    ) -> Result<[Option<T>; WARP_SIZE], BamError> {
        let mut out: [Option<T>; WARP_SIZE] = [None; WARP_SIZE];
        // Validate up front so errors do not depend on group iteration order.
        for idx in indices.iter().flatten() {
            self.check(*idx)?;
        }
        if !self.inner.coalescing {
            for lane in 0..WARP_SIZE {
                if warp.is_active(lane) {
                    if let Some(idx) = indices[lane] {
                        out[lane] = Some(self.read(idx)?);
                    }
                }
            }
            return Ok(out);
        }

        // Build the per-lane cache-line keys for match_any; lanes with no
        // access are excluded from the participation mask.
        let mut keys = [u64::MAX; WARP_SIZE];
        let mut participate: u32 = 0;
        for lane in 0..WARP_SIZE {
            if warp.is_active(lane) {
                if let Some(idx) = indices[lane] {
                    keys[lane] = self.line_of(idx).0;
                    participate |= 1 << lane;
                }
            }
        }
        if participate == 0 {
            return Ok(out);
        }
        let masks = match_any(&keys, participate);
        for (leader, mask) in groups(&masks, participate) {
            let line = keys[leader];
            let lanes_in_group = mask.count_ones() as u64;
            self.inner
                .metrics
                .record_requested_bytes(T::SIZE as u64 * lanes_in_group);
            if lanes_in_group > 1 {
                self.inner.metrics.record_coalesced(lanes_in_group - 1);
            }
            // The leader performs the single probe on behalf of the group and
            // the line stays pinned while every member lane copies its
            // element out (broadcast via shared memory in the prototype).
            self.inner.with_line(line, |read_at| {
                for lane in 0..WARP_SIZE {
                    if mask & (1 << lane) != 0 {
                        let idx = indices[lane].expect("participating lane has an index");
                        let (_, offset) = self.line_of(idx);
                        let buf = read_at(offset, T::SIZE);
                        out[lane] = Some(T::from_bytes(&buf));
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// Reads `count` consecutive elements starting at `start`, reusing each
    /// cache-line reference for every element it covers (the "cache line
    /// reference reuse" optimization of §3.5 that Figure 8's *Optimized*
    /// configuration exploits for neighbour lists).
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn read_run(&self, start: u64, count: u64) -> Result<Vec<T>, BamError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check(start)?;
        self.check(start + count - 1)?;
        self.inner
            .metrics
            .record_requested_bytes(T::SIZE as u64 * count);
        let mut result = Vec::with_capacity(count as usize);
        let mut idx = start;
        while idx < start + count {
            let (line, offset) = self.line_of(idx);
            // Elements remaining in this line.
            let elems_in_line =
                ((self.inner.line_bytes - offset) / T::SIZE as u64).min(start + count - idx);
            self.inner.with_line(line, |read_at| {
                for e in 0..elems_in_line {
                    let buf = read_at(offset + e * T::SIZE as u64, T::SIZE);
                    result.push(T::from_bytes(&buf));
                }
            })?;
            if elems_in_line > 1 {
                self.inner.metrics.record_reuse();
            }
            idx += elems_in_line;
        }
        Ok(result)
    }

    /// Prefetches the cache lines covering `count` elements starting at
    /// `start`, without copying any element out.
    ///
    /// This is one of the "higher-level abstractions" §3.5 anticipates being
    /// built over `bam::array`: a kernel that knows its upcoming access
    /// window can warm the cache early and overlap the storage latency with
    /// unrelated compute. Returns the number of lines that actually missed
    /// (and were therefore fetched from storage).
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure. In
    /// uncached mode prefetching is a no-op and returns 0.
    pub fn prefetch(&self, start: u64, count: u64) -> Result<u64, BamError> {
        if count == 0 || self.inner.cache.is_none() {
            return Ok(0);
        }
        self.check(start)?;
        self.check(start + count - 1)?;
        let misses_before = self.inner.metrics.snapshot().cache_misses;
        let first_line = self.line_of(start).0;
        let last_line = self.line_of(start + count - 1).0;
        for line in first_line..=last_line {
            // Acquire and immediately release: the line lands in a slot and
            // stays there until evicted, exactly like a touched-but-unpinned
            // line.
            self.inner.with_line(line, |_read_at| ())?;
        }
        Ok(self.inner.metrics.snapshot().cache_misses - misses_before)
    }

    /// Writes `values` to consecutive elements starting at `start`, reusing
    /// line references (used by the vectorAdd output array).
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn write_run(&self, start: u64, values: &[T]) -> Result<(), BamError> {
        if values.is_empty() {
            return Ok(());
        }
        let count = values.len() as u64;
        self.check(start)?;
        self.check(start + count - 1)?;
        self.inner
            .metrics
            .record_requested_bytes(T::SIZE as u64 * count);
        let mut idx = start;
        let mut consumed = 0usize;
        while idx < start + count {
            let (line, offset) = self.line_of(idx);
            let elems_in_line =
                ((self.inner.line_bytes - offset) / T::SIZE as u64).min(start + count - idx);
            let mut bytes = vec![0u8; elems_in_line as usize * T::SIZE];
            for e in 0..elems_in_line as usize {
                values[consumed + e].to_bytes(&mut bytes[e * T::SIZE..(e + 1) * T::SIZE]);
            }
            self.inner.write_line_range(line, offset, &bytes)?;
            idx += elems_in_line;
            consumed += elems_in_line as usize;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BamConfig;
    use crate::system::BamSystem;
    use bam_gpu_sim::{GpuExecutor, GpuSpec};

    fn system() -> BamSystem {
        BamSystem::new(BamConfig::test_scale()).unwrap()
    }

    #[test]
    fn read_write_roundtrip_single_thread() {
        let sys = system();
        let arr = sys.create_array::<u64>(1000).unwrap();
        arr.preload(&(0..1000u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(arr.read(0).unwrap(), 0);
        assert_eq!(arr.read(999).unwrap(), 999);
        arr.write(500, 123_456).unwrap();
        assert_eq!(arr.read(500).unwrap(), 123_456);
        assert!(arr.read(1000).is_err());
    }

    #[test]
    fn preload_then_gather_via_warps() {
        let sys = system();
        let arr = sys.create_array::<u32>(4096).unwrap();
        let data: Vec<u32> = (0..4096u32).map(|i| i * 3).collect();
        arr.preload(&data).unwrap();

        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
        let arr_ref = &arr;
        let errors = std::sync::atomic::AtomicUsize::new(0);
        exec.launch(4096, |warp| {
            let mut indices = [None; WARP_SIZE];
            for (lane, tid) in warp.lanes() {
                indices[lane] = Some(tid as u64);
            }
            match arr_ref.gather_warp(warp, &indices) {
                Ok(vals) => {
                    for (lane, tid) in warp.lanes() {
                        assert_eq!(vals[lane], Some(tid as u32 * 3));
                    }
                }
                Err(_) => {
                    errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        });
        assert_eq!(errors.load(std::sync::atomic::Ordering::Relaxed), 0);
        let m = sys.metrics();
        assert!(m.cache_hits + m.cache_misses > 0);
        assert!(
            m.coalesced_accesses > 0,
            "consecutive tids in a warp share cache lines"
        );
    }

    #[test]
    fn read_run_reuses_lines() {
        let sys = system();
        let arr = sys.create_array::<u64>(512).unwrap();
        arr.preload(&(0..512u64).map(|i| i * 7).collect::<Vec<_>>())
            .unwrap();
        let vals = arr.read_run(10, 200).unwrap();
        assert_eq!(vals.len(), 200);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, (10 + i as u64) * 7);
        }
        let m = sys.metrics();
        // 200 contiguous u64 span ~25 512-byte lines: far fewer probes than
        // elements.
        assert!(m.probe_attempts < 60, "probes {}", m.probe_attempts);
        assert!(m.reused_references > 0);
    }

    #[test]
    fn write_run_then_read_back() {
        let sys = system();
        let arr = sys.create_array::<f64>(300).unwrap();
        arr.preload(&vec![0.0f64; 300]).unwrap();
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 3.0).collect();
        arr.write_run(50, &values).unwrap();
        let back = arr.read_run(50, 100).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn prefetch_warms_the_cache() {
        let sys = system();
        let arr = sys.create_array::<u64>(2048).unwrap();
        arr.preload(&(0..2048u64).collect::<Vec<_>>()).unwrap();
        // Prefetch a window; subsequent reads of that window are all hits.
        let fetched = arr.prefetch(0, 512).unwrap();
        assert!(fetched > 0);
        let before = sys.metrics();
        for i in 0..512u64 {
            assert_eq!(arr.read(i).unwrap(), i);
        }
        let after = sys.metrics();
        assert_eq!(
            after.cache_misses, before.cache_misses,
            "prefetched window must hit"
        );
        // Prefetching again fetches nothing new.
        assert_eq!(arr.prefetch(0, 512).unwrap(), 0);
        // Out-of-bounds prefetch is rejected.
        assert!(arr.prefetch(2000, 100).is_err());
    }

    #[test]
    fn prefetch_is_a_noop_without_a_cache() {
        let mut cfg = BamConfig::test_scale();
        cfg.use_cache = false;
        let sys = BamSystem::new(cfg).unwrap();
        let arr = sys.create_array::<u64>(256).unwrap();
        arr.preload(&(0..256u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(arr.prefetch(0, 256).unwrap(), 0);
        assert_eq!(sys.metrics().read_requests, 0);
    }

    #[test]
    fn uncached_mode_still_returns_correct_data() {
        let mut cfg = BamConfig::test_scale();
        cfg.use_cache = false;
        let sys = BamSystem::new(cfg).unwrap();
        let arr = sys.create_array::<u32>(256).unwrap();
        arr.preload(&(0..256u32).collect::<Vec<_>>()).unwrap();
        for idx in [0u64, 17, 128, 255] {
            assert_eq!(arr.read(idx).unwrap(), idx as u32);
        }
        arr.write(10, 999).unwrap();
        assert_eq!(arr.read(10).unwrap(), 999);
        // Every access became a storage request (no cache to absorb them).
        let m = sys.metrics();
        assert!(m.read_requests >= 5);
        assert_eq!(m.cache_hits, 0);
    }

    #[test]
    fn coalescing_disabled_still_correct() {
        let mut cfg = BamConfig::test_scale();
        cfg.warp_coalescing = false;
        let sys = BamSystem::new(cfg).unwrap();
        let arr = sys.create_array::<u32>(1024).unwrap();
        arr.preload(&(0..1024u32).collect::<Vec<_>>()).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        let arr_ref = &arr;
        exec.launch(1024, |warp| {
            let mut indices = [None; WARP_SIZE];
            for (lane, tid) in warp.lanes() {
                indices[lane] = Some(tid as u64);
            }
            let vals = arr_ref.gather_warp(warp, &indices).unwrap();
            for (lane, tid) in warp.lanes() {
                assert_eq!(vals[lane], Some(tid as u32));
            }
        });
        assert_eq!(sys.metrics().coalesced_accesses, 0);
    }
}
