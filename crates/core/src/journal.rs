//! The cache's write-ahead metadata journal and its recovery replay.
//!
//! The BaM cache is write-back: acknowledged writes live in volatile GPU
//! memory until eviction or flush writes the line to media. A crash in that
//! window would silently lose acknowledged data, so every durable transition
//! is journalled *before* it is acknowledged or applied:
//!
//! * [`JournalRecord::Write`] — a redo record carrying the written payload,
//!   appended before the write is acknowledged to the application. The
//!   payload must be journalled (not just the intent) because the only other
//!   copy is in volatile GPU memory.
//! * [`JournalRecord::WritebackIntent`] — appended before a dirty line is
//!   written to media, recording the newest write LSN the line image covers.
//! * [`JournalRecord::WritebackCommit`] — appended after the media write
//!   succeeded, sealing the intent.
//!
//! ## Record format
//!
//! Every record is length-prefixed with an *authenticated header*: a 40-byte
//! header whose final 8 bytes checksum the first 32, followed by the payload
//! and a whole-record checksum (FNV-1a 64). Authenticating the header makes
//! the length field trustworthy, which cleanly separates the two failure
//! modes decoding must distinguish:
//!
//! * **torn tail** — the journal ends mid-record (a crash tore the last
//!   append). Decoding succeeds and reports `torn_tail = true`; the complete
//!   prefix is the journal's contents.
//! * **corruption** — a fully-present record fails its magic, header
//!   checksum, record checksum, or LSN sequencing. Decoding fails with
//!   [`BamError::JournalCorrupt`] naming the expected LSN.
//!
//! ```text
//!  0      4     5    6        8      16     24     32          40
//!  +------+-----+----+--------+------+------+------+-----------+---------+--------+
//!  | magic|kind |pad |plen u16| lsn  | line | aux  | hdr cksum | payload | cksum  |
//!  +------+-----+----+--------+------+------+------+-----------+---------+--------+
//! ```
//!
//! LSNs are assigned densely from 1; `aux` holds the write offset, the
//! intent's covered write LSN, or the commit's intent LSN.
//!
//! ## Recovery
//!
//! [`recover`] replays a journal against the surviving backing store. For
//! each line it computes the newest write LSN proven durable by a committed
//! write-back (the intent's `covered_lsn`), then redoes every newer write
//! record — fetch the line, apply the payloads in LSN order, write the line
//! back. Redo is idempotent, so an *uncommitted* intent whose media write did
//! land is simply overwritten with the same bytes; a *committed* line with no
//! newer writes is skipped entirely, which is exactly the "no completed
//! write-back is double-applied" invariant the crash sweeps assert.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use bam_mem::{ByteRegion, DevAddr};
use bam_obs::{SpanEvent, SpanRecorder, Stage};

use crate::backing::CacheBacking;
use crate::crash::{CrashPoint, StepOutcome};
use crate::error::BamError;

/// Record-framing magic ("JRNL" little-endian).
const RECORD_MAGIC: u32 = 0x4C4E_524A;

/// Fixed header length (magic, kind, pad, payload length, LSN, line, aux,
/// header checksum).
pub const HEADER_BYTES: usize = 40;

/// Bytes a record occupies beyond its payload (header + record checksum).
pub const RECORD_OVERHEAD_BYTES: usize = HEADER_BYTES + 8;

const KIND_WRITE: u8 = 1;
const KIND_INTENT: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// FNV-1a 64-bit over `bytes` (no external dependency needed, and one byte
/// flip anywhere always changes the digest).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A redo record for an acknowledged application write.
    Write {
        /// Sequence number.
        lsn: u64,
        /// Backing-store line written.
        line: u64,
        /// Byte offset of the write within the line.
        offset: u64,
        /// The written bytes.
        payload: Vec<u8>,
    },
    /// A dirty-line write-back is about to hit the media.
    WritebackIntent {
        /// Sequence number.
        lsn: u64,
        /// Line being written back.
        line: u64,
        /// Newest write-record LSN the line image covers (0 = none).
        covered_lsn: u64,
    },
    /// The write-back of `intent_lsn` reached the media.
    WritebackCommit {
        /// Sequence number.
        lsn: u64,
        /// Line that was written back.
        line: u64,
        /// LSN of the sealed [`JournalRecord::WritebackIntent`].
        intent_lsn: u64,
    },
}

impl JournalRecord {
    /// The record's sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            JournalRecord::Write { lsn, .. }
            | JournalRecord::WritebackIntent { lsn, .. }
            | JournalRecord::WritebackCommit { lsn, .. } => *lsn,
        }
    }
}

fn encode_record(kind: u8, lsn: u64, line: u64, aux: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut rec = Vec::with_capacity(RECORD_OVERHEAD_BYTES + payload.len());
    rec.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    rec.push(kind);
    rec.push(0); // pad
    rec.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    rec.extend_from_slice(&lsn.to_le_bytes());
    rec.extend_from_slice(&line.to_le_bytes());
    rec.extend_from_slice(&aux.to_le_bytes());
    let hdr_cksum = fnv1a64(&rec[..32]);
    rec.extend_from_slice(&hdr_cksum.to_le_bytes());
    rec.extend_from_slice(payload);
    let cksum = fnv1a64(&rec);
    rec.extend_from_slice(&cksum.to_le_bytes());
    rec
}

fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

/// A decoded journal: the complete record prefix plus whether the byte
/// stream ended mid-record (a torn final append).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedJournal {
    /// Every fully-decoded record, in LSN order (dense from 1).
    pub records: Vec<JournalRecord>,
    /// Whether trailing bytes formed only part of a record.
    pub torn_tail: bool,
}

/// Decodes a journal byte stream.
///
/// A truncated final record is **not** an error — crashes tear appends — and
/// is reported via [`DecodedJournal::torn_tail`].
///
/// # Errors
///
/// Returns [`BamError::JournalCorrupt`] naming the expected LSN when a
/// fully-present record fails validation (bad magic, kind, header checksum,
/// record checksum, or out-of-sequence LSN).
pub fn decode_records(bytes: &[u8]) -> Result<DecodedJournal, BamError> {
    let mut records = Vec::new();
    let mut cursor = 0usize;
    let mut expected_lsn = 1u64;
    while cursor < bytes.len() {
        let corrupt = Err(BamError::JournalCorrupt { lsn: expected_lsn });
        let rest = &bytes[cursor..];
        if rest.len() < HEADER_BYTES {
            return Ok(DecodedJournal {
                records,
                torn_tail: true,
            });
        }
        let header = &rest[..HEADER_BYTES];
        if le_u64(&header[32..40]) != fnv1a64(&header[..32]) {
            return corrupt;
        }
        // The header is authenticated from here on: its length field is
        // trustworthy, so "not enough bytes" can only mean a torn tail.
        if u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) != RECORD_MAGIC {
            return corrupt;
        }
        let kind = header[4];
        let payload_len = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes")) as usize;
        let total = RECORD_OVERHEAD_BYTES + payload_len;
        if rest.len() < total {
            return Ok(DecodedJournal {
                records,
                torn_tail: true,
            });
        }
        if le_u64(&rest[total - 8..total]) != fnv1a64(&rest[..total - 8]) {
            return corrupt;
        }
        let lsn = le_u64(&header[8..16]);
        let line = le_u64(&header[16..24]);
        let aux = le_u64(&header[24..32]);
        if lsn != expected_lsn {
            return corrupt;
        }
        let record = match kind {
            KIND_WRITE => JournalRecord::Write {
                lsn,
                line,
                offset: aux,
                payload: rest[HEADER_BYTES..HEADER_BYTES + payload_len].to_vec(),
            },
            KIND_INTENT if payload_len == 0 => JournalRecord::WritebackIntent {
                lsn,
                line,
                covered_lsn: aux,
            },
            KIND_COMMIT if payload_len == 0 => JournalRecord::WritebackCommit {
                lsn,
                line,
                intent_lsn: aux,
            },
            _ => return corrupt,
        };
        records.push(record);
        expected_lsn += 1;
        cursor += total;
    }
    Ok(DecodedJournal {
        records,
        torn_tail: false,
    })
}

/// The result of one [`CacheJournal`] append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalAppend {
    /// LSN the record was assigned.
    pub lsn: u64,
    /// Encoded bytes the record occupies in the journal.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct JournalInner {
    buf: Vec<u8>,
    next_lsn: u64,
    /// Application payload bytes acknowledged through the journal.
    payload_bytes: u64,
}

/// The write-ahead metadata journal of one [`crate::BamCache`].
///
/// Appends are sequenced under one mutex (the journal is a single durable
/// stream); each append consumes one [`CrashPoint`] durable step when a
/// crash point is installed. The in-memory byte buffer stands in for the
/// durable journal device; [`CacheJournal::snapshot`] is "what survived the
/// crash".
#[derive(Debug, Default)]
pub struct CacheJournal {
    inner: Mutex<JournalInner>,
    crash: Option<Arc<CrashPoint>>,
}

impl CacheJournal {
    /// An empty journal with no crash injection.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(JournalInner {
                next_lsn: 1,
                ..JournalInner::default()
            }),
            crash: None,
        }
    }

    /// An empty journal whose appends consume durable steps on `crash`.
    pub fn with_crash_point(crash: Arc<CrashPoint>) -> Self {
        Self {
            crash: Some(crash),
            ..Self::new()
        }
    }

    fn append(
        &self,
        kind: u8,
        line: u64,
        aux: u64,
        payload: &[u8],
    ) -> Result<JournalAppend, BamError> {
        assert!(
            payload.len() <= u16::MAX as usize,
            "journal payload exceeds the u16 length field"
        );
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let rec = encode_record(kind, lsn, line, aux, payload);
        if let Some(cp) = &self.crash {
            match cp.consume_step() {
                StepOutcome::Run => {}
                StepOutcome::Crash { torn_bytes } => {
                    // The torn prefix is always strictly shorter than the
                    // record: a crashed append never becomes durable.
                    let keep = (torn_bytes as usize).min(rec.len() - 1);
                    let prefix = rec[..keep].to_vec();
                    inner.buf.extend_from_slice(&prefix);
                    return Err(BamError::Crashed);
                }
                StepOutcome::Down => return Err(BamError::Crashed),
            }
        }
        inner.buf.extend_from_slice(&rec);
        inner.next_lsn += 1;
        if kind == KIND_WRITE {
            inner.payload_bytes += payload.len() as u64;
        }
        Ok(JournalAppend {
            lsn,
            bytes: rec.len() as u64,
        })
    }

    /// Journals an application write of `payload` at `offset` within `line`.
    /// Must complete before the write is acknowledged.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::Crashed`] if the crash point tripped (the record
    /// is torn; the write was never acknowledged).
    pub fn append_write(
        &self,
        line: u64,
        offset: u64,
        payload: &[u8],
    ) -> Result<JournalAppend, BamError> {
        self.append(KIND_WRITE, line, offset, payload)
    }

    /// Journals the intent to write `line` back to media. `covered_lsn` is
    /// the newest write-record LSN whose payload is known to have landed in
    /// the line image about to be written (0 = none).
    ///
    /// The caller must derive `covered_lsn` from the *applied* bytes (see
    /// `BamCache`'s per-line applied-LSN horizon), never from journal
    /// metadata: a write is journalled before its payload reaches GPU
    /// memory, and an intent sealed in that window would let recovery skip
    /// replaying an acknowledged write whose bytes the media never saw.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::Crashed`] if the crash point tripped.
    pub fn append_writeback_intent(
        &self,
        line: u64,
        covered_lsn: u64,
    ) -> Result<JournalAppend, BamError> {
        self.append(KIND_INTENT, line, covered_lsn, &[])
    }

    /// Seals intent `intent_lsn`: the media write of `line` succeeded.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::Crashed`] if the crash point tripped.
    pub fn append_writeback_commit(
        &self,
        line: u64,
        intent_lsn: u64,
    ) -> Result<JournalAppend, BamError> {
        self.append(KIND_COMMIT, line, intent_lsn, &[])
    }

    /// The durable journal image (what a crash would leave behind).
    pub fn snapshot(&self) -> Vec<u8> {
        self.inner.lock().buf.clone()
    }

    /// Drops a torn final record left by a crashed append, returning the
    /// bytes discarded. Recovery calls this so post-reboot appends continue a
    /// well-formed stream instead of landing after partial bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::JournalCorrupt`] if the journal body (not just its
    /// tail) fails to decode.
    pub fn truncate_torn_tail(&self) -> Result<u64, BamError> {
        let mut inner = self.inner.lock();
        let decoded = decode_records(&inner.buf)?;
        let complete: usize = decoded
            .records
            .iter()
            .map(|r| {
                RECORD_OVERHEAD_BYTES
                    + match r {
                        JournalRecord::Write { payload, .. } => payload.len(),
                        _ => 0,
                    }
            })
            .sum();
        let dropped = inner.buf.len() - complete;
        inner.buf.truncate(complete);
        Ok(dropped as u64)
    }

    /// Encoded journal bytes appended so far.
    pub fn appended_bytes(&self) -> u64 {
        self.inner.lock().buf.len() as u64
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        self.inner.lock().next_lsn - 1
    }

    /// Whether no record has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Journal bytes per acknowledged application payload byte — the write
    /// amplification the `recovery` bench reports. 1.0 with an empty journal,
    /// infinite when only metadata records were written.
    pub fn write_amplification(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.payload_bytes == 0 {
            if inner.buf.is_empty() {
                return 1.0;
            }
            return f64::INFINITY;
        }
        inner.buf.len() as f64 / inner.payload_bytes as f64
    }
}

/// What [`recover`] did, in full; byte-identical across identical replays,
/// which the determinism sweeps assert directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Complete records decoded from the journal.
    pub records_scanned: u64,
    /// Whether the journal ended in a torn (incomplete) record.
    pub torn_tail: bool,
    /// Write (redo) records seen.
    pub write_records: u64,
    /// Write-back intents seen.
    pub intent_records: u64,
    /// Committed write-backs seen (these lines' covered writes are durable).
    pub committed_writebacks: u64,
    /// Write records replayed onto the backing store.
    pub replayed_writes: u64,
    /// Distinct lines fetched, patched, and written back.
    pub replayed_lines: u64,
    /// Journal length in bytes (including any torn tail).
    pub journal_bytes: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scanned {} records ({} writes, {} intents, {} commits) in {} journal bytes{}; \
             replayed {} writes across {} lines",
            self.records_scanned,
            self.write_records,
            self.intent_records,
            self.committed_writebacks,
            self.journal_bytes,
            if self.torn_tail { " (torn tail)" } else { "" },
            self.replayed_writes,
            self.replayed_lines,
        )
    }
}

/// What recovery owes one line: pass 1 of [`recover`], exposed per line so
/// callers (the `recovery --verbose` bench) can print the replay plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineReplay {
    /// Backing-store line index.
    pub line: u64,
    /// Newest write LSN a committed write-back proves durable (0 = none).
    pub durable_lsn: u64,
    /// Write records newer than the durable horizon (these are replayed).
    pub pending_writes: u64,
    /// Total payload bytes across the pending writes.
    pub pending_bytes: u64,
}

/// Per line: (lsn, offset, payload) of every write record, in LSN order.
type WritesByLine<'a> = BTreeMap<u64, Vec<(u64, u64, &'a [u8])>>;

/// Grouped redo records and per-line durable horizons (pass 1 of recovery).
struct ScanOutcome<'a> {
    writes_by_line: WritesByLine<'a>,
    /// Per line: newest write LSN proven durable by a committed write-back.
    durable_lsn: BTreeMap<u64, u64>,
    write_records: u64,
    intent_records: u64,
    committed_writebacks: u64,
}

/// Groups redo records per line and finds, per line, the newest write LSN a
/// committed write-back proves durable.
fn scan_records<'a>(
    decoded: &'a DecodedJournal,
    num_lines: u64,
    line_bytes: u64,
) -> Result<ScanOutcome<'a>, BamError> {
    let mut out = ScanOutcome {
        writes_by_line: BTreeMap::new(),
        durable_lsn: BTreeMap::new(),
        write_records: 0,
        intent_records: 0,
        committed_writebacks: 0,
    };
    let mut intents: HashMap<u64, (u64, u64)> = HashMap::new(); // lsn -> (line, covered)
    for record in &decoded.records {
        match record {
            JournalRecord::Write {
                lsn,
                line,
                offset,
                payload,
            } => {
                out.write_records += 1;
                let end = offset.checked_add(payload.len() as u64);
                if *line >= num_lines || end.is_none_or(|e| e > line_bytes) {
                    return Err(BamError::JournalCorrupt { lsn: *lsn });
                }
                out.writes_by_line.entry(*line).or_default().push((
                    *lsn,
                    *offset,
                    payload.as_slice(),
                ));
            }
            JournalRecord::WritebackIntent {
                lsn,
                line,
                covered_lsn,
            } => {
                out.intent_records += 1;
                intents.insert(*lsn, (*line, *covered_lsn));
            }
            JournalRecord::WritebackCommit {
                lsn,
                line,
                intent_lsn,
            } => {
                out.committed_writebacks += 1;
                let Some(&(intent_line, covered)) = intents.get(intent_lsn) else {
                    return Err(BamError::JournalCorrupt { lsn: *lsn });
                };
                if intent_line != *line {
                    return Err(BamError::JournalCorrupt { lsn: *lsn });
                }
                let entry = out.durable_lsn.entry(*line).or_insert(0);
                *entry = (*entry).max(covered);
            }
        }
    }
    Ok(out)
}

/// Computes what [`recover`] *would* replay, without touching any backing
/// store: one [`LineReplay`] per line that has at least one write record,
/// in ascending line order. Lines with no pending writes report
/// `pending_writes == 0` (they are skipped by the replay).
///
/// # Errors
///
/// Same journal-validation errors as [`recover`].
pub fn replay_plan(
    journal: &[u8],
    num_lines: u64,
    line_bytes: u64,
) -> Result<Vec<LineReplay>, BamError> {
    let decoded = decode_records(journal)?;
    let scan = scan_records(&decoded, num_lines, line_bytes)?;
    Ok(scan
        .writes_by_line
        .iter()
        .map(|(line, writes)| {
            let durable = scan.durable_lsn.get(line).copied().unwrap_or(0);
            let pending = writes.iter().filter(|(lsn, _, _)| *lsn > durable);
            let (mut n, mut bytes) = (0u64, 0u64);
            for (_, _, payload) in pending {
                n += 1;
                bytes += payload.len() as u64;
            }
            LineReplay {
                line: *line,
                durable_lsn: durable,
                pending_writes: n,
                pending_bytes: bytes,
            }
        })
        .collect())
}

/// Replays `journal` against `backing`, restoring every acknowledged write.
///
/// `scratch` must point at `backing.line_bytes()` bytes of scratch space in
/// `gpu`; lines are replayed one at a time through it, in ascending line
/// order (the replay is deterministic). Lines whose newest write is covered
/// by a committed write-back are not touched at all.
///
/// # Errors
///
/// Returns [`BamError::JournalCorrupt`] for an undecodable or semantically
/// inconsistent journal (a commit without its intent, an out-of-range
/// write), or any backing-store error encountered mid-replay.
pub fn recover(
    journal: &[u8],
    backing: &dyn CacheBacking,
    gpu: &ByteRegion,
    scratch: DevAddr,
) -> Result<RecoveryReport, BamError> {
    recover_observed(journal, backing, gpu, scratch, None)
}

/// [`recover`] with optional span observation: when `recorder` is given, one
/// [`Stage::RecoveryReplay`] event is emitted per replayed line (timestamps
/// are recorder steps; `arg` is the line index; `track` is the number of
/// writes redone into the line).
///
/// # Errors
///
/// Same conditions as [`recover`].
pub fn recover_observed(
    journal: &[u8],
    backing: &dyn CacheBacking,
    gpu: &ByteRegion,
    scratch: DevAddr,
    recorder: Option<&SpanRecorder>,
) -> Result<RecoveryReport, BamError> {
    let decoded = decode_records(journal)?;
    let scan = scan_records(&decoded, backing.num_lines(), backing.line_bytes())?;

    let mut report = RecoveryReport {
        records_scanned: decoded.records.len() as u64,
        torn_tail: decoded.torn_tail,
        journal_bytes: journal.len() as u64,
        write_records: scan.write_records,
        intent_records: scan.intent_records,
        committed_writebacks: scan.committed_writebacks,
        ..RecoveryReport::default()
    };

    // Pass 2: redo every write newer than the line's durable horizon, one
    // line at a time, ascending.
    for (line, writes) in &scan.writes_by_line {
        let durable = scan.durable_lsn.get(line).copied().unwrap_or(0);
        let pending: Vec<_> = writes.iter().filter(|(lsn, _, _)| *lsn > durable).collect();
        if pending.is_empty() {
            continue;
        }
        let start_step = recorder.map(|rec| rec.tick()).unwrap_or(0);
        backing.fetch_line(*line, scratch)?;
        for (_, offset, payload) in &pending {
            gpu.write_bytes(scratch + offset, payload);
        }
        backing.writeback_line(*line, scratch)?;
        if let Some(rec) = recorder {
            rec.record(SpanEvent {
                span: rec.next_span_id(),
                stage: Stage::RecoveryReplay,
                start_ns: start_step,
                end_ns: rec.tick(),
                track: pending.len() as u32,
                arg: *line,
            });
        }
        report.replayed_writes += pending.len() as u64;
        report.replayed_lines += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemoryBacking;

    #[test]
    fn roundtrip_all_record_kinds() {
        let j = CacheJournal::new();
        let a = j.append_write(3, 16, &[0xAB; 32]).unwrap();
        assert_eq!(a.lsn, 1);
        assert_eq!(a.bytes as usize, RECORD_OVERHEAD_BYTES + 32);
        let i = j.append_writeback_intent(3, a.lsn).unwrap();
        assert_eq!(i.lsn, 2);
        let c = j.append_writeback_commit(3, i.lsn).unwrap();
        assert_eq!(c.lsn, 3);
        let decoded = decode_records(&j.snapshot()).unwrap();
        assert!(!decoded.torn_tail);
        assert_eq!(
            decoded.records,
            vec![
                JournalRecord::Write {
                    lsn: 1,
                    line: 3,
                    offset: 16,
                    payload: vec![0xAB; 32]
                },
                JournalRecord::WritebackIntent {
                    lsn: 2,
                    line: 3,
                    covered_lsn: 1
                },
                JournalRecord::WritebackCommit {
                    lsn: 3,
                    line: 3,
                    intent_lsn: 2
                },
            ]
        );
    }

    #[test]
    fn intent_encodes_the_callers_applied_horizon() {
        let j = CacheJournal::new();
        j.append_write(7, 0, &[1]).unwrap();
        let applied = j.append_write(7, 1, &[2]).unwrap();
        j.append_write(9, 0, &[3]).unwrap();
        // The caller's applied horizon is recorded verbatim — the journal
        // itself must not guess coverage from its own metadata.
        let i = j.append_writeback_intent(7, applied.lsn).unwrap();
        let decoded = decode_records(&j.snapshot()).unwrap();
        match &decoded.records[i.lsn as usize - 1] {
            JournalRecord::WritebackIntent { covered_lsn, .. } => assert_eq!(*covered_lsn, 2),
            other => panic!("expected intent, got {other:?}"),
        }
        // A line never written has a zero horizon.
        let i2 = j.append_writeback_intent(100, 0).unwrap();
        let decoded = decode_records(&j.snapshot()).unwrap();
        match &decoded.records[i2.lsn as usize - 1] {
            JournalRecord::WritebackIntent { covered_lsn, .. } => assert_eq!(*covered_lsn, 0),
            other => panic!("expected intent, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let j = CacheJournal::new();
        j.append_write(0, 0, &[9; 10]).unwrap();
        j.append_write(1, 0, &[8; 10]).unwrap();
        let bytes = j.snapshot();
        for cut in 0..bytes.len() {
            let d = decode_records(&bytes[..cut]).unwrap();
            let whole = cut / (RECORD_OVERHEAD_BYTES + 10);
            assert_eq!(d.records.len(), whole, "cut at {cut}");
            assert_eq!(d.torn_tail, cut % (RECORD_OVERHEAD_BYTES + 10) != 0);
        }
    }

    #[test]
    fn bit_flips_report_typed_corruption() {
        let j = CacheJournal::new();
        j.append_write(0, 0, &[7; 24]).unwrap();
        j.append_writeback_intent(0, 1).unwrap();
        let bytes = j.snapshot();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match decode_records(&bad) {
                Err(BamError::JournalCorrupt { lsn }) => {
                    assert!((1..=2).contains(&lsn), "flip at {pos} blamed lsn {lsn}")
                }
                other => panic!("flip at {pos}: expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_point_tears_the_append() {
        let cp = Arc::new(CrashPoint::new());
        let j = CacheJournal::with_crash_point(cp.clone());
        j.append_write(0, 0, &[1; 16]).unwrap();
        cp.arm(1, 20); // second append tears at 20 bytes
        assert_eq!(j.append_write(1, 0, &[2; 16]), Err(BamError::Crashed));
        // Once down, nothing else persists.
        assert_eq!(j.append_writeback_intent(0, 1), Err(BamError::Crashed));
        let d = decode_records(&j.snapshot()).unwrap();
        assert_eq!(d.records.len(), 1);
        assert!(d.torn_tail);
    }

    fn recovery_rig() -> (Arc<ByteRegion>, Arc<ByteRegion>, Arc<MemoryBacking>) {
        let data = Arc::new(ByteRegion::new(16 * 64));
        for line in 0..16u64 {
            data.write_bytes(line * 64, &[line as u8; 64]);
        }
        let gpu = Arc::new(ByteRegion::new(4096));
        let backing = Arc::new(MemoryBacking::new(data.clone(), 0, gpu.clone(), 64, 16));
        (data, gpu, backing)
    }

    #[test]
    fn recover_replays_uncommitted_writes() {
        let (data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        j.append_write(2, 4, &[0xEE; 8]).unwrap();
        j.append_write(5, 0, &[0xDD; 64]).unwrap();
        let report = recover(&j.snapshot(), backing.as_ref(), &gpu, 1024).unwrap();
        assert_eq!(report.replayed_writes, 2);
        assert_eq!(report.replayed_lines, 2);
        let mut buf = [0u8; 64];
        data.read_bytes(2 * 64 + 4, &mut buf[..8]);
        assert_eq!(&buf[..8], &[0xEE; 8]);
        data.read_bytes(5 * 64, &mut buf);
        assert_eq!(buf, [0xDD; 64]);
    }

    #[test]
    fn committed_lines_are_not_double_applied() {
        let (_data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        let w = j.append_write(4, 0, &[1; 64]).unwrap();
        let i = j.append_writeback_intent(4, w.lsn).unwrap();
        j.append_writeback_commit(4, i.lsn).unwrap();
        let report = recover(&j.snapshot(), backing.as_ref(), &gpu, 1024).unwrap();
        assert_eq!(report.replayed_lines, 0);
        assert_eq!(report.replayed_writes, 0);
        assert_eq!(report.committed_writebacks, 1);
    }

    #[test]
    fn writes_after_a_commit_are_still_replayed() {
        let (data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        let w = j.append_write(4, 0, &[1; 64]).unwrap();
        let i = j.append_writeback_intent(4, w.lsn).unwrap();
        j.append_writeback_commit(4, i.lsn).unwrap();
        j.append_write(4, 8, &[2; 4]).unwrap(); // newer than the commit
        let report = recover(&j.snapshot(), backing.as_ref(), &gpu, 1024).unwrap();
        assert_eq!(report.replayed_lines, 1);
        assert_eq!(report.replayed_writes, 1);
        let mut buf = [0u8; 4];
        data.read_bytes(4 * 64 + 8, &mut buf);
        assert_eq!(buf, [2; 4]);
    }

    #[test]
    fn commit_without_intent_is_corrupt() {
        let (_data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        j.append_write(0, 0, &[1; 8]).unwrap();
        j.append_writeback_commit(0, 99).unwrap();
        assert_eq!(
            recover(&j.snapshot(), backing.as_ref(), &gpu, 1024),
            Err(BamError::JournalCorrupt { lsn: 2 })
        );
    }

    #[test]
    fn out_of_range_write_record_is_corrupt() {
        let (_data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        j.append_write(999, 0, &[1; 8]).unwrap();
        assert_eq!(
            recover(&j.snapshot(), backing.as_ref(), &gpu, 1024),
            Err(BamError::JournalCorrupt { lsn: 1 })
        );
    }

    #[test]
    fn replay_plan_matches_what_recover_does() {
        let (_data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        let w = j.append_write(4, 0, &[1; 64]).unwrap(); // covered by commit
        let i = j.append_writeback_intent(4, w.lsn).unwrap();
        j.append_writeback_commit(4, i.lsn).unwrap();
        j.append_write(4, 8, &[2; 4]).unwrap(); // pending on line 4
        j.append_write(7, 0, &[3; 16]).unwrap(); // pending on line 7
        let bytes = j.snapshot();
        let plan = replay_plan(&bytes, 16, 64).unwrap();
        assert_eq!(
            plan,
            vec![
                LineReplay {
                    line: 4,
                    durable_lsn: 1,
                    pending_writes: 1,
                    pending_bytes: 4
                },
                LineReplay {
                    line: 7,
                    durable_lsn: 0,
                    pending_writes: 1,
                    pending_bytes: 16
                },
            ]
        );
        let report = recover(&bytes, backing.as_ref(), &gpu, 1024).unwrap();
        let planned: u64 = plan.iter().map(|l| l.pending_writes).sum();
        assert_eq!(report.replayed_writes, planned);
        assert_eq!(
            report.replayed_lines,
            plan.iter().filter(|l| l.pending_writes > 0).count() as u64
        );
    }

    #[test]
    fn observed_recovery_emits_one_replay_span_per_line() {
        let (_data, gpu, backing) = recovery_rig();
        let j = CacheJournal::new();
        j.append_write(2, 0, &[1; 8]).unwrap();
        j.append_write(2, 8, &[2; 8]).unwrap();
        j.append_write(9, 0, &[3; 8]).unwrap();
        let rec = SpanRecorder::new();
        let report =
            recover_observed(&j.snapshot(), backing.as_ref(), &gpu, 1024, Some(&rec)).unwrap();
        assert_eq!(report.replayed_lines, 2);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.stage == Stage::RecoveryReplay));
        assert_eq!(events[0].arg, 2);
        assert_eq!(events[0].track, 2, "two writes redone into line 2");
        assert_eq!(events[1].arg, 9);
        assert!(events.iter().all(|e| e.end_ns > e.start_ns));
    }

    #[test]
    fn recovery_report_display_is_a_one_line_summary() {
        let report = RecoveryReport {
            records_scanned: 5,
            torn_tail: true,
            write_records: 3,
            intent_records: 1,
            committed_writebacks: 1,
            replayed_writes: 2,
            replayed_lines: 1,
            journal_bytes: 321,
        };
        let s = report.to_string();
        assert_eq!(
            s,
            "scanned 5 records (3 writes, 1 intents, 1 commits) in 321 journal bytes \
             (torn tail); replayed 2 writes across 1 lines"
        );
    }

    #[test]
    fn write_amplification_is_journal_bytes_over_payload() {
        let j = CacheJournal::new();
        assert_eq!(j.write_amplification(), 1.0);
        j.append_write(0, 0, &[0; 48]).unwrap();
        let expected = (RECORD_OVERHEAD_BYTES as f64 + 48.0) / 48.0;
        assert!((j.write_amplification() - expected).abs() < 1e-12);
        assert!(!j.is_empty());
        assert_eq!(j.len(), 1);
    }
}
