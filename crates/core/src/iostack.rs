//! The BaM I/O stack: routes cache-line fetches and write-backs to the SSD
//! array through the BaM queue protocol.
//!
//! Requests are spread across SSDs (round-robin under replication, by address
//! under striping) and across each SSD's queue pairs round-robin, exactly as
//! the prototype distributes its microbenchmark traffic (§4.3).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use bam_mem::DevAddr;
use bam_nvme_sim::{DataLayout, IoEvent, NvmeCommand, SimHook, SsdArray, BLOCK_SIZE};
use bam_obs::{SpanEvent, SpanSink, Stage};

use crate::backing::CacheBacking;
use crate::error::BamError;
use crate::metrics::BamMetrics;
use crate::queue::BamQueuePair;

/// Ceiling on the per-attempt fetch-retry backoff. The exponential saturates
/// here instead of overflowing the shift for large configured retry counts.
const MAX_FETCH_BACKOFF_US: u64 = 10_000;

/// Backoff before retry `attempt` (1-based): `base_us · 2^(attempt-1)`,
/// saturating at [`MAX_FETCH_BACKOFF_US`] (never overflowing, however large
/// the configured retry budget).
fn retry_backoff_us(base_us: u64, attempt: u32) -> u64 {
    let factor = 1u64.checked_shl(attempt - 1).unwrap_or(u64::MAX);
    base_us.saturating_mul(factor).min(MAX_FETCH_BACKOFF_US)
}

/// The GPU-side I/O stack over a multi-SSD array.
pub struct IoStack {
    array: Arc<SsdArray>,
    /// BaM queue pairs, grouped per device.
    queues: Vec<Vec<Arc<BamQueuePair>>>,
    /// Round-robin counter for device selection under replication.
    rr_device: AtomicU64,
    /// Round-robin counter for queue selection within a device.
    rr_queue: AtomicU64,
    line_bytes: u64,
    num_lines: u64,
    metrics: Arc<BamMetrics>,
    /// Optional event-simulation hook (see `bam_nvme_sim::hook`).
    sim_hook: RwLock<Option<Arc<dyn SimHook>>>,
    /// Fast-path flag mirroring `sim_hook.is_some()`: with no hook installed
    /// (the default) the submission path pays one relaxed load, no lock.
    sim_hook_installed: AtomicBool,
    /// Optional span recorder: doorbell-stage spans (submit→completion wall
    /// window in virtual steps) when a recorder is installed.
    spans: SpanSink,
    /// Extra attempts for a cache-miss fetch that fails with a transient
    /// storage error (0 = fail fast).
    fetch_retries: u32,
    /// Backoff before retry `n` (1-based) is `fetch_retry_base_us · 2^(n-1)`
    /// microseconds, saturating at [`MAX_FETCH_BACKOFF_US`].
    fetch_retry_base_us: u64,
}

impl std::fmt::Debug for IoStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStack")
            .field("devices", &self.queues.len())
            .field(
                "queues_per_device",
                &self.queues.first().map(Vec::len).unwrap_or(0),
            )
            .field("line_bytes", &self.line_bytes)
            .field("num_lines", &self.num_lines)
            .finish()
    }
}

impl IoStack {
    /// Creates an I/O stack over `array` using the given per-device BaM queue
    /// pairs, serving a dataset of `num_lines` lines of `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty or any device has no queues, or if
    /// `line_bytes` is not a multiple of the block size.
    pub fn new(
        array: Arc<SsdArray>,
        queues: Vec<Vec<Arc<BamQueuePair>>>,
        line_bytes: u64,
        num_lines: u64,
        metrics: Arc<BamMetrics>,
    ) -> Self {
        assert!(!queues.is_empty(), "need at least one device");
        assert!(
            queues.iter().all(|q| !q.is_empty()),
            "every device needs at least one queue"
        );
        assert_eq!(queues.len(), array.len(), "one queue group per device");
        assert_eq!(
            line_bytes % BLOCK_SIZE as u64,
            0,
            "line size must be whole blocks"
        );
        Self {
            array,
            queues,
            rr_device: AtomicU64::new(0),
            rr_queue: AtomicU64::new(0),
            line_bytes,
            num_lines,
            metrics,
            sim_hook: RwLock::new(None),
            sim_hook_installed: AtomicBool::new(false),
            spans: SpanSink::new(),
            fetch_retries: 0,
            fetch_retry_base_us: 0,
        }
    }

    /// The stack's span sink. Installing a recorder here starts doorbell
    /// spans; uninstalled (the default) the probe is one relaxed load.
    pub fn spans(&self) -> &SpanSink {
        &self.spans
    }

    /// Records one closed doorbell span: `start_step` was taken before the
    /// submit, the end step is taken now, `track` is the device index and
    /// `arg` the device-local LBA.
    fn emit_doorbell_span(&self, start_step: u64, device: usize, lba: u64) {
        self.spans.with(|rec| {
            rec.record(SpanEvent {
                span: rec.next_span_id(),
                stage: Stage::Doorbell,
                start_ns: start_step,
                end_ns: rec.tick(),
                track: device as u32,
                arg: lba,
            });
        });
    }

    /// Enables bounded retry with exponential backoff for cache-miss fetches
    /// that fail with a transient [`BamError::Storage`] error: up to
    /// `retries` extra attempts, sleeping `base_us · 2^(attempt-1)`
    /// microseconds (saturating at `MAX_FETCH_BACKOFF_US`) before each.
    /// Under replication the round-robin device
    /// selector naturally steers each attempt at the next replica. Every
    /// retry is counted in [`crate::MetricsSnapshot::storage_retries`].
    pub fn with_fetch_retry(mut self, retries: u32, base_us: u64) -> Self {
        self.fetch_retries = retries;
        self.fetch_retry_base_us = base_us;
        self
    }

    /// Installs `hook` on this stack *and* on every device controller of the
    /// underlying array, so one call instruments the whole submission→fetch→
    /// completion pipeline. `None` uninstruments everything.
    pub fn set_sim_hook(&self, hook: Option<Arc<dyn SimHook>>) {
        self.array.set_sim_hook(hook.clone());
        let installed = hook.is_some();
        *self.sim_hook.write().expect("sim hook lock poisoned") = hook;
        self.sim_hook_installed.store(installed, Ordering::Release);
    }

    fn emit_submit(&self, device: usize, queue: u16, write: bool, lba: u64) {
        if !self.sim_hook_installed.load(Ordering::Acquire) {
            return;
        }
        if let Some(hook) = self
            .sim_hook
            .read()
            .expect("sim hook lock poisoned")
            .as_ref()
        {
            hook.on_submit(&IoEvent {
                device: device as u32,
                queue,
                write,
                bytes: self.line_bytes,
                lba,
            });
        }
    }

    /// Blocks per cache line.
    fn blocks_per_line(&self) -> u32 {
        (self.line_bytes / BLOCK_SIZE as u64) as u32
    }

    /// Total read + write commands submitted through this stack so far.
    pub fn total_submissions(&self) -> u64 {
        self.queues.iter().flatten().map(|q| q.submissions()).sum()
    }

    /// Total SQ doorbell MMIO writes across every queue.
    pub fn total_doorbell_writes(&self) -> u64 {
        self.queues
            .iter()
            .flatten()
            .map(|q| q.sq_doorbell_writes())
            .sum()
    }

    /// The SSD array behind this stack.
    pub fn array(&self) -> &Arc<SsdArray> {
        &self.array
    }

    fn pick_queue(&self, device: usize) -> &BamQueuePair {
        let qs = &self.queues[device];
        let idx = self.rr_queue.fetch_add(1, Ordering::Relaxed) as usize % qs.len();
        &qs[idx]
    }

    fn check_line(&self, line: u64) -> Result<(), BamError> {
        if line >= self.num_lines {
            return Err(BamError::IndexOutOfBounds {
                index: line,
                len: self.num_lines,
            });
        }
        Ok(())
    }

    /// Reads cache line `line` from storage into GPU memory at `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn read_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
        self.check_line(line)?;
        let logical_lba = line * u64::from(self.blocks_per_line());
        let rr = self.rr_device.fetch_add(1, Ordering::Relaxed) as usize;
        let (device, lba) = self.array.locate_read(logical_lba, rr);
        let qp = self.pick_queue(device);
        let start_step = self.spans.with(|rec| rec.tick());
        qp.submit_and_wait(NvmeCommand::read(0, lba, self.blocks_per_line(), dst))?;
        if let Some(start) = start_step {
            self.emit_doorbell_span(start, device, lba);
        }
        // Emitted alongside the metrics so trace length and request counters
        // agree 1:1 (failed commands appear in neither).
        self.emit_submit(device, qp.queue_id(), false, lba);
        self.metrics.record_read_request(self.line_bytes);
        Ok(())
    }

    /// Writes cache line `line` from GPU memory at `src` back to storage.
    ///
    /// Under replication every replica is updated so subsequent reads from
    /// any device observe the write.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::IndexOutOfBounds`] or a storage failure.
    pub fn write_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
        self.check_line(line)?;
        let logical_lba = line * u64::from(self.blocks_per_line());
        for (device, lba) in self.array.locate_write(logical_lba) {
            let qp = self.pick_queue(device);
            let start_step = self.spans.with(|rec| rec.tick());
            qp.submit_and_wait(NvmeCommand::write(0, lba, self.blocks_per_line(), src))?;
            if let Some(start) = start_step {
                self.emit_doorbell_span(start, device, lba);
            }
            self.emit_submit(device, qp.queue_id(), true, lba);
            self.metrics.record_write_request(self.line_bytes);
        }
        Ok(())
    }

    /// The data layout of the underlying array.
    pub fn layout(&self) -> DataLayout {
        self.array.layout()
    }
}

impl CacheBacking for IoStack {
    fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn num_lines(&self) -> u64 {
        self.num_lines
    }

    fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        let outcome = loop {
            match self.read_line(line, dst) {
                // Only transient device failures are worth retrying; config
                // and bounds errors are deterministic.
                Err(BamError::Storage(_)) if attempt < self.fetch_retries => {
                    attempt += 1;
                    self.metrics.record_retry();
                    if self.fetch_retry_base_us > 0 {
                        let backoff = retry_backoff_us(self.fetch_retry_base_us, attempt);
                        std::thread::sleep(std::time::Duration::from_micros(backoff));
                    }
                }
                other => break other,
            }
        };
        if outcome.is_ok() {
            self.metrics
                .record_fetch_latency(started.elapsed().as_nanos() as u64);
        }
        outcome
    }

    fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
        let started = Instant::now();
        let outcome = self.write_line(line, src);
        if outcome.is_ok() {
            self.metrics
                .record_writeback_latency(started.elapsed().as_nanos() as u64);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_mem::{BumpAllocator, ByteRegion};
    use bam_nvme_sim::{SsdDevice, SsdSpec};

    fn build(
        num_ssds: usize,
        layout: DataLayout,
    ) -> (Arc<ByteRegion>, BumpAllocator, Arc<SsdArray>, IoStack) {
        let region = Arc::new(ByteRegion::new(32 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let mut array = SsdArray::new(
            SsdSpec::intel_optane_p5800x(),
            num_ssds,
            region.clone(),
            8 << 20,
            layout,
        );
        array.start();
        let array = Arc::new(array);
        let raw_queues = array.create_queues(&alloc, 2, 32).unwrap();
        let queues: Vec<Vec<Arc<BamQueuePair>>> = raw_queues
            .into_iter()
            .map(|per_dev| {
                per_dev
                    .into_iter()
                    .map(|q| Arc::new(BamQueuePair::new(q)))
                    .collect()
            })
            .collect();
        let metrics = Arc::new(BamMetrics::new());
        let stack = IoStack::new(array.clone(), queues, 1024, 1024, metrics);
        (region, alloc, array, stack)
    }

    #[test]
    fn read_line_round_trips_replicated_data() {
        let (region, alloc, array, stack) = build(3, DataLayout::Replicated);
        let mut payload = vec![0u8; 1024];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i % 255) as u8;
        }
        array.preload(5 * 1024, &payload).unwrap();
        // Several reads hit different devices via round-robin; all must agree.
        for _ in 0..6 {
            let dst = alloc.alloc(1024, 512).unwrap();
            stack.read_line(5, dst).unwrap();
            let mut out = vec![0u8; 1024];
            region.read_bytes(dst, &mut out);
            assert_eq!(out, payload);
        }
        // Every device served at least one of the six requests.
        assert!(array.stats().iter().all(|s| s.read_commands >= 1));
    }

    #[test]
    fn write_line_updates_every_replica() {
        let (region, alloc, array, stack) = build(2, DataLayout::Replicated);
        let src = alloc.alloc(1024, 512).unwrap();
        region.write_bytes(src, &[0xBEu8; 1024]);
        stack.write_line(9, src).unwrap();
        for d in array.iter() {
            let mut out = vec![0u8; 1024];
            d.media().read_bytes(9 * 1024, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0xBE));
        }
    }

    #[test]
    fn striped_layout_round_trips() {
        let (region, alloc, _array, stack) = build(4, DataLayout::Striped { chunk_blocks: 2 });
        let src = alloc.alloc(1024, 512).unwrap();
        region.write_bytes(src, &[0x42u8; 1024]);
        stack.write_line(7, src).unwrap();
        let dst = alloc.alloc(1024, 512).unwrap();
        stack.read_line(7, dst).unwrap();
        let mut out = vec![0u8; 1024];
        region.read_bytes(dst, &mut out);
        assert!(out.iter().all(|&b| b == 0x42));
    }

    #[test]
    fn out_of_range_line_rejected() {
        let (_r, alloc, _a, stack) = build(1, DataLayout::Replicated);
        let dst = alloc.alloc(1024, 512).unwrap();
        assert!(matches!(
            stack.read_line(1024, dst),
            Err(BamError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            stack.write_line(2048, dst),
            Err(BamError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn submissions_and_doorbells_are_counted() {
        let (_r, alloc, _a, stack) = build(2, DataLayout::Replicated);
        let dst = alloc.alloc(1024, 512).unwrap();
        for line in 0..10 {
            stack.read_line(line, dst).unwrap();
        }
        assert_eq!(stack.total_submissions(), 10);
        assert!(stack.total_doorbell_writes() <= 10);
        assert!(stack.total_doorbell_writes() >= 1);
    }

    #[test]
    fn transient_fetch_failures_are_retried_with_backoff() {
        use std::sync::atomic::AtomicU32;

        let (region, alloc, array, stack) = build(1, DataLayout::Replicated);
        let stack = stack.with_fetch_retry(3, 1);
        array.preload(4 * 1024, &[0x77u8; 1024]).unwrap();
        // Fail the first two commands, then heal.
        let strikes = Arc::new(AtomicU32::new(2));
        let strikes_in_injector = strikes.clone();
        array
            .device(0)
            .controller()
            .set_fault_injector(Some(Arc::new(move |_cmd: &NvmeCommand| {
                (strikes_in_injector
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| s.checked_sub(1))
                    .is_ok())
                .then_some(bam_nvme_sim::NvmeStatus::InternalError)
            })));
        let dst = alloc.alloc(1024, 512).unwrap();
        stack.fetch_line(4, dst).unwrap();
        let mut out = vec![0u8; 1024];
        region.read_bytes(dst, &mut out);
        assert!(out.iter().all(|&b| b == 0x77));
        assert_eq!(stack.metrics.snapshot().storage_retries, 2);

        // With the budget exhausted the typed error still surfaces.
        strikes.store(10, Ordering::Release);
        assert!(matches!(
            stack.fetch_line(4, dst),
            Err(BamError::Storage(_))
        ));
        assert_eq!(stack.metrics.snapshot().storage_retries, 2 + 3);
    }

    #[test]
    fn retry_backoff_saturates_instead_of_overflowing_the_shift() {
        assert_eq!(retry_backoff_us(100, 1), 100);
        assert_eq!(retry_backoff_us(100, 2), 200);
        assert_eq!(retry_backoff_us(100, 5), 1600);
        // Past the cap the exponential flattens out.
        assert_eq!(retry_backoff_us(100, 8), MAX_FETCH_BACKOFF_US);
        // Shift amounts that would overflow (attempt >= 65 panicked in debug
        // builds before) saturate at the cap instead.
        assert_eq!(retry_backoff_us(1, 65), MAX_FETCH_BACKOFF_US);
        assert_eq!(retry_backoff_us(u64::MAX, 200), MAX_FETCH_BACKOFF_US);
    }

    // Keep `SsdDevice` import used even though tests go through `SsdArray`.
    #[allow(dead_code)]
    fn _unused(_: &SsdDevice) {}
}
