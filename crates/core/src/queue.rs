//! The BaM high-throughput I/O queue protocol (paper §3.3).
//!
//! Thousands of GPU threads share each NVMe queue pair. A naive critical
//! section around "write SQ entry + ring doorbell" would serialize them, so
//! BaM replaces it with fine-grained synchronization:
//!
//! * an atomic **ticket counter** assigns each submitting thread a slot in a
//!   virtual queue; dividing the ticket by the physical queue size yields the
//!   physical **entry** (remainder) and the **turn** (quotient);
//! * a **`turn_counter` array** (one counter per physical entry) tracks which
//!   turn currently owns each entry, letting as many threads as there are
//!   entries copy their commands in parallel while later turns wait;
//! * a **mark bit-vector** records which entries hold fully written commands;
//!   one thread takes the queue **lock**, sweeps the consecutive marks from
//!   the tail, advances the tail past them, and rings the doorbell **once**
//!   for the whole batch (doorbell coalescing);
//! * the **completion queue** is polled without a lock; threads mark their
//!   completions for dequeue, and one thread sweeps the marks, advances the
//!   CQ head, rings the CQ doorbell, and — using the SQ-head field the
//!   controller placed in the completion — frees the corresponding SQ
//!   entries by bumping their `turn_counter` to the next even value.
//!
//! The implementation below follows that design literally; the unit tests and
//! the property tests in `tests/` check the protocol invariants (no lost or
//! duplicated commands, no slot aliasing) under real thread-level
//! concurrency.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bam_nvme_sim::{NvmeCommand, NvmeCompletion, NvmeStatus, QueuePair};

use crate::error::BamError;

/// Mark bit-vector: one bit per queue entry.
#[derive(Debug)]
struct MarkBits {
    words: Vec<AtomicU64>,
}

impl MarkBits {
    fn new(bits: u32) -> Self {
        let words = (bits as usize).div_ceil(64);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Self { words: v }
    }

    fn set(&self, idx: u32) {
        self.words[idx as usize / 64].fetch_or(1 << (idx % 64), Ordering::Release);
    }

    fn clear(&self, idx: u32) {
        self.words[idx as usize / 64].fetch_and(!(1 << (idx % 64)), Ordering::AcqRel);
    }

    fn is_set(&self, idx: u32) -> bool {
        self.words[idx as usize / 64].load(Ordering::Acquire) & (1 << (idx % 64)) != 0
    }
}

/// Submission-queue tail state, guarded by the SQ lock.
#[derive(Debug)]
struct SqTail {
    tail: u32,
}

/// Completion-queue state, guarded by the CQ lock.
#[derive(Debug)]
struct CqState {
    /// Total completions consumed since creation ("unwrapped" head).
    head_total: u64,
    /// Local copy of the SQ head (next entry the controller will consume).
    sq_head: u32,
}

/// A BaM-managed NVMe queue pair.
///
/// Any number of threads may call [`BamQueuePair::submit_and_wait`]
/// concurrently; the protocol guarantees each command is submitted exactly
/// once, each completion is delivered to the thread that submitted the
/// matching command, and doorbell writes are batched across threads.
#[derive(Debug)]
pub struct BamQueuePair {
    qp: Arc<QueuePair>,
    /// Physical ring size.
    entries: u32,
    /// Maximum concurrently in-flight commands: one slot is kept free so
    /// that a completely full ring can never be confused with an empty one
    /// and so the tail doorbell value always changes when new work arrives
    /// (standard NVMe full/empty disambiguation).
    capacity: u32,
    /// Commands submitted but not yet retired (credit counter enforcing
    /// `capacity`).
    in_flight: AtomicU64,
    ticket: AtomicU64,
    turn_counter: Vec<AtomicU64>,
    sq_marks: MarkBits,
    sq_lock: Mutex<SqTail>,
    cq_marks: MarkBits,
    cq_lock: Mutex<CqState>,
    /// Lock-free mirror of `CqState::head_total` for the fast-path check.
    cq_head_total: AtomicU64,
}

impl BamQueuePair {
    /// Wraps an NVMe queue pair with the BaM protocol state.
    pub fn new(qp: Arc<QueuePair>) -> Self {
        let entries = qp.entries;
        let mut turn_counter = Vec::with_capacity(entries as usize);
        turn_counter.resize_with(entries as usize, || AtomicU64::new(0));
        Self {
            qp,
            entries,
            capacity: entries - 1,
            in_flight: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            turn_counter,
            sq_marks: MarkBits::new(entries),
            sq_lock: Mutex::new(SqTail { tail: 0 }),
            cq_marks: MarkBits::new(entries),
            cq_lock: Mutex::new(CqState {
                head_total: 0,
                sq_head: 0,
            }),
            cq_head_total: AtomicU64::new(0),
        }
    }

    /// Number of commands that may be concurrently in flight.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Id of the underlying NVMe queue pair.
    pub fn queue_id(&self) -> u16 {
        self.qp.id.0
    }

    /// MMIO doorbell writes made so far on the SQ tail doorbell; with many
    /// threads submitting this is far smaller than the number of commands —
    /// the doorbell-coalescing benefit measured in the ablation bench.
    pub fn sq_doorbell_writes(&self) -> u64 {
        self.qp.sq_doorbell_writes()
    }

    /// Total commands submitted through this queue so far.
    pub fn submissions(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    /// Submits `cmd` (its `cid` is overwritten by the protocol) and blocks
    /// until the matching completion arrives.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::Storage`] if the device reports a non-success
    /// status.
    pub fn submit_and_wait(&self, cmd: NvmeCommand) -> Result<NvmeCompletion, BamError> {
        self.acquire_credit();
        let entry = self.enqueue(cmd);
        let (completion, pos) = self.poll_completion(entry);
        self.retire_completion(pos);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        if completion.status.is_success() {
            Ok(completion)
        } else {
            Err(BamError::Storage(bam_nvme_sim::NvmeError::CommandFailed {
                cid: completion.cid,
                status: completion.status,
            }))
        }
    }

    /// Blocks until an in-flight credit is available (at most `capacity`
    /// commands outstanding).
    fn acquire_credit(&self) {
        let mut spins = 0u64;
        loop {
            let cur = self.in_flight.load(Ordering::Acquire);
            if cur < u64::from(self.capacity) {
                if self
                    .in_flight
                    .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            } else {
                spin_wait(&mut spins);
            }
        }
    }

    /// Phase 1: claim a slot, copy the command, and complete tail movement /
    /// doorbell ringing. Returns the physical entry used.
    fn enqueue(&self, mut cmd: NvmeCommand) -> u32 {
        // Ticket → (entry, turn).
        let ticket = self.ticket.fetch_add(1, Ordering::AcqRel);
        let entry = (ticket % u64::from(self.entries)) as u32;
        let turn = ticket / u64::from(self.entries);

        // Wait for our turn on this entry (previous occupant fully retired).
        let want = 2 * turn;
        let mut spins = 0u64;
        while self.turn_counter[entry as usize].load(Ordering::Acquire) != want {
            spin_wait(&mut spins);
        }

        // Copy the command into our slot; the cid identifies the slot so the
        // completion can be routed back to us.
        cmd.cid = entry as u16;
        self.qp.write_sq_entry(entry, &cmd);

        // Publish: set our mark bit.
        self.sq_marks.set(entry);

        // move_tail (paper's routine): one winner sweeps consecutive marks
        // from the tail, advances it, and rings the doorbell once.
        let mut spins = 0u64;
        loop {
            if !self.sq_marks.is_set(entry) {
                break; // the tail has been moved past our entry
            }
            if let Some(mut tail) = self.sq_lock.try_lock() {
                let mut t = tail.tail;
                let mut advanced = false;
                while self.sq_marks.is_set(t) {
                    self.sq_marks.clear(t);
                    t = (t + 1) % self.entries;
                    advanced = true;
                }
                if advanced {
                    tail.tail = t;
                    self.qp.ring_sq_tail(t);
                }
                drop(tail);
                if !self.sq_marks.is_set(entry) {
                    break;
                }
            } else {
                spin_wait(&mut spins);
            }
        }

        // Our command is now visible to the controller: flip our
        // turn_counter to odd, recording "submitted, awaiting retirement".
        self.turn_counter[entry as usize].fetch_add(1, Ordering::AcqRel);
        entry
    }

    /// Phase 2: poll the CQ (lock-free) for the completion whose cid matches
    /// our entry. Returns the completion and its unwrapped CQ position.
    fn poll_completion(&self, entry: u32) -> (NvmeCompletion, u64) {
        let mut spins = 0u64;
        loop {
            let head = self.cq_head_total.load(Ordering::Acquire);
            // Posted completions are contiguous from the head; stop scanning
            // at the first entry whose phase says "not posted yet".
            for pos in head..head + u64::from(self.capacity) {
                let slot = (pos % u64::from(self.entries)) as u32;
                let expected_phase = (pos / u64::from(self.entries)) % 2 == 0;
                let c = self.qp.read_cq_entry(slot);
                if c.phase != expected_phase {
                    break;
                }
                if c.cid == entry as u16 && !self.cq_marks.is_set(slot) {
                    // Pair with the controller's release fence so the DMA'd
                    // data is visible before we return (§4.4).
                    fence(Ordering::Acquire);
                    return (c, pos);
                }
            }
            spin_wait(&mut spins);
        }
    }

    /// Phase 3: mark our CQ entry for dequeue and help move the CQ head past
    /// it, freeing SQ entries as the controller's reported SQ head advances.
    fn retire_completion(&self, pos: u64) {
        let slot = (pos % u64::from(self.entries)) as u32;
        self.cq_marks.set(slot);
        let mut spins = 0u64;
        loop {
            if self.cq_head_total.load(Ordering::Acquire) > pos {
                return; // the head has moved past our entry
            }
            if let Some(mut st) = self.cq_lock.try_lock() {
                let mut head = st.head_total;
                let mut last_sq_head: Option<u16> = None;
                loop {
                    let s = (head % u64::from(self.entries)) as u32;
                    if !self.cq_marks.is_set(s) {
                        break;
                    }
                    self.cq_marks.clear(s);
                    last_sq_head = Some(self.qp.read_cq_entry(s).sq_head);
                    head += 1;
                }
                if head != st.head_total {
                    st.head_total = head;
                    self.cq_head_total.store(head, Ordering::Release);
                    self.qp
                        .ring_cq_head((head % u64::from(self.entries)) as u32);
                    if let Some(new_sq_head) = last_sq_head {
                        // Free every SQ entry the controller has consumed:
                        // bump its turn counter to the next even value so the
                        // next turn may enqueue.
                        let mut h = st.sq_head;
                        while h != u32::from(new_sq_head) {
                            self.turn_counter[h as usize].fetch_add(1, Ordering::AcqRel);
                            h = (h + 1) % self.entries;
                        }
                        st.sq_head = h;
                    }
                }
                drop(st);
                if self.cq_head_total.load(Ordering::Acquire) > pos {
                    return;
                }
            } else {
                spin_wait(&mut spins);
            }
        }
    }
}

/// Backoff for spin loops: busy-spin briefly, then yield to let controller
/// and peer threads run (the simulation has far fewer hardware threads than
/// a GPU has warps).
#[inline]
fn spin_wait(spins: &mut u64) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Convenience helpers used by tests and micro-benchmarks.
impl BamQueuePair {
    /// Submits a read of `nlb` blocks at `slba` into `dptr` and waits.
    ///
    /// # Errors
    ///
    /// Propagates device command failures.
    pub fn read_and_wait(
        &self,
        slba: u64,
        nlb: u32,
        dptr: u64,
    ) -> Result<NvmeCompletion, BamError> {
        self.submit_and_wait(NvmeCommand::read(0, slba, nlb, dptr))
    }

    /// Submits a write of `nlb` blocks at `slba` from `dptr` and waits.
    ///
    /// # Errors
    ///
    /// Propagates device command failures.
    pub fn write_and_wait(
        &self,
        slba: u64,
        nlb: u32,
        dptr: u64,
    ) -> Result<NvmeCompletion, BamError> {
        self.submit_and_wait(NvmeCommand::write(0, slba, nlb, dptr))
    }
}

/// Returns `true` if `status` is a success (tiny helper re-exported for
/// harnesses that inspect raw completions).
pub fn is_success(status: NvmeStatus) -> bool {
    status.is_success()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_mem::{BumpAllocator, ByteRegion};
    use bam_nvme_sim::{SsdDevice, SsdSpec};

    struct Rig {
        region: Arc<ByteRegion>,
        alloc: BumpAllocator,
        ssd: SsdDevice,
        bam_qp: Arc<BamQueuePair>,
    }

    fn rig(queue_entries: u32) -> Rig {
        let region = Arc::new(ByteRegion::new(16 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 8 << 20);
        let qp = ssd.create_queue_pair(&alloc, queue_entries).unwrap();
        ssd.start();
        Rig {
            region,
            alloc,
            ssd,
            bam_qp: Arc::new(BamQueuePair::new(qp)),
        }
    }

    #[test]
    fn single_thread_roundtrip() {
        let r = rig(16);
        r.ssd.media().write_blocks(5, &[0x77u8; 512]).unwrap();
        let dst = r.alloc.alloc(512, 512).unwrap();
        let c = r.bam_qp.read_and_wait(5, 1, dst).unwrap();
        assert!(c.status.is_success());
        let mut out = [0u8; 512];
        r.region.read_bytes(dst, &mut out);
        assert!(out.iter().all(|&b| b == 0x77));
    }

    #[test]
    fn many_threads_share_one_small_queue() {
        // 8 OS threads × 50 commands each through a 8-entry queue: every slot
        // is reused many times, exercising turn counters and both doorbells.
        let r = rig(8);
        // Unique pattern per block so reads can be validated.
        for lba in 0..64u64 {
            r.ssd
                .media()
                .write_blocks(lba, &vec![lba as u8; 512])
                .unwrap();
        }
        let qp = r.bam_qp.clone();
        let region = r.region.clone();
        let alloc = &r.alloc;
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let qp = qp.clone();
                let region = region.clone();
                let dst = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let lba = (t * 50 + i) % 64;
                        qp.read_and_wait(lba, 1, dst).unwrap();
                        let mut out = [0u8; 512];
                        region.read_bytes(dst, &mut out);
                        assert!(out.iter().all(|&b| b == lba as u8), "lba {lba}");
                    }
                });
            }
        });
        assert_eq!(r.bam_qp.submissions(), 400);
        // Doorbell coalescing: strictly fewer doorbell writes than commands
        // is not guaranteed under low contention, but it must never exceed
        // the command count.
        assert!(r.bam_qp.sq_doorbell_writes() <= 400);
    }

    #[test]
    fn writes_then_reads_roundtrip_concurrently() {
        let r = rig(16);
        let qp = r.bam_qp.clone();
        let region = r.region.clone();
        let alloc = &r.alloc;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let qp = qp.clone();
                let region = region.clone();
                let buf = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for i in 0..20u64 {
                        let lba = t * 100 + i;
                        region.write_bytes(buf, &vec![(t * 31 + i) as u8; 512]);
                        qp.write_and_wait(lba, 1, buf).unwrap();
                        region.write_bytes(buf, &[0u8; 512]);
                        qp.read_and_wait(lba, 1, buf).unwrap();
                        let mut out = [0u8; 512];
                        region.read_bytes(buf, &mut out);
                        assert!(out.iter().all(|&b| b == (t * 31 + i) as u8));
                    }
                });
            }
        });
    }

    #[test]
    fn failed_command_is_reported_to_the_submitting_thread() {
        let r = rig(16);
        let dst = r.alloc.alloc(512, 512).unwrap();
        // LBA beyond the 8 MiB namespace.
        let err = r.bam_qp.read_and_wait(1 << 40, 1, dst).unwrap_err();
        assert!(matches!(err, BamError::Storage(_)));
        // The queue remains usable afterwards.
        assert!(r.bam_qp.read_and_wait(0, 1, dst).is_ok());
    }

    #[test]
    fn capacity_reserves_one_slot() {
        let r = rig(16);
        assert_eq!(r.bam_qp.capacity(), 15);
    }

    #[test]
    fn ticket_counter_wraps_the_physical_ring_exactly() {
        // 43 commands through an 8-entry ring: the ticket counter wraps the
        // ring five times and lands 3 entries into the sixth generation.
        // After every command has retired, each entry's turn_counter must be
        // back at an even value equal to twice the number of times that entry
        // was claimed — any missed or double bump would leave it odd or
        // off-by-one and deadlock the next generation.
        const ENTRIES: u32 = 8;
        const COMMANDS: u64 = 43;
        let r = rig(ENTRIES);
        for lba in 0..COMMANDS {
            r.ssd
                .media()
                .write_blocks(lba, &vec![(lba % 251) as u8; 512])
                .unwrap();
        }
        let dst = r.alloc.alloc(512, 512).unwrap();
        for lba in 0..COMMANDS {
            r.bam_qp.read_and_wait(lba, 1, dst).unwrap();
            let mut out = [0u8; 512];
            r.region.read_bytes(dst, &mut out);
            assert!(out.iter().all(|&b| b == (lba % 251) as u8), "lba {lba}");
        }
        assert_eq!(r.bam_qp.submissions(), COMMANDS);
        for (entry, counter) in r.bam_qp.turn_counter.iter().enumerate() {
            let uses = (COMMANDS - entry as u64).div_ceil(u64::from(ENTRIES));
            assert_eq!(
                counter.load(Ordering::Acquire),
                2 * uses,
                "entry {entry}: turn counter must be even and match its reuse count"
            );
        }
    }

    #[test]
    fn turn_counters_survive_extreme_generation_counts() {
        // Fast-forward a fresh queue pair to generation K (as if it had
        // already cycled the ring K times): the ticket counter sits at
        // K * entries and every turn_counter at 2K, the exact state the
        // protocol would reach after that many retirements. The queue must
        // keep working — the (entry, turn) decomposition and the odd/even
        // turn handshake may not alias or overflow anywhere near the top of
        // the counter range.
        const ENTRIES: u32 = 8;
        // As high as the ticket counter itself allows headroom for: ~2^61
        // generations, i.e. a ticket value within 200 commands of u64::MAX.
        let generation: u64 = u64::MAX / u64::from(ENTRIES) - 25;
        let r = rig(ENTRIES);
        r.bam_qp
            .ticket
            .store(generation * u64::from(ENTRIES), Ordering::Release);
        for counter in &r.bam_qp.turn_counter {
            counter.store(2 * generation, Ordering::Release);
        }
        for lba in 0..64u64 {
            r.ssd
                .media()
                .write_blocks(lba, &vec![(lba % 251) as u8; 512])
                .unwrap();
        }
        let qp = r.bam_qp.clone();
        let region = r.region.clone();
        let alloc = &r.alloc;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let qp = qp.clone();
                let region = region.clone();
                let dst = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for i in 0..25u64 {
                        let lba = (t * 25 + i) % 64;
                        qp.read_and_wait(lba, 1, dst).unwrap();
                        let mut out = [0u8; 512];
                        region.read_bytes(dst, &mut out);
                        assert!(out.iter().all(|&b| b == (lba % 251) as u8), "lba {lba}");
                    }
                });
            }
        });
        let submitted = r.bam_qp.ticket.load(Ordering::Acquire) - generation * u64::from(ENTRIES);
        assert_eq!(submitted, 100);
        // All retired: every turn counter is even again and has advanced past
        // the fast-forwarded generation.
        for (entry, counter) in r.bam_qp.turn_counter.iter().enumerate() {
            let v = counter.load(Ordering::Acquire);
            assert_eq!(v % 2, 0, "entry {entry} left mid-turn (odd counter {v})");
            assert!(v >= 2 * generation, "entry {entry} counter went backwards");
        }
    }

    #[test]
    fn doorbell_writes_are_coalesced_under_contention() {
        // With many threads pounding a deep queue, the winner-sweeps design
        // must produce fewer doorbell MMIOs than submissions.
        let r = rig(64);
        let qp = r.bam_qp.clone();
        let alloc = &r.alloc;
        std::thread::scope(|s| {
            for _ in 0..8 {
                let qp = qp.clone();
                let dst = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for i in 0..100u64 {
                        qp.read_and_wait(i % 32, 1, dst).unwrap();
                    }
                });
            }
        });
        let submissions = r.bam_qp.submissions();
        let doorbells = r.bam_qp.sq_doorbell_writes();
        assert_eq!(submissions, 800);
        assert!(
            doorbells <= submissions,
            "doorbells {doorbells} > submissions {submissions}"
        );
    }
}
