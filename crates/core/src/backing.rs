//! The backing store behind the BaM software cache.
//!
//! A cache miss must fetch a whole cache line from wherever the data lives —
//! NVMe storage in the headline configuration, or host/GPU memory in the
//! paper's "Target" and cache-overhead measurement configurations. The
//! [`CacheBacking`] trait abstracts that, so the same cache is exercised in
//! every configuration of Figures 6–8.

use std::sync::Arc;

use bam_mem::{ByteRegion, DevAddr};

use crate::crash::{CrashPoint, StepOutcome};
use crate::error::BamError;

/// A source/sink for whole cache lines.
pub trait CacheBacking: Send + Sync {
    /// Cache line size in bytes.
    fn line_bytes(&self) -> u64;

    /// Number of cache lines the backing store holds.
    fn num_lines(&self) -> u64;

    /// Reads line `line` into GPU memory at `dst`.
    ///
    /// # Errors
    ///
    /// Returns an error if the line is out of range or the device fails.
    fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError>;

    /// Writes line `line` back from GPU memory at `src`.
    ///
    /// # Errors
    ///
    /// Returns an error if the line is out of range or the device fails.
    fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError>;
}

/// A backing store held entirely in (host or GPU) memory.
///
/// Used for the paper's measurements where the dataset is resident in memory
/// and only the cache-API overhead is being isolated (Fig 7's "Cache API"
/// component, Fig 6's ActivePointers-favouring hot configuration), and by
/// unit tests.
pub struct MemoryBacking {
    /// The memory holding the dataset.
    data: Arc<ByteRegion>,
    /// Byte offset of the dataset within `data`.
    base: DevAddr,
    /// The GPU memory lines are fetched into.
    gpu: Arc<ByteRegion>,
    line_bytes: u64,
    num_lines: u64,
}

impl MemoryBacking {
    /// Creates a memory backing of `num_lines` lines of `line_bytes` each,
    /// stored at `base` in `data`, fetched into `gpu`.
    pub fn new(
        data: Arc<ByteRegion>,
        base: DevAddr,
        gpu: Arc<ByteRegion>,
        line_bytes: u64,
        num_lines: u64,
    ) -> Self {
        assert!(line_bytes > 0, "line size must be non-zero");
        Self {
            data,
            base,
            gpu,
            line_bytes,
            num_lines,
        }
    }
}

impl CacheBacking for MemoryBacking {
    fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    fn num_lines(&self) -> u64 {
        self.num_lines
    }

    fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
        if line >= self.num_lines {
            return Err(BamError::IndexOutOfBounds {
                index: line,
                len: self.num_lines,
            });
        }
        let mut buf = vec![0u8; self.line_bytes as usize];
        self.data
            .read_bytes(self.base + line * self.line_bytes, &mut buf);
        self.gpu.write_bytes(dst, &buf);
        Ok(())
    }

    fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
        if line >= self.num_lines {
            return Err(BamError::IndexOutOfBounds {
                index: line,
                len: self.num_lines,
            });
        }
        let mut buf = vec![0u8; self.line_bytes as usize];
        self.gpu.read_bytes(src, &mut buf);
        self.data
            .write_bytes(self.base + line * self.line_bytes, &buf);
        Ok(())
    }
}

/// A [`CacheBacking`] decorator that subjects media write-backs to a
/// [`CrashPoint`].
///
/// Every `writeback_line` consumes one durable step; if the crash trips, the
/// write **does not reach the media** and [`BamError::Crashed`] is returned.
/// Once the stack is down, fetches fail too (the devices are gone with the
/// host). Recovery code talks to the *inner* backing directly — it runs
/// after the reboot.
pub struct CrashBacking {
    inner: Arc<dyn CacheBacking>,
    crash: Arc<CrashPoint>,
}

impl CrashBacking {
    /// Wraps `inner` so its write-backs consume durable steps on `crash`.
    pub fn new(inner: Arc<dyn CacheBacking>, crash: Arc<CrashPoint>) -> Self {
        Self { inner, crash }
    }

    /// The undecorated backing store (what recovery replays against).
    pub fn inner(&self) -> &Arc<dyn CacheBacking> {
        &self.inner
    }
}

impl CacheBacking for CrashBacking {
    fn line_bytes(&self) -> u64 {
        self.inner.line_bytes()
    }

    fn num_lines(&self) -> u64 {
        self.inner.num_lines()
    }

    fn fetch_line(&self, line: u64, dst: DevAddr) -> Result<(), BamError> {
        if self.crash.is_crashed() {
            return Err(BamError::Crashed);
        }
        self.inner.fetch_line(line, dst)
    }

    fn writeback_line(&self, line: u64, src: DevAddr) -> Result<(), BamError> {
        match self.crash.consume_step() {
            StepOutcome::Run => self.inner.writeback_line(line, src),
            StepOutcome::Crash { .. } | StepOutcome::Down => Err(BamError::Crashed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_backing_roundtrip() {
        let data = Arc::new(ByteRegion::new(4096));
        let gpu = Arc::new(ByteRegion::new(4096));
        data.write_bytes(512, &[7u8; 512]);
        let b = MemoryBacking::new(data.clone(), 0, gpu.clone(), 512, 8);
        b.fetch_line(1, 1024).unwrap();
        let mut out = [0u8; 512];
        gpu.read_bytes(1024, &mut out);
        assert!(out.iter().all(|&x| x == 7));

        gpu.write_bytes(2048, &[9u8; 512]);
        b.writeback_line(3, 2048).unwrap();
        data.read_bytes(3 * 512, &mut out);
        assert!(out.iter().all(|&x| x == 9));
    }

    #[test]
    fn out_of_range_line_rejected() {
        let data = Arc::new(ByteRegion::new(4096));
        let gpu = Arc::new(ByteRegion::new(4096));
        let b = MemoryBacking::new(data, 0, gpu, 512, 8);
        assert!(matches!(
            b.fetch_line(8, 0),
            Err(BamError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            b.writeback_line(9, 0),
            Err(BamError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn crash_backing_drops_the_tripped_writeback() {
        let data = Arc::new(ByteRegion::new(4096));
        let gpu = Arc::new(ByteRegion::new(4096));
        let inner = Arc::new(MemoryBacking::new(data.clone(), 0, gpu.clone(), 512, 8));
        let cp = Arc::new(CrashPoint::new());
        let b = CrashBacking::new(inner, cp.clone());

        gpu.write_bytes(0, &[5u8; 512]);
        b.writeback_line(0, 0).unwrap(); // step 0 runs
        cp.arm(1, 0);
        gpu.write_bytes(512, &[6u8; 512]);
        assert_eq!(b.writeback_line(1, 512), Err(BamError::Crashed));
        // The tripped write never reached the media...
        let mut out = [0u8; 512];
        data.read_bytes(512, &mut out);
        assert!(out.iter().all(|&x| x == 0));
        // ...and while down, everything fails.
        assert_eq!(b.fetch_line(0, 1024), Err(BamError::Crashed));
        assert_eq!(b.writeback_line(0, 0), Err(BamError::Crashed));
        // The reboot restores service.
        cp.reset();
        assert!(b.fetch_line(0, 1024).is_ok());
        data.read_bytes(0, &mut out);
        assert!(out.iter().all(|&x| x == 5));
    }
}
