//! System construction: wires GPU memory, the SSD array, the BaM queues, and
//! the software cache together.
//!
//! [`BamSystem::new`] performs everything the prototype's initialization does
//! (§3.5, §4.1): it allocates the cache, queue rings, and I/O buffers out of
//! GPU memory once, creates and registers the NVMe queue pairs, and starts
//! the (simulated) SSD controllers. Applications then carve storage-backed
//! [`BamArray`]s out of the logical namespace and launch kernels against
//! them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bam_gpu_sim::{GpuMemory, GpuSpec};
use bam_mem::{DevAddr, Pod};
use bam_nvme_sim::{DataLayout, FaultInjector, SsdArray, StatsSnapshot};
use bam_obs::{chrome_trace_json, PromWriter, SpanRecorder};

use crate::array::BamArray;
use crate::backing::{CacheBacking, CrashBacking};
use crate::cache::BamCache;
use crate::config::BamConfig;
use crate::crash::CrashPoint;
use crate::error::BamError;
use crate::iostack::IoStack;
use crate::journal::{self, CacheJournal, RecoveryReport};
use crate::metrics::{BamMetrics, MetricsSnapshot};
use crate::queue::BamQueuePair;

/// Number of pre-allocated scratch line buffers used by uncached accesses.
const SCRATCH_BUFFERS: usize = 64;

/// Shared state behind a [`BamSystem`] and every [`BamArray`] created from it.
pub(crate) struct SystemInner {
    pub(crate) config: BamConfig,
    pub(crate) gpu: GpuMemory,
    pub(crate) array: Arc<SsdArray>,
    pub(crate) iostack: Arc<IoStack>,
    pub(crate) cache: Option<Arc<BamCache>>,
    pub(crate) metrics: Arc<BamMetrics>,
    pub(crate) line_bytes: u64,
    pub(crate) coalescing: bool,
    /// The cache's write-ahead journal (when `config.use_journal`).
    journal: Option<Arc<CacheJournal>>,
    /// The injected crash point (when built via `with_crash_point`).
    crash: Option<Arc<CrashPoint>>,
    /// The installed span recorder (see [`BamSystem::set_span_recorder`]).
    span_recorder: Mutex<Option<Arc<SpanRecorder>>>,
    scratch: Vec<Mutex<DevAddr>>,
    scratch_rr: AtomicU64,
    dataset_cursor: AtomicU64,
    logical_capacity: u64,
}

impl std::fmt::Debug for SystemInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemInner")
            .field("line_bytes", &self.line_bytes)
            .field("cached", &self.cache.is_some())
            .field("ssds", &self.array.len())
            .finish()
    }
}

impl SystemInner {
    /// Runs `f` with a reader over the given cache line's bytes.
    ///
    /// With the cache enabled, the line is acquired (pinned) for the duration
    /// of `f`; in uncached mode the line is read into a scratch buffer first
    /// (every call is a storage request — the Fig 8 "no cache" configuration).
    pub(crate) fn with_line<R>(
        &self,
        line: u64,
        f: impl FnOnce(&dyn Fn(u64, usize) -> Vec<u8>) -> R,
    ) -> Result<R, BamError> {
        let region = self.gpu.region();
        if let Some(cache) = &self.cache {
            let guard = cache.acquire(line)?;
            let base = guard.addr();
            let read_at = move |offset: u64, size: usize| {
                let mut buf = vec![0u8; size];
                region.read_bytes(base + offset, &mut buf);
                buf
            };
            Ok(f(&read_at))
        } else {
            let (_slot_guard, addr) = self.lock_scratch();
            self.iostack.read_line(line, addr)?;
            let read_at = move |offset: u64, size: usize| {
                let mut buf = vec![0u8; size];
                region.read_bytes(addr + offset, &mut buf);
                buf
            };
            Ok(f(&read_at))
        }
    }

    /// Reads `size` bytes at `offset` within `line`.
    pub(crate) fn read_element(
        &self,
        line: u64,
        offset: u64,
        size: usize,
    ) -> Result<Vec<u8>, BamError> {
        self.with_line(line, |read_at| read_at(offset, size))
    }

    /// Writes `bytes` at `offset` within `line` (write-back through the
    /// cache, or a read-modify-write of the whole line in uncached mode).
    pub(crate) fn write_element(
        &self,
        line: u64,
        offset: u64,
        bytes: &[u8],
    ) -> Result<(), BamError> {
        self.write_line_range(line, offset, bytes)
    }

    /// Writes an arbitrary byte range within one line.
    pub(crate) fn write_line_range(
        &self,
        line: u64,
        offset: u64,
        bytes: &[u8],
    ) -> Result<(), BamError> {
        assert!(
            offset + bytes.len() as u64 <= self.line_bytes,
            "write crosses a cache-line boundary"
        );
        let region = self.gpu.region();
        if let Some(cache) = &self.cache {
            let guard = cache.acquire(line)?;
            let addr = guard.addr();
            // Write-ahead: the journal append is the acknowledgement point
            // (if it crashes, the write was never acknowledged and the
            // cached line is untouched), and append + apply run under the
            // line's write lock so a racing flush can never seal a commit
            // covering bytes that are not yet in the line image.
            cache.journalled_write(line, offset, bytes, || {
                region.write_bytes(addr + offset, bytes);
            })?;
            drop(guard);
            Ok(())
        } else {
            let (_slot_guard, addr) = self.lock_scratch();
            // A full-line write needs no read-modify-write.
            if !(offset == 0 && bytes.len() as u64 == self.line_bytes) {
                self.iostack.read_line(line, addr)?;
            }
            region.write_bytes(addr + offset, bytes);
            self.iostack.write_line(line, addr)
        }
    }

    /// Preloads raw bytes onto the SSD media at a logical byte offset.
    pub(crate) fn preload_bytes(&self, offset: u64, bytes: &[u8]) -> Result<(), BamError> {
        self.array.preload(offset, bytes).map_err(BamError::from)
    }

    fn lock_scratch(&self) -> (parking_lot::MutexGuard<'_, DevAddr>, DevAddr) {
        let idx = self.scratch_rr.fetch_add(1, Ordering::Relaxed) as usize % self.scratch.len();
        let guard = self.scratch[idx].lock();
        let addr = *guard;
        (guard, addr)
    }
}

/// A fully wired BaM system instance.
///
/// # Examples
///
/// ```
/// use bam_core::{BamConfig, BamSystem};
///
/// # fn main() -> Result<(), bam_core::BamError> {
/// let system = BamSystem::new(BamConfig::test_scale())?;
/// let array = system.create_array::<u64>(1024)?;
/// array.preload(&(0..1024).collect::<Vec<u64>>())?;
/// assert_eq!(array.read(42)?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BamSystem {
    inner: Arc<SystemInner>,
}

impl BamSystem {
    /// Builds a system from `config`: allocates GPU memory, creates the SSD
    /// array and its queue pairs, starts the controllers, and builds the
    /// software cache.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::InvalidConfig`] for inconsistent configurations or
    /// [`BamError::OutOfDeviceMemory`] if the cache/queues/buffers do not fit
    /// in the configured GPU memory.
    pub fn new(config: BamConfig) -> Result<Self, BamError> {
        Self::build(config, None)
    }

    /// Builds a system whose durable steps (journal appends and media
    /// write-backs) are subject to `crash`: arm it to kill the stack at any
    /// step, then call [`BamSystem::recover_from_journal`] to model the
    /// reboot-and-replay. With the crash point disarmed the system behaves
    /// exactly like [`BamSystem::new`] while counting durable steps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BamSystem::new`].
    pub fn with_crash_point(config: BamConfig, crash: Arc<CrashPoint>) -> Result<Self, BamError> {
        Self::build(config, Some(crash))
    }

    fn build(config: BamConfig, crash: Option<Arc<CrashPoint>>) -> Result<Self, BamError> {
        config.validate()?;
        let gpu = GpuMemory::new(GpuSpec::a100_80gb(), config.gpu_memory_bytes as usize);
        let mut ssd_array = SsdArray::new(
            config.ssd_spec.clone(),
            config.num_ssds,
            gpu.region(),
            config.ssd_capacity_bytes,
            config.layout,
        );
        ssd_array.start();
        let ssd_array = Arc::new(ssd_array);

        // Queue pairs live in GPU memory (§4.1).
        let raw_queues = ssd_array.create_queues(
            gpu.allocator(),
            config.queue_pairs_per_ssd as usize,
            config.queue_depth,
        )?;
        let queues: Vec<Vec<Arc<BamQueuePair>>> = raw_queues
            .into_iter()
            .map(|per_dev| {
                per_dev
                    .into_iter()
                    .map(|q| Arc::new(BamQueuePair::new(q)))
                    .collect()
            })
            .collect();

        let metrics = Arc::new(BamMetrics::new());
        let logical_capacity = match config.layout {
            DataLayout::Replicated => config.ssd_capacity_bytes,
            DataLayout::Striped { .. } => config.ssd_capacity_bytes * config.num_ssds as u64,
        };
        let num_lines = logical_capacity / config.cache_line_bytes;
        let iostack = Arc::new(
            IoStack::new(
                ssd_array.clone(),
                queues,
                config.cache_line_bytes,
                num_lines,
                metrics.clone(),
            )
            .with_fetch_retry(config.fetch_retries, config.fetch_retry_base_us),
        );

        let journal = config.use_journal.then(|| {
            Arc::new(match &crash {
                Some(cp) => CacheJournal::with_crash_point(cp.clone()),
                None => CacheJournal::new(),
            })
        });
        let cache = if config.use_cache {
            let slots = config.cache_slots();
            let slots_base = gpu.alloc(slots * config.cache_line_bytes, config.cache_line_bytes)?;
            // With a crash point, the cache sees a backing store whose
            // write-backs can be killed mid-flight; recovery bypasses the
            // wrapper and replays against the I/O stack directly.
            let backing: Arc<dyn CacheBacking> = match &crash {
                Some(cp) => Arc::new(CrashBacking::new(iostack.clone(), cp.clone())),
                None => iostack.clone(),
            };
            let mut cache = BamCache::new(backing, metrics.clone(), slots_base, slots);
            if let Some(journal) = &journal {
                cache = cache.with_journal(journal.clone());
            }
            Some(Arc::new(cache))
        } else {
            None
        };

        // Scratch line buffers for uncached accesses and flushes.
        let mut scratch = Vec::with_capacity(SCRATCH_BUFFERS);
        for _ in 0..SCRATCH_BUFFERS {
            let addr = gpu.alloc(config.cache_line_bytes, config.cache_line_bytes)?;
            scratch.push(Mutex::new(addr));
        }

        let line_bytes = config.cache_line_bytes;
        let coalescing = config.warp_coalescing;
        Ok(Self {
            inner: Arc::new(SystemInner {
                config,
                gpu,
                array: ssd_array,
                iostack,
                cache,
                metrics,
                line_bytes,
                coalescing,
                journal,
                crash,
                span_recorder: Mutex::new(None),
                scratch,
                scratch_rr: AtomicU64::new(0),
                dataset_cursor: AtomicU64::new(0),
                logical_capacity,
            }),
        })
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &BamConfig {
        &self.inner.config
    }

    /// The simulated GPU memory (for allocating kernel-private state).
    pub fn gpu_memory(&self) -> &GpuMemory {
        &self.inner.gpu
    }

    /// Maps a new storage-backed array of `len` elements of `T`.
    ///
    /// The array is placed on a fresh cache-line-aligned extent of the
    /// logical namespace, so distinct arrays never share cache lines.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::OutOfStorageCapacity`] when the namespace is
    /// exhausted, or [`BamError::InvalidConfig`] if the element size does not
    /// divide the cache line size.
    pub fn create_array<T: Pod>(&self, len: u64) -> Result<BamArray<T>, BamError> {
        if !self.inner.line_bytes.is_multiple_of(T::SIZE as u64) {
            return Err(BamError::InvalidConfig {
                reason: format!(
                    "element size {} does not divide the cache line size {}",
                    T::SIZE,
                    self.inner.line_bytes
                ),
            });
        }
        let bytes = len * T::SIZE as u64;
        let reserved = bytes.next_multiple_of(self.inner.line_bytes);
        let offset = self
            .inner
            .dataset_cursor
            .fetch_add(reserved, Ordering::AcqRel);
        if offset + bytes > self.inner.logical_capacity {
            return Err(BamError::OutOfStorageCapacity {
                requested: bytes,
                available: self.inner.logical_capacity.saturating_sub(offset),
            });
        }
        Ok(BamArray::new(self.inner.clone(), offset, len))
    }

    /// A snapshot of the BaM software metrics (cache and I/O counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Resets the software metrics (between experiment phases).
    pub fn reset_metrics(&self) {
        self.inner.metrics.reset();
    }

    /// Per-SSD controller statistics.
    pub fn ssd_stats(&self) -> Vec<StatsSnapshot> {
        self.inner.array.stats()
    }

    /// Installs (or, with `None`, removes) a [`bam_nvme_sim::SimHook`] on the
    /// I/O stack and every SSD controller, so an event-driven simulation
    /// (`bam-sim`) can observe the submission→fetch→completion stream of a
    /// functional run. The default is no hook; the functional path is
    /// unaffected either way.
    pub fn set_sim_hook(&self, hook: Option<Arc<dyn bam_nvme_sim::SimHook>>) {
        self.inner.iostack.set_sim_hook(hook);
    }

    /// Installs (or, with `None`, removes) a [`bam_obs::SpanRecorder`] on
    /// every instrumented subsystem: cache probes, miss fetches and journal
    /// appends, I/O-stack doorbells, and recovery replays all emit
    /// [`bam_obs::SpanEvent`]s into it. Timestamps are the recorder's own
    /// step counter (a virtual clock), so the cost is a few atomics per
    /// request; with no recorder installed the probes are single-branch
    /// no-ops.
    pub fn set_span_recorder(&self, recorder: Option<Arc<SpanRecorder>>) {
        match &recorder {
            Some(rec) => {
                self.inner.iostack.spans().install(rec.clone());
                if let Some(cache) = &self.inner.cache {
                    cache.spans().install(rec.clone());
                }
            }
            None => {
                self.inner.iostack.spans().uninstall();
                if let Some(cache) = &self.inner.cache {
                    cache.spans().uninstall();
                }
            }
        }
        *self.inner.span_recorder.lock() = recorder;
    }

    /// The installed span recorder, if any.
    pub fn span_recorder(&self) -> Option<Arc<SpanRecorder>> {
        self.inner.span_recorder.lock().clone()
    }

    /// Renders every recorded span as Chrome trace-event JSON (loadable in
    /// Perfetto or `chrome://tracing`). An empty-but-valid trace when no
    /// recorder is installed.
    pub fn span_export(&self) -> String {
        let events = self
            .span_recorder()
            .map(|rec| rec.events())
            .unwrap_or_default();
        chrome_trace_json(&events)
    }

    /// Renders the software metrics in the Prometheus text exposition
    /// format: every cache / storage / journal counter, the hit-rate and
    /// I/O-amplification gauges, and the wall-clock fetch and writeback
    /// latency histograms.
    pub fn metrics_export(&self) -> String {
        let snap = self.metrics();
        let mut w = PromWriter::new();
        w.counter(
            "bam_cache_hits_total",
            "Cache probes that hit a valid line.",
            snap.cache_hits,
        );
        w.counter(
            "bam_cache_misses_total",
            "Cache probes that fetched the line from storage.",
            snap.cache_misses,
        );
        w.counter(
            "bam_cache_evictions_total",
            "Lines evicted to make room.",
            snap.cache_evictions,
        );
        w.counter(
            "bam_cache_writebacks_total",
            "Dirty lines written back to storage.",
            snap.cache_writebacks,
        );
        w.counter(
            "bam_coalesced_accesses_total",
            "Accesses satisfied by another lane's probe.",
            snap.coalesced_accesses,
        );
        w.counter(
            "bam_read_requests_total",
            "Read commands submitted to storage.",
            snap.read_requests,
        );
        w.counter(
            "bam_write_requests_total",
            "Write commands submitted to storage.",
            snap.write_requests,
        );
        w.counter(
            "bam_bytes_read_total",
            "Bytes read from storage.",
            snap.bytes_read,
        );
        w.counter(
            "bam_bytes_written_total",
            "Bytes written to storage.",
            snap.bytes_written,
        );
        w.counter(
            "bam_storage_retries_total",
            "Transient storage failures retried on the fetch path.",
            snap.storage_retries,
        );
        w.counter(
            "bam_journal_appends_total",
            "Records appended to the write-ahead journal.",
            snap.journal_appends,
        );
        w.counter(
            "bam_journal_bytes_total",
            "Bytes appended to the write-ahead journal.",
            snap.journal_bytes,
        );
        w.gauge(
            "bam_cache_hit_rate",
            "Cache hit rate in [0, 1].",
            snap.hit_rate(),
        );
        w.gauge(
            "bam_io_amplification",
            "Bytes moved from storage per byte the application requested.",
            snap.io_amplification(),
        );
        w.histogram(
            "bam_fetch_latency_ns",
            "Wall-clock cache-miss fetch latency (retry loop included).",
            &self.inner.metrics.fetch_latency(),
        );
        w.histogram(
            "bam_writeback_latency_ns",
            "Wall-clock dirty-line writeback latency.",
            &self.inner.metrics.writeback_latency(),
        );
        w.finish()
    }

    /// Total NVMe commands submitted through the BaM queues.
    pub fn total_submissions(&self) -> u64 {
        self.inner.iostack.total_submissions()
    }

    /// Total SQ doorbell MMIO writes (a measure of doorbell coalescing).
    pub fn total_doorbell_writes(&self) -> u64 {
        self.inner.iostack.total_doorbell_writes()
    }

    /// Writes every dirty cache line back to storage. Returns the number of
    /// lines flushed (zero in uncached mode, where writes are write-through).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn flush(&self) -> Result<u64, BamError> {
        match &self.inner.cache {
            Some(cache) => cache.flush(),
            None => Ok(0),
        }
    }

    /// The cache's write-ahead journal, when `config.use_journal` is set
    /// (its [`crate::journal::CacheJournal::snapshot`] is what survives a
    /// crash and feeds [`BamSystem::recover_from_journal`]).
    pub fn journal(&self) -> Option<&Arc<CacheJournal>> {
        self.inner.journal.as_ref()
    }

    /// The injected crash point, when built via
    /// [`BamSystem::with_crash_point`].
    pub fn crash_point(&self) -> Option<&Arc<CrashPoint>> {
        self.inner.crash.as_ref()
    }

    /// Installs (or, with `None`, removes) a fault injector on SSD `device`,
    /// letting tests poison specific devices through the public stack instead
    /// of rebuilding a private one. The injector sees every NVMe command the
    /// controller fetches and may force an error status.
    ///
    /// # Panics
    ///
    /// Panics if `device >= config.num_ssds`.
    pub fn set_fault_injector(&self, device: usize, injector: Option<Arc<FaultInjector>>) {
        self.inner
            .array
            .device(device)
            .controller()
            .set_fault_injector(injector);
    }

    /// Models the reboot-and-replay after a crash: resets the crash point
    /// (if any), replays `journal_bytes` against the storage array so every
    /// acknowledged write is durable and no committed write-back is applied
    /// twice, rebuilds the cache directory cold, and truncates any torn tail
    /// from the live journal so the system can keep running.
    ///
    /// # Errors
    ///
    /// Returns [`BamError::JournalCorrupt`] for an undecodable journal, or a
    /// storage error encountered during the replay.
    pub fn recover_from_journal(&self, journal_bytes: &[u8]) -> Result<RecoveryReport, BamError> {
        if let Some(cp) = &self.inner.crash {
            cp.reset();
        }
        // Replay against the raw I/O stack: the crash wrapper models devices
        // lost with the crashed host, and the reboot is behind us.
        let region = self.inner.gpu.region();
        let (_slot_guard, scratch) = self.inner.lock_scratch();
        let recorder = self.inner.span_recorder.lock().clone();
        let report = journal::recover_observed(
            journal_bytes,
            self.inner.iostack.as_ref(),
            &region,
            scratch,
            recorder.as_deref(),
        )?;
        if let Some(cache) = &self.inner.cache {
            cache.reset_after_crash();
        }
        if let Some(journal) = &self.inner.journal {
            journal.truncate_torn_tail()?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_builds_with_paper_shaped_config() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        assert_eq!(sys.config().num_ssds, 2);
        assert_eq!(sys.ssd_stats().len(), 2);
        assert_eq!(sys.metrics(), MetricsSnapshot::default());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = BamConfig::test_scale();
        cfg.cache_line_bytes = 100;
        assert!(matches!(
            BamSystem::new(cfg),
            Err(BamError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn arrays_are_line_aligned_and_disjoint() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let a = sys.create_array::<u8>(100).unwrap();
        let b = sys.create_array::<u8>(100).unwrap();
        assert_eq!(a.base_offset() % 512, 0);
        assert_eq!(b.base_offset() % 512, 0);
        assert!(b.base_offset() >= a.base_offset() + 512);
    }

    #[test]
    fn storage_capacity_is_enforced() {
        let mut cfg = BamConfig::test_scale();
        cfg.ssd_capacity_bytes = 1 << 20;
        let sys = BamSystem::new(cfg).unwrap();
        // 1 MiB namespace cannot hold a 2 MiB array.
        assert!(matches!(
            sys.create_array::<u64>(256 * 1024),
            Err(BamError::OutOfStorageCapacity { .. })
        ));
    }

    #[test]
    fn flush_moves_dirty_data_to_media() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = sys.create_array::<u64>(64).unwrap();
        arr.preload(&vec![0u64; 64]).unwrap();
        arr.write(3, 77).unwrap();
        let flushed = sys.flush().unwrap();
        assert!(flushed >= 1);
        // After a flush the data is on every replica.
        let m = sys.metrics();
        assert!(m.write_requests >= 1);
    }

    #[test]
    fn element_size_must_divide_line_size() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        // u8/u16/u32/u64/f32/f64 all divide 512; everything supported works.
        assert!(sys.create_array::<u8>(8).is_ok());
        assert!(sys.create_array::<f64>(8).is_ok());
    }

    #[test]
    fn journalled_system_survives_a_crash_mid_flush() {
        let cp = Arc::new(CrashPoint::new());
        let sys = BamSystem::with_crash_point(BamConfig::test_scale(), cp.clone()).unwrap();
        let arr = sys.create_array::<u64>(512).unwrap();
        arr.preload(&vec![0u64; 512]).unwrap();
        arr.write(3, 77).unwrap();
        arr.write(200, 88).unwrap();
        let m = sys.metrics();
        assert!(m.journal_appends >= 2, "writes must be journalled");

        // Dry-count the steps a flush takes, then rerun with the crash armed
        // at the media write (journal intent lands, media write does not).
        let steps_before = cp.steps_taken();
        cp.arm(steps_before + 1, 8); // step 0: intent append, step 1: media write
        assert_eq!(sys.flush().unwrap_err(), BamError::Crashed);

        // Reboot + replay: both acknowledged writes must reach the media.
        let journal = sys.journal().unwrap().snapshot();
        let report = sys.recover_from_journal(&journal).unwrap();
        assert_eq!(report.replayed_lines, 2);
        assert_eq!(arr.read(3).unwrap(), 77);
        assert_eq!(arr.read(200).unwrap(), 88);
        // And the system keeps serving writes afterwards.
        arr.write(5, 99).unwrap();
        sys.flush().unwrap();
        assert_eq!(arr.read(5).unwrap(), 99);
    }

    #[test]
    fn committed_flush_is_not_replayed() {
        let cp = Arc::new(CrashPoint::new());
        let sys = BamSystem::with_crash_point(BamConfig::test_scale(), cp).unwrap();
        let arr = sys.create_array::<u64>(64).unwrap();
        arr.preload(&vec![0u64; 64]).unwrap();
        arr.write(3, 42).unwrap();
        sys.flush().unwrap();
        let journal = sys.journal().unwrap().snapshot();
        let report = sys.recover_from_journal(&journal).unwrap();
        assert_eq!(
            report.replayed_lines, 0,
            "a committed write-back must not be double-applied"
        );
        assert_eq!(arr.read(3).unwrap(), 42);
    }

    #[test]
    fn fault_injector_reaches_devices_through_the_public_stack() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        for d in 0..sys.config().num_ssds {
            sys.set_fault_injector(
                d,
                Some(Arc::new(|_cmd: &bam_nvme_sim::NvmeCommand| {
                    Some(bam_nvme_sim::NvmeStatus::InternalError)
                })),
            );
        }
        let arr = sys.create_array::<u64>(4096).unwrap();
        assert!(matches!(arr.read(0), Err(BamError::Storage(_))));
        for d in 0..sys.config().num_ssds {
            sys.set_fault_injector(d, None);
        }
        arr.preload(&(0..4096u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(arr.read(17).unwrap(), 17);
    }

    #[test]
    fn span_recorder_traces_the_functional_stack() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = sys.create_array::<u64>(1024).unwrap();
        arr.preload(&(0..1024u64).collect::<Vec<_>>()).unwrap();
        let rec = Arc::new(SpanRecorder::new());
        sys.set_span_recorder(Some(rec.clone()));
        for i in (0..1024u64).step_by(64) {
            arr.read(i).unwrap();
        }
        let events = rec.events();
        assert!(!events.is_empty());
        let has = |stage| events.iter().any(|e| e.stage == stage);
        assert!(has(bam_obs::Stage::CacheProbe));
        assert!(has(bam_obs::Stage::MissFetch));
        assert!(has(bam_obs::Stage::Doorbell));
        let export = sys.span_export();
        assert!(export.contains("\"name\":\"cache_probe\""));
        assert!(export.ends_with("]}\n"));
        sys.set_span_recorder(None);
        let before = rec.len();
        arr.read(0).unwrap();
        assert_eq!(rec.len(), before, "uninstalled recorder sees nothing");
        assert_eq!(
            sys.span_export(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n",
            "no recorder exports an empty, valid trace"
        );
    }

    #[test]
    fn recovery_emits_replay_spans_through_the_system() {
        let cp = Arc::new(CrashPoint::new());
        let sys = BamSystem::with_crash_point(BamConfig::test_scale(), cp).unwrap();
        let arr = sys.create_array::<u64>(512).unwrap();
        arr.preload(&vec![0u64; 512]).unwrap();
        arr.write(3, 77).unwrap();
        arr.write(200, 88).unwrap();
        let rec = Arc::new(SpanRecorder::new());
        sys.set_span_recorder(Some(rec.clone()));
        let journal = sys.journal().unwrap().snapshot();
        let report = sys.recover_from_journal(&journal).unwrap();
        let replays = rec
            .events()
            .iter()
            .filter(|e| e.stage == bam_obs::Stage::RecoveryReplay)
            .count() as u64;
        assert_eq!(replays, report.replayed_lines);
        assert!(report
            .to_string()
            .contains("replayed 2 writes across 2 lines"));
    }

    #[test]
    fn metrics_export_is_a_prometheus_exposition() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = sys.create_array::<u64>(1024).unwrap();
        arr.preload(&(0..1024u64).collect::<Vec<_>>()).unwrap();
        arr.read(0).unwrap();
        arr.read(0).unwrap();
        let text = sys.metrics_export();
        assert!(text.contains("# TYPE bam_cache_hits_total counter"));
        assert!(text.contains("# TYPE bam_cache_hit_rate gauge"));
        assert!(text.contains("# TYPE bam_fetch_latency_ns histogram"));
        assert!(text.contains("bam_fetch_latency_ns_bucket{le=\"+Inf\"}"));
        let m = sys.metrics();
        assert!(text.contains(&format!("bam_cache_misses_total {}\n", m.cache_misses)));
        assert!(text.contains(&format!("bam_read_requests_total {}\n", m.read_requests)));
    }

    #[test]
    fn doorbell_and_submission_counters_exposed() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = sys.create_array::<u64>(1024).unwrap();
        arr.preload(&(0..1024u64).collect::<Vec<_>>()).unwrap();
        for i in (0..1024u64).step_by(64) {
            arr.read(i).unwrap();
        }
        assert!(sys.total_submissions() > 0);
        assert!(sys.total_doorbell_writes() > 0);
        assert!(sys.total_doorbell_writes() <= sys.total_submissions());
    }
}
