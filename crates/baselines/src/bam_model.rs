//! Turning a BaM functional execution into time.
//!
//! Workloads run *functionally* on the real `bam-core` stack (real cache,
//! real queues, real data movement) and collect a
//! [`bam_core::MetricsSnapshot`]. This model converts those measured counts
//! into the execution-time breakdown the paper reports, using the same
//! Little's-law storage envelope and GPU service rates as every other system
//! model, so BaM and its baselines are compared under one methodology.

use bam_core::MetricsSnapshot;
use bam_timing::{ExecutionBreakdown, GpuRateModel, SsdArrayModel};

/// The BaM performance model.
#[derive(Debug, Clone)]
pub struct BamPerformanceModel {
    /// GPU service rates (cache probes, hot delivery, compute).
    pub gpu: GpuRateModel,
    /// Storage envelope of the SSD array behind the cache.
    pub storage: SsdArrayModel,
    /// Cache-line / I/O granularity in bytes.
    pub line_bytes: u64,
    /// Concurrent GPU threads sustaining outstanding requests.
    pub parallelism: u64,
}

impl BamPerformanceModel {
    /// Creates a model for an array of `storage` devices accessed at
    /// `line_bytes` granularity by `parallelism` concurrent threads.
    pub fn new(storage: SsdArrayModel, line_bytes: u64, parallelism: u64) -> Self {
        Self {
            gpu: GpuRateModel::a100(),
            storage,
            line_bytes,
            parallelism,
        }
    }

    /// Seconds the storage system needs to serve the measured misses and
    /// write-backs.
    pub fn storage_time_s(&self, metrics: &MetricsSnapshot) -> f64 {
        self.storage.mixed_time_s(
            metrics.read_requests,
            metrics.write_requests,
            self.line_bytes,
            self.parallelism,
        )
    }

    /// Seconds of cache-API overhead implied by the measured probe counts and
    /// hit traffic.
    pub fn cache_api_time_s(&self, metrics: &MetricsSnapshot) -> f64 {
        let probe = self.gpu.cache_probe_time_s(metrics.probe_attempts);
        let hit_bytes = metrics.cache_hits * self.line_bytes;
        probe + self.gpu.hot_delivery_time_s(hit_bytes)
    }

    /// Full breakdown for a run with `compute_ops` of workload compute.
    ///
    /// Storage latency overlaps with compute from other warps (the BaM
    /// computation model of Figure 3b), so the exposed storage component is
    /// whatever exceeds the GPU-side time.
    pub fn evaluate(&self, metrics: &MetricsSnapshot, compute_ops: u64) -> ExecutionBreakdown {
        let compute = self.gpu.compute_time_s(compute_ops);
        let cache_api = self.cache_api_time_s(metrics);
        let storage = self.storage_time_s(metrics);
        ExecutionBreakdown::overlapped(compute, cache_api, storage)
    }

    /// Effective application-perceived bandwidth (GB/s): bytes the
    /// application requested divided by end-to-end time.
    pub fn effective_bandwidth_gbps(&self, metrics: &MetricsSnapshot, compute_ops: u64) -> f64 {
        let t = self.evaluate(metrics, compute_ops).total_s();
        if t == 0.0 {
            return 0.0;
        }
        metrics.bytes_requested as f64 / t / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_nvme_sim::SsdSpec;

    fn metrics(hits: u64, misses: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            cache_hits: hits,
            cache_misses: misses,
            probe_attempts: hits + misses,
            read_requests: misses,
            bytes_read: misses * 4096,
            bytes_requested: (hits + misses) * 8,
            ..Default::default()
        }
    }

    fn model(ssds: usize) -> BamPerformanceModel {
        BamPerformanceModel::new(
            SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), ssds),
            4096,
            1 << 20,
        )
    }

    #[test]
    fn storage_bound_runs_expose_storage_time() {
        let m = model(1);
        let b = m.evaluate(&metrics(0, 10_000_000), 1_000_000);
        assert!(b.storage_io_s > b.compute_s);
    }

    #[test]
    fn hits_are_much_cheaper_than_misses() {
        let m = model(4);
        let hot = m.evaluate(&metrics(10_000_000, 0), 0).total_s();
        let cold = m.evaluate(&metrics(0, 10_000_000), 0).total_s();
        assert!(cold > hot * 5.0, "cold {cold} hot {hot}");
    }

    #[test]
    fn four_ssds_scale_storage_time_down() {
        let one = model(1).evaluate(&metrics(0, 8_000_000), 0).total_s();
        let four = model(4).evaluate(&metrics(0, 8_000_000), 0).total_s();
        let ratio = one / four;
        assert!((3.0..4.5).contains(&ratio), "scaling {ratio}");
    }

    #[test]
    fn compute_hides_modest_storage_traffic() {
        let m = model(4);
        // Heavy compute, light storage: storage fully hidden.
        let b = m.evaluate(&metrics(1_000, 1_000), 10_000_000_000);
        assert_eq!(b.storage_io_s, 0.0);
    }

    #[test]
    fn effective_bandwidth_reflects_requested_bytes() {
        let m = model(4);
        let met = metrics(1_000_000, 10_000);
        assert!(m.effective_bandwidth_gbps(&met, 0) > 0.0);
    }
}
