//! The workload demand description consumed by every system model.

use serde::{Deserialize, Serialize};

/// What a workload asks of the memory/storage system, independent of which
/// system serves it.
///
/// Workloads produce this from their functional execution (graph traversals,
/// query scans, ...); system models turn it into time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessDemand {
    /// Total size of the dataset as stored (what a load-everything system
    /// must move).
    pub dataset_bytes: u64,
    /// Unique bytes the computation actually dereferences.
    pub bytes_touched: u64,
    /// Number of on-demand accesses an on-demand system would make (cache
    /// misses at `access_bytes` granularity).
    pub on_demand_accesses: u64,
    /// Granularity of on-demand accesses in bytes (the BaM cache-line size).
    pub access_bytes: u64,
    /// Output bytes written back to storage (zero for read-only analytics).
    pub bytes_written: u64,
    /// Abstract compute work (edges relaxed, rows scanned, elements added);
    /// converted to seconds by [`bam_timing::GpuRateModel::compute_time_s`].
    pub compute_ops: u64,
    /// Number of kernel launches / processing phases (BFS iterations, tiles,
    /// row groups).
    pub phases: u64,
    /// Concurrent GPU threads available to overlap latency (for Little's-law
    /// throughput limits).
    pub parallelism: u64,
}

impl AccessDemand {
    /// A demand with everything zeroed except the dataset size — useful as a
    /// starting point in tests and builders.
    pub fn for_dataset(dataset_bytes: u64) -> Self {
        Self {
            dataset_bytes,
            bytes_touched: dataset_bytes,
            on_demand_accesses: 0,
            access_bytes: 4096,
            bytes_written: 0,
            compute_ops: 0,
            phases: 1,
            parallelism: 1 << 20,
        }
    }

    /// Fraction of the dataset the computation actually uses.
    pub fn selectivity(&self) -> f64 {
        if self.dataset_bytes == 0 {
            return 0.0;
        }
        self.bytes_touched as f64 / self.dataset_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity() {
        let mut d = AccessDemand::for_dataset(1000);
        d.bytes_touched = 100;
        assert!((d.selectivity() - 0.1).abs() < 1e-12);
        assert_eq!(AccessDemand::for_dataset(0).selectivity(), 0.0);
    }
}
