//! # bam-baselines — the systems BaM is compared against
//!
//! The paper evaluates BaM against a family of CPU-centric and DRAM-only
//! systems, none of which can be run directly here (they are CUDA-, driver-
//! or product-specific). Each is reproduced as a model that pays exactly the
//! overheads the paper attributes to it, parameterized by the constants in
//! `bam-timing` (page-fault rate, per-I/O CPU overhead, staging cost, ...):
//!
//! | Module | Paper system | Used in |
//! |---|---|---|
//! | [`target`] | "Target" (T): dataset in host memory, GPU zero-copy access (EMOGI-style) | Fig 7, Fig 15 |
//! | [`tiling`] | Proactive tiling: CPU partitions, transfers, launches per tile | §5.4 vectorAdd, Appendix B.1 |
//! | [`uvm`] | UVM/reactive page faults | Fig 15, Appendix B.2 |
//! | [`gds`] | NVIDIA GPUDirect Storage (CPU-initiated, GPU-direct data path) | Fig 5 |
//! | [`activepointers`] | ActivePointers + GPUfs (CPU-mediated GPU cache) | Fig 6 |
//! | [`rapids`] | RAPIDS data analytics (proactive column transfers) | Fig 12, Fig 14 |
//! | [`bam_model`] | BaM itself: converts functionally measured counts into time | Figs 4–12 |
//!
//! All models consume an [`AccessDemand`] describing what a workload needs
//! (dataset size, bytes actually touched, access granularity, compute) and
//! produce an [`bam_timing::ExecutionBreakdown`].

pub mod activepointers;
pub mod bam_model;
pub mod demand;
pub mod gds;
pub mod rapids;
pub mod target;
pub mod tiling;
pub mod uvm;

pub use activepointers::ActivePointersModel;
pub use bam_model::BamPerformanceModel;
pub use demand::AccessDemand;
pub use gds::GdsModel;
pub use rapids::{RapidsModel, RapidsQueryResult};
pub use target::TargetSystem;
pub use tiling::ProactiveTiling;
pub use uvm::UvmModel;
