//! The "Target" (T) host-memory system (Fig 7) and the ZeroCopy path of
//! Fig 15.
//!
//! The Target system holds the whole dataset in host DRAM and lets GPU
//! threads perform fine-grained coalesced (zero-copy) accesses over PCIe —
//! the strongest DRAM-only baseline the paper considers (EMOGI-style). Its
//! end-to-end cost has two parts the paper is explicit about (§2.1, §5.2):
//! the *file-loading* phase that must finish before any GPU compute starts,
//! and the compute phase whose memory traffic is limited by the PCIe link.

use bam_pcie::LinkSpec;
use bam_timing::{CpuStackModel, ExecutionBreakdown, GpuRateModel, SsdArrayModel};

use crate::demand::AccessDemand;

/// The host-memory Target system.
#[derive(Debug, Clone)]
pub struct TargetSystem {
    /// GPU service rates.
    pub gpu: GpuRateModel,
    /// CPU software stack (file loading path).
    pub cpu: CpuStackModel,
    /// Storage the dataset is initially loaded from.
    pub storage: SsdArrayModel,
    /// Host↔GPU link used by zero-copy accesses.
    pub gpu_link: LinkSpec,
    /// Whether to charge the initial file-loading phase (the paper reports
    /// Target both ways; end-to-end comparisons include it).
    pub include_load_time: bool,
}

impl TargetSystem {
    /// The configuration used in Figure 7: load from the same SSD array BaM
    /// uses, then serve zero-copy accesses over Gen4 ×16.
    pub fn prototype(storage: SsdArrayModel) -> Self {
        Self {
            gpu: GpuRateModel::a100(),
            cpu: CpuStackModel::epyc_host(),
            storage,
            gpu_link: LinkSpec::gen4_x16(),
            include_load_time: true,
        }
    }

    /// Seconds to load the dataset file from storage into host memory.
    pub fn load_time_s(&self, demand: &AccessDemand) -> f64 {
        // Sequential file read: large blocks, so the device bandwidth and the
        // host link are the limits, plus the CPU issue cost at 1 MiB I/Os.
        let chunk = 1 << 20;
        let reqs = demand.dataset_bytes.div_ceil(chunk);
        let device = self.storage.read_time_s(reqs, chunk, 1 << 16);
        let cpu = self.cpu.io_issue_time_s(reqs);
        device.max(cpu)
    }

    /// Seconds of the GPU compute phase: compute overlapped with zero-copy
    /// traffic for the bytes actually touched.
    pub fn compute_phase_s(&self, demand: &AccessDemand) -> f64 {
        let compute = self.gpu.compute_time_s(demand.compute_ops);
        let traffic = demand.bytes_touched as f64 / self.gpu_link.effective_bandwidth_bps();
        compute.max(traffic)
    }

    /// End-to-end execution breakdown.
    pub fn evaluate(&self, demand: &AccessDemand) -> ExecutionBreakdown {
        let load = if self.include_load_time {
            self.load_time_s(demand)
        } else {
            0.0
        };
        // Reported with the storage (load) component exposed, compute-phase
        // time under "compute", and no cache-API component.
        ExecutionBreakdown::serial(self.compute_phase_s(demand), 0.0, load)
    }

    /// Effective PCIe bandwidth achieved by the zero-copy compute phase in
    /// GB/s — the "ZeroCopy" series of Figure 15.
    pub fn zerocopy_bandwidth_gbps(&self, demand: &AccessDemand) -> f64 {
        let t = self.compute_phase_s(demand);
        if t == 0.0 {
            return 0.0;
        }
        demand.bytes_touched as f64 / t / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_nvme_sim::SsdSpec;

    fn demand_32gb() -> AccessDemand {
        let mut d = AccessDemand::for_dataset(32 << 30);
        d.bytes_touched = 24 << 30;
        d.compute_ops = 4_000_000_000;
        d
    }

    #[test]
    fn load_time_dominates_for_graph_scale_datasets() {
        let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let t = TargetSystem::prototype(storage);
        let d = demand_32gb();
        let load = t.load_time_s(&d);
        let compute = t.compute_phase_s(&d);
        // Loading 32 GB over ~4 SSDs takes seconds; this is the "initial file
        // loading can be the main performance bottleneck" observation (§2.1).
        assert!(load > 1.0, "load={load}");
        assert!(load > compute * 0.3);
        let b = t.evaluate(&d);
        assert!((b.total_s() - (load + compute)).abs() < 1e-9);
    }

    #[test]
    fn excluding_load_time_reduces_total() {
        let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let mut t = TargetSystem::prototype(storage);
        let with_load = t.evaluate(&demand_32gb()).total_s();
        t.include_load_time = false;
        let without = t.evaluate(&demand_32gb()).total_s();
        assert!(with_load > without);
    }

    #[test]
    fn zerocopy_bandwidth_capped_by_pcie() {
        let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let t = TargetSystem::prototype(storage);
        let mut d = demand_32gb();
        d.compute_ops = 0; // pure traffic
        let bw = t.zerocopy_bandwidth_gbps(&d);
        assert!(bw <= LinkSpec::gen4_x16().effective_bandwidth_gbps() + 1e-9);
        assert!(bw > 20.0);
    }
}
