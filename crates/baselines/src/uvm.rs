//! The UVM / reactive page-fault system (Appendix B.2, Fig 15).
//!
//! GPU threads access a unified address space; data not resident in GPU
//! memory triggers a page fault serviced by the CPU driver. The paper
//! measures the fault handler saturating at ~500 K faults/s with the CPU at
//! 100 %, which caps achievable bandwidth at roughly half the PCIe link for
//! 4 KB pages and makes storage-backed UVM unable to feed even one
//! consumer-grade SSD.

use bam_pcie::LinkSpec;
use bam_timing::{CpuStackModel, ExecutionBreakdown, GpuRateModel};

use crate::demand::AccessDemand;

/// The UVM reactive page-fault system.
#[derive(Debug, Clone)]
pub struct UvmModel {
    /// GPU service rates.
    pub gpu: GpuRateModel,
    /// CPU software stack (fault handling path).
    pub cpu: CpuStackModel,
    /// Host↔GPU link.
    pub gpu_link: LinkSpec,
    /// Migration granularity in bytes (UVM migrates 4 KB–2 MB; the paper's
    /// measurement uses small pages, which is UVM's worst case and the shape
    /// shown in Fig 15).
    pub page_bytes: u64,
}

impl UvmModel {
    /// The prototype host configuration with 4 KB pages.
    pub fn prototype() -> Self {
        Self {
            gpu: GpuRateModel::a100(),
            cpu: CpuStackModel::epyc_host(),
            gpu_link: LinkSpec::gen4_x16(),
            page_bytes: 4096,
        }
    }

    /// Number of page faults the demand generates.
    pub fn faults(&self, demand: &AccessDemand) -> u64 {
        demand.bytes_touched.div_ceil(self.page_bytes)
    }

    /// Effective host→GPU bandwidth (GB/s) the fault path can sustain — the
    /// "UVM" series of Figure 15.
    pub fn effective_bandwidth_gbps(&self, demand: &AccessDemand) -> f64 {
        let faults = self.faults(demand);
        if faults == 0 {
            return 0.0;
        }
        let fault_time = self.cpu.page_fault_time_s(faults);
        let wire_time = demand.bytes_touched as f64 / self.gpu_link.effective_bandwidth_bps();
        demand.bytes_touched as f64 / fault_time.max(wire_time) / 1e9
    }

    /// End-to-end execution breakdown for a demand whose data starts in host
    /// memory (the Fig 15 experiment; storage-backed UVM is strictly worse).
    pub fn evaluate(&self, demand: &AccessDemand) -> ExecutionBreakdown {
        let compute = self.gpu.compute_time_s(demand.compute_ops);
        let faults = self.faults(demand);
        let fault_time = self.cpu.page_fault_time_s(faults);
        let wire_time = demand.bytes_touched as f64 / self.gpu_link.effective_bandwidth_bps();
        let data_time = fault_time.max(wire_time);
        // Fault servicing overlaps poorly with compute (threads stall on the
        // faulting accesses); expose it fully, as the paper's measurements do.
        ExecutionBreakdown::serial(compute, 0.0, data_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvm_bandwidth_is_roughly_half_of_pcie_for_4k_pages() {
        // Fig 15: ~14.5 GB/s average vs ~26 GB/s peak (55.2%). With 4 KB
        // pages at 500 K faults/s the model gives 2 GB/s for pure 4 KB
        // faulting; the paper's 14.5 GB/s average reflects UVM's prefetching
        // of larger ranges, which we model by evaluating at the observed
        // effective migration granularity of 32 KB.
        let mut m = UvmModel::prototype();
        m.page_bytes = 32 * 1024;
        let d = AccessDemand::for_dataset(26 << 30);
        let bw = m.effective_bandwidth_gbps(&d);
        let frac = bw / m.gpu_link.effective_bandwidth_gbps();
        assert!((0.4..0.75).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn fault_rate_caps_throughput_for_small_pages() {
        let m = UvmModel::prototype();
        let d = AccessDemand::for_dataset(8 << 30);
        let bw = m.effective_bandwidth_gbps(&d);
        // 500K/s * 4KB ≈ 2 GB/s — cannot feed even one consumer SSD (§B.2).
        assert!(bw < 2.5, "bw {bw}");
    }

    #[test]
    fn uvm_slower_than_pure_wire_time() {
        let m = UvmModel::prototype();
        let mut d = AccessDemand::for_dataset(4 << 30);
        d.compute_ops = 1_000;
        let b = m.evaluate(&d);
        let wire = d.bytes_touched as f64 / m.gpu_link.effective_bandwidth_bps();
        assert!(b.total_s() > wire);
    }

    #[test]
    fn zero_demand_is_zero() {
        let m = UvmModel::prototype();
        let mut d = AccessDemand::for_dataset(0);
        d.bytes_touched = 0;
        assert_eq!(m.faults(&d), 0);
        assert_eq!(m.effective_bandwidth_gbps(&d), 0.0);
    }
}
