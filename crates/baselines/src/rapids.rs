//! RAPIDS-style GPU data-analytics baseline (Fig 12, Fig 14).
//!
//! RAPIDS executes queries on the GPU but relies on the CPU to find,
//! allocate, and transfer entire column row-groups into GPU memory before the
//! query kernel runs. The paper profiles queries Q0–Q5 on the NYC Taxi
//! dataset (with the file pinned in the CPU page cache, its best case) and
//! finds >73 % of end-to-end time in row-group initialization, ~23 % in
//! cleanup, and an I/O amplification that grows linearly with the number of
//! data-dependent columns because whole columns are transferred even though
//! only ~0.03 % of their rows are needed.

use bam_pcie::LinkSpec;
use bam_timing::{CpuStackModel, ExecutionBreakdown, GpuRateModel};
use serde::{Deserialize, Serialize};

/// Description of one analytics query as RAPIDS executes it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RapidsQuery {
    /// Number of table rows.
    pub rows: u64,
    /// Bytes per value in each column (8 for the taxi metrics).
    pub value_bytes: u64,
    /// Number of columns the query touches (1 for Q0, 2 for Q1, ... 6 for Q5).
    pub columns: u64,
    /// Number of rows that satisfy the filter predicate (data-dependent
    /// columns only need these).
    pub selected_rows: u64,
}

impl RapidsQuery {
    /// Bytes RAPIDS transfers: every touched column in full.
    pub fn bytes_transferred(&self) -> u64 {
        self.columns * self.rows * self.value_bytes
    }

    /// Bytes the query actually needs: the filter column in full plus the
    /// selected rows of each dependent column.
    pub fn bytes_needed(&self) -> u64 {
        self.rows * self.value_bytes + (self.columns - 1) * self.selected_rows * self.value_bytes
    }

    /// I/O amplification factor (Fig 12 / Fig 14 right axis).
    pub fn io_amplification(&self) -> f64 {
        self.bytes_transferred() as f64 / self.bytes_needed() as f64
    }
}

/// Result of evaluating one query under the RAPIDS model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RapidsQueryResult {
    /// Seconds spent in CPU row-group initialization (find + allocate +
    /// stage + transfer).
    pub row_group_init_s: f64,
    /// Seconds of GPU query execution.
    pub query_s: f64,
    /// Seconds of CPU-side cleanup.
    pub cleanup_s: f64,
    /// I/O amplification factor.
    pub io_amplification: f64,
}

impl RapidsQueryResult {
    /// End-to-end seconds.
    pub fn total_s(&self) -> f64 {
        self.row_group_init_s + self.query_s + self.cleanup_s
    }

    /// As an [`ExecutionBreakdown`] (CPU work charged to the middle
    /// component).
    pub fn breakdown(&self) -> ExecutionBreakdown {
        ExecutionBreakdown::serial(self.query_s, self.row_group_init_s + self.cleanup_s, 0.0)
    }
}

/// The RAPIDS analytics engine model.
#[derive(Debug, Clone)]
pub struct RapidsModel {
    /// CPU software stack.
    pub cpu: CpuStackModel,
    /// GPU rates for the query kernel.
    pub gpu: GpuRateModel,
    /// Host↔GPU link.
    pub gpu_link: LinkSpec,
    /// Fraction of row-group handling charged to cleanup (paper: ≈23 % of
    /// end-to-end vs ≈73 % init ⇒ cleanup ≈ 0.31 × init).
    pub cleanup_fraction_of_init: f64,
}

impl RapidsModel {
    /// The configuration profiled in Figure 14 (dataset pinned in the page
    /// cache, so no storage I/O at all).
    pub fn prototype() -> Self {
        Self {
            cpu: CpuStackModel::epyc_host(),
            gpu: GpuRateModel::a100(),
            gpu_link: LinkSpec::gen4_x16(),
            cleanup_fraction_of_init: 0.31,
        }
    }

    /// Evaluates one query.
    pub fn evaluate(&self, q: &RapidsQuery) -> RapidsQueryResult {
        let moved = q.bytes_transferred();
        // Row-group init: CPU staging of every column + the PCIe transfer
        // (not overlapped with the query kernel, which needs the whole row
        // group resident first).
        let staging = self.cpu.staging_time_s(moved);
        let transfer = moved as f64 / self.gpu_link.effective_bandwidth_bps();
        let row_group_init_s = staging + transfer;
        // GPU query: one scan op per row per column.
        let query_s = self.gpu.compute_time_s(q.rows * q.columns);
        let cleanup_s = row_group_init_s * self.cleanup_fraction_of_init;
        RapidsQueryResult {
            row_group_init_s,
            query_s,
            cleanup_s,
            io_amplification: q.io_amplification(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's taxi-query family: 1.7 B rows, 8-byte metrics, 511 K
    /// selected rows, Q0..Q5 touch 1..6 columns.
    fn taxi_query(columns: u64) -> RapidsQuery {
        RapidsQuery {
            rows: 1_700_000_000,
            value_bytes: 8,
            columns,
            selected_rows: 511_000,
        }
    }

    #[test]
    fn amplification_grows_linearly_with_columns() {
        // Fig 14: ~2x at Q1 growing to >6x at Q5.
        let q1 = taxi_query(2).io_amplification();
        let q5 = taxi_query(6).io_amplification();
        assert!((1.8..2.2).contains(&q1), "Q1 amplification {q1}");
        assert!(q5 > 5.5, "Q5 amplification {q5}");
        assert!(q5 > q1 * 2.5);
    }

    #[test]
    fn q0_has_no_amplification() {
        let q0 = taxi_query(1);
        assert!((q0.io_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_group_handling_dominates_query_time() {
        // Fig 14: init + cleanup account for >90% of end-to-end time.
        let m = RapidsModel::prototype();
        let r = m.evaluate(&taxi_query(2));
        let cpu_fraction = (r.row_group_init_s + r.cleanup_s) / r.total_s();
        assert!(cpu_fraction > 0.85, "cpu fraction {cpu_fraction}");
        assert!(r.breakdown().total_s() > 0.0);
    }

    #[test]
    fn more_columns_cost_more_time() {
        let m = RapidsModel::prototype();
        let t1 = m.evaluate(&taxi_query(1)).total_s();
        let t6 = m.evaluate(&taxi_query(6)).total_s();
        assert!(t6 > t1 * 3.0);
    }
}
