//! NVIDIA GPUDirect Storage model (Fig 5 baseline).
//!
//! GDS removes the CPU *data* path (SSD DMA goes straight to GPU memory) but
//! keeps the CPU *control* path: every I/O is issued through the Linux
//! storage stack by CPU threads. The paper's fio-based measurement shows GDS
//! saturating the GPU's PCIe link only at I/O sizes of 32 KB and above,
//! reaching just 23.6 % of link bandwidth at 4 KB.

use bam_pcie::{LinkSpec, TransferModel};
use bam_timing::{CpuStackModel, SsdArrayModel};

use crate::demand::AccessDemand;

/// The GPUDirect Storage system.
#[derive(Debug, Clone)]
pub struct GdsModel {
    /// CPU software stack issuing the I/Os.
    pub cpu: CpuStackModel,
    /// The SSD array data is read from.
    pub storage: SsdArrayModel,
    /// The GPU's PCIe link.
    pub gpu_link: LinkSpec,
}

impl GdsModel {
    /// The Fig 5 configuration: 4 SSDs, 16 CPU threads driving fio.
    pub fn prototype(storage: SsdArrayModel) -> Self {
        Self {
            cpu: CpuStackModel::epyc_host(),
            storage,
            gpu_link: LinkSpec::gen4_x16(),
        }
    }

    /// Seconds to transfer `total_bytes` sequentially at `io_bytes`
    /// granularity.
    pub fn transfer_time_s(&self, total_bytes: u64, io_bytes: u64) -> f64 {
        let transfers = total_bytes.div_ceil(io_bytes);
        // CPU issue path limits small I/Os; wire and device limit large ones.
        let issue = TransferModel::with_overhead(
            self.gpu_link,
            self.cpu.io_software_overhead_us,
            self.cpu.io_threads,
        )
        .total_seconds(transfers, io_bytes);
        let device = self.storage.read_time_s(transfers, io_bytes, 1 << 16);
        issue.max(device)
    }

    /// Achieved bandwidth (GB/s) for the given granularity — one point of the
    /// GDS series in Figure 5.
    pub fn achieved_bandwidth_gbps(&self, total_bytes: u64, io_bytes: u64) -> f64 {
        total_bytes as f64 / self.transfer_time_s(total_bytes, io_bytes) / 1e9
    }

    /// Fraction of the GPU link's peak achieved at the given granularity.
    pub fn link_utilization(&self, total_bytes: u64, io_bytes: u64) -> f64 {
        self.achieved_bandwidth_gbps(total_bytes, io_bytes)
            / self.gpu_link.effective_bandwidth_gbps()
    }

    /// Convenience: evaluates the utilization sweep of Figure 5.
    pub fn figure5_sweep(&self, total_bytes: u64, granularities: &[u64]) -> Vec<(u64, f64)> {
        granularities
            .iter()
            .map(|&g| (g, self.link_utilization(total_bytes, g)))
            .collect()
    }

    /// Seconds for a demand read entirely through GDS at its access size.
    pub fn read_demand_s(&self, demand: &AccessDemand) -> f64 {
        self.transfer_time_s(demand.bytes_touched, demand.access_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_nvme_sim::SsdSpec;

    fn gds() -> GdsModel {
        GdsModel::prototype(SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4))
    }

    #[test]
    fn fig5_shape_small_ios_cannot_saturate() {
        let g = gds();
        let total = 128u64 << 30;
        let at_4k = g.link_utilization(total, 4 << 10);
        let at_32k = g.link_utilization(total, 32 << 10);
        let at_256k = g.link_utilization(total, 256 << 10);
        // Paper: 23.6% at 4KB, saturation from 32KB upward.
        assert!((0.1..0.45).contains(&at_4k), "4KB util {at_4k}");
        assert!(at_32k > 0.8, "32KB util {at_32k}");
        assert!(at_256k > 0.9, "256KB util {at_256k}");
        assert!(at_4k < at_32k && at_32k <= at_256k + 1e-9);
    }

    #[test]
    fn sweep_is_monotone() {
        let g = gds();
        let sweep = g.figure5_sweep(16 << 30, &[4096, 8192, 16384, 32768, 65536]);
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9);
        }
    }

    #[test]
    fn demand_read_uses_access_granularity() {
        let g = gds();
        let mut d = AccessDemand::for_dataset(8 << 30);
        d.access_bytes = 4096;
        let small = g.read_demand_s(&d);
        d.access_bytes = 1 << 20;
        let large = g.read_demand_s(&d);
        assert!(small > large);
    }
}
