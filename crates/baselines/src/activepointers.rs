//! ActivePointers + GPUfs model (Fig 6 baseline, §5.1).
//!
//! ActivePointers layers a memory-map-style abstraction on GPUfs: GPU threads
//! get a software cache in GPU memory, but cache misses are serviced by
//! *CPU* threads that GPUfs signals from the GPU. The paper measures a peak
//! miss-handling throughput of 823 K IOPS (with data already in the CPU page
//! cache, i.e. no storage latency at all) and a peak hot-cache delivery
//! bandwidth ~11.2× lower than BaM's.

use bam_timing::{CpuStackModel, GpuRateModel};

/// The ActivePointers/GPUfs system.
#[derive(Debug, Clone)]
pub struct ActivePointersModel {
    /// CPU stack servicing misses (the GPUfs RPC path).
    pub cpu: CpuStackModel,
    /// GPU rates for the hot-cache path.
    pub gpu: GpuRateModel,
    /// Ratio of ActivePointers' software-translation overhead to BaM's
    /// coalesced probe path. Calibrated from Fig 6's hot-cache comparison
    /// (430 GB/s vs ≈38 GB/s ⇒ ≈11.2×).
    pub hot_path_overhead_factor: f64,
}

impl ActivePointersModel {
    /// The configuration measured in Figure 6.
    pub fn prototype() -> Self {
        Self {
            cpu: CpuStackModel::epyc_host(),
            gpu: GpuRateModel::a100(),
            hot_path_overhead_factor: 11.2,
        }
    }

    /// Peak miss-handling throughput in IOPS (independent of cache-line size;
    /// the CPU RPC path is the bottleneck).
    pub fn miss_iops(&self) -> f64 {
        self.cpu.gpufs_miss_rate_per_s
    }

    /// Cold-cache effective bandwidth (GB/s) for the given line size: every
    /// access misses and is serviced from CPU memory by the GPUfs path.
    pub fn cold_bandwidth_gbps(&self, line_bytes: u64) -> f64 {
        self.miss_iops() * line_bytes as f64 / 1e9
    }

    /// Hot-cache effective bandwidth (GB/s) for the given line size.
    pub fn hot_bandwidth_gbps(&self, line_bytes: u64) -> f64 {
        self.gpu.hot_cache_bandwidth_gbps(line_bytes) / self.hot_path_overhead_factor
    }

    /// Seconds to serve `accesses` accesses with the given hit rate.
    pub fn access_time_s(&self, accesses: u64, line_bytes: u64, hit_rate: f64) -> f64 {
        let hits = (accesses as f64 * hit_rate).round();
        let misses = accesses as f64 - hits;
        let hit_time = hits * line_bytes as f64 / (self.hot_bandwidth_gbps(line_bytes) * 1e9);
        let miss_time = misses / self.miss_iops();
        hit_time + miss_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_throughput_matches_measured_peak() {
        let ap = ActivePointersModel::prototype();
        assert!((ap.miss_iops() - 823e3).abs() < 1.0);
        // 8 KB transfers out of CPU memory ⇒ ~4.4 GB/s effective (paper).
        let bw = ap.cold_bandwidth_gbps(8192);
        assert!((4.0..8.0).contains(&bw), "bw {bw}");
    }

    #[test]
    fn hot_bandwidth_is_an_order_of_magnitude_below_bam() {
        let ap = ActivePointersModel::prototype();
        let bam_hot = ap.gpu.hot_cache_bandwidth_gbps(4096);
        let ap_hot = ap.hot_bandwidth_gbps(4096);
        let ratio = bam_hot / ap_hot;
        assert!((10.0..13.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn access_time_blends_hits_and_misses() {
        let ap = ActivePointersModel::prototype();
        let all_miss = ap.access_time_s(1_000_000, 4096, 0.0);
        let all_hit = ap.access_time_s(1_000_000, 4096, 1.0);
        let half = ap.access_time_s(1_000_000, 4096, 0.5);
        assert!(all_hit < half && half < all_miss);
    }
}
