//! Proactive tiling (Appendix B.1, §5.4 baseline).
//!
//! The CPU decomposes the dataset into tiles that fit in GPU memory,
//! proactively copies each tile to the GPU, launches a kernel per tile, and
//! aggregates the results. Its costs: CPU staging of every tile, a kernel
//! launch + synchronization per tile, and transferring the *whole* dataset
//! regardless of how much of it the computation uses (I/O amplification).
//! Transfers and compute of different tiles overlap (double buffering), as
//! the paper's vectorAdd baseline does.

use bam_pcie::LinkSpec;
use bam_timing::{CpuStackModel, ExecutionBreakdown, GpuRateModel, SsdArrayModel};

use crate::demand::AccessDemand;

/// The proactive-tiling CPU-centric system.
#[derive(Debug, Clone)]
pub struct ProactiveTiling {
    /// GPU service rates.
    pub gpu: GpuRateModel,
    /// CPU software stack (staging + launches).
    pub cpu: CpuStackModel,
    /// Storage the tiles are read from (None if the dataset is already in
    /// host memory / page cache).
    pub storage: Option<SsdArrayModel>,
    /// Host↔GPU link.
    pub gpu_link: LinkSpec,
    /// Tile size in bytes.
    pub tile_bytes: u64,
}

impl ProactiveTiling {
    /// A tiling system reading from the given storage with the given tile
    /// size.
    pub fn new(storage: Option<SsdArrayModel>, tile_bytes: u64) -> Self {
        Self {
            gpu: GpuRateModel::a100(),
            cpu: CpuStackModel::epyc_host(),
            storage,
            gpu_link: LinkSpec::gen4_x16(),
            tile_bytes: tile_bytes.max(1),
        }
    }

    /// Number of tiles needed to cover the dataset.
    pub fn num_tiles(&self, demand: &AccessDemand) -> u64 {
        demand.dataset_bytes.div_ceil(self.tile_bytes).max(1)
    }

    /// Bytes moved to the GPU: the whole dataset (plus output written back),
    /// independent of what is actually used — the I/O amplification the paper
    /// attributes to coarse-grained tiling.
    pub fn bytes_transferred(&self, demand: &AccessDemand) -> u64 {
        demand.dataset_bytes + demand.bytes_written
    }

    /// I/O amplification factor relative to the bytes actually needed.
    pub fn io_amplification(&self, demand: &AccessDemand) -> f64 {
        if demand.bytes_touched + demand.bytes_written == 0 {
            return 1.0;
        }
        self.bytes_transferred(demand) as f64 / (demand.bytes_touched + demand.bytes_written) as f64
    }

    /// End-to-end execution breakdown.
    pub fn evaluate(&self, demand: &AccessDemand) -> ExecutionBreakdown {
        let tiles = self.num_tiles(demand);
        let moved = self.bytes_transferred(demand);

        // Per-tile CPU work: staging + launch/sync. These serialize on the CPU.
        let cpu_time = self.cpu.staging_time_s(moved) + self.cpu.launch_sync_time_s(tiles);

        // Data movement: storage (if any) and PCIe; pipelined with compute.
        let pcie_time = moved as f64 / self.gpu_link.effective_bandwidth_bps();
        let storage_time = match &self.storage {
            Some(s) => {
                let chunk = 1 << 20;
                let read = s.read_time_s(demand.dataset_bytes.div_ceil(chunk), chunk, 1 << 16);
                let write = s.write_time_s(demand.bytes_written.div_ceil(chunk), chunk, 1 << 16);
                read.max(write)
            }
            None => 0.0,
        };
        // Double buffering overlaps the output write-back of one tile with
        // the input load of the next (the paper's vectorAdd baseline), so
        // reads and writes overlap rather than serialize.
        let transfer_time = pcie_time.max(storage_time);
        let compute_time = self.gpu.compute_time_s(demand.compute_ops);

        // Double buffering overlaps transfer and compute; CPU orchestration
        // is exposed serially (it is what Figure 14 shows dominating).
        let overlapped = transfer_time.max(compute_time);
        ExecutionBreakdown::serial(compute_time, cpu_time, overlapped - compute_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_nvme_sim::SsdSpec;

    #[test]
    fn amplification_grows_with_unused_data() {
        let t = ProactiveTiling::new(None, 1 << 30);
        let mut d = AccessDemand::for_dataset(10 << 30);
        d.bytes_touched = 1 << 30;
        assert!((t.io_amplification(&d) - 10.0).abs() < 0.01);
        d.bytes_touched = 10 << 30;
        assert!((t.io_amplification(&d) - 1.0).abs() < 0.01);
    }

    #[test]
    fn tile_count_and_transfer() {
        let t = ProactiveTiling::new(None, 1 << 30);
        let d = AccessDemand::for_dataset(10 << 30);
        assert_eq!(t.num_tiles(&d), 10);
        assert_eq!(t.bytes_transferred(&d), 10 << 30);
    }

    #[test]
    fn storage_backed_tiling_is_slower_than_host_backed() {
        let storage = SsdArrayModel::prototype(SsdSpec::samsung_980pro(), 1);
        let from_ssd = ProactiveTiling::new(Some(storage), 1 << 30);
        let from_host = ProactiveTiling::new(None, 1 << 30);
        let mut d = AccessDemand::for_dataset(8 << 30);
        d.compute_ops = 1_000_000;
        assert!(from_ssd.evaluate(&d).total_s() > from_host.evaluate(&d).total_s());
    }

    #[test]
    fn cpu_orchestration_is_visible_in_breakdown() {
        let t = ProactiveTiling::new(None, 256 << 20);
        let mut d = AccessDemand::for_dataset(8 << 30);
        d.compute_ops = 1_000_000;
        let b = t.evaluate(&d);
        assert!(
            b.cache_api_s > 0.0,
            "CPU orchestration charged to the middle component"
        );
        assert!(b.total_s() > 0.0);
    }
}
