//! Simulated GPU device memory.

use std::sync::Arc;

use bam_mem::{AllocError, BumpAllocator, ByteRegion, DevAddr, Pod, TypedSlice};

use crate::spec::GpuSpec;

/// Simulated GPU memory: a shared byte region plus a setup-time allocator.
///
/// The same region is handed to the simulated SSD controllers as their DMA
/// target, mirroring how GPUDirect RDMA exposes real HBM to NVMe devices.
/// All BaM state — cache lines, queue rings, I/O buffers — is carved out of
/// this region with [`GpuMemory::alloc`], just as the prototype allocates
/// everything at startup (§3.4).
#[derive(Debug, Clone)]
pub struct GpuMemory {
    region: Arc<ByteRegion>,
    allocator: Arc<BumpAllocator>,
    spec: GpuSpec,
}

impl GpuMemory {
    /// Creates GPU memory with `capacity_bytes` of backing store.
    ///
    /// The capacity may be far smaller than the spec's physical capacity;
    /// experiments only back the portions of HBM they actually touch.
    pub fn new(spec: GpuSpec, capacity_bytes: usize) -> Self {
        let region = Arc::new(ByteRegion::new(capacity_bytes));
        let allocator = Arc::new(BumpAllocator::new(capacity_bytes as u64));
        Self {
            region,
            allocator,
            spec,
        }
    }

    /// The GPU specification this memory belongs to.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The raw shared region (handed to SSD controllers as the DMA target).
    pub fn region(&self) -> Arc<ByteRegion> {
        self.region.clone()
    }

    /// The setup-time allocator.
    pub fn allocator(&self) -> &BumpAllocator {
        &self.allocator
    }

    /// Allocates `size` bytes aligned to `align`.
    ///
    /// # Errors
    ///
    /// Returns an [`AllocError`] when device memory is exhausted — the
    /// condition that forces real applications to spill to BaM-backed
    /// storage in the first place.
    pub fn alloc(&self, size: u64, align: u64) -> Result<DevAddr, AllocError> {
        self.allocator.alloc(size, align)
    }

    /// Allocates a typed array of `len` elements and returns a view over it.
    ///
    /// # Errors
    ///
    /// Returns an [`AllocError`] when device memory is exhausted.
    pub fn alloc_typed<T: Pod>(&self, len: usize) -> Result<TypedSlice<T>, AllocError> {
        let base = self.alloc((len * T::SIZE) as u64, 8)?;
        Ok(TypedSlice::new(self.region.clone(), base, len))
    }

    /// Bytes of device memory still unallocated.
    pub fn free_bytes(&self) -> u64 {
        self.allocator.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_allocation_roundtrip() {
        let mem = GpuMemory::new(GpuSpec::a100_80gb(), 1 << 20);
        let arr = mem.alloc_typed::<f32>(1000).unwrap();
        arr.set(999, 3.5);
        assert_eq!(arr.get(999), 3.5);
        assert!(mem.free_bytes() < 1 << 20);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mem = GpuMemory::new(GpuSpec::a100_80gb(), 4096);
        assert!(mem.alloc(8192, 8).is_err());
    }

    #[test]
    fn region_is_shared_with_dma_agents() {
        let mem = GpuMemory::new(GpuSpec::a100_80gb(), 1 << 16);
        let addr = mem.alloc(64, 8).unwrap();
        // A "DMA agent" holding the region handle sees GPU-side writes.
        let dma_view = mem.region();
        mem.region().write_bytes(addr, &[1, 2, 3]);
        let mut out = [0u8; 3];
        dma_view.read_bytes(addr, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }
}
