//! # bam-gpu-sim — GPU execution model
//!
//! BaM's central claim is that the GPU's massive thread-level parallelism can
//! drive storage directly: tens of thousands of GPU threads concurrently
//! probe a software cache, enqueue NVMe commands, ring doorbells, and poll
//! completions. To exercise those data structures with real concurrency,
//! this crate provides a warp-level execution model:
//!
//! * [`spec::GpuSpec`] — the A100-80GB resource envelope (Table 1).
//! * [`memory::GpuMemory`] — simulated device memory (a
//!   [`bam_mem::ByteRegion`] plus a setup-time allocator), shared with the
//!   simulated SSD controllers exactly as GPUDirect RDMA shares real HBM.
//! * [`warp`] — warp-wide primitives (`match_any`, `shfl`, `ballot`,
//!   leader election) mirroring the CUDA primitives BaM's coalescer uses
//!   (`__match_any_sync`, `__shfl_sync`, §3.4).
//! * [`exec::GpuExecutor`] — a kernel launcher that runs warps of 32 lanes
//!   across a pool of worker threads. Kernels are written per-warp, the same
//!   granularity at which BaM's coalescer operates.
//! * [`occupancy`] — per-thread register accounting used to reproduce the
//!   Figure 13 resource-usage discussion.
//!
//! The executor provides *functional* concurrency (real interleavings on
//! real atomics); simulated time is derived separately by `bam-timing`.

pub mod exec;
pub mod memory;
pub mod occupancy;
pub mod spec;
pub mod warp;

pub use exec::{GpuExecutor, KernelStats, WarpCtx};
pub use memory::GpuMemory;
pub use occupancy::{OccupancyModel, RegisterUsage};
pub use spec::GpuSpec;
pub use warp::{ballot, elect_leader, match_any, shfl, WARP_SIZE};
