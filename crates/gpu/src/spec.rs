//! GPU hardware specifications.

use bam_pcie::LinkSpec;
use serde::{Deserialize, Serialize};

/// Resource envelope of a GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable per thread.
    pub max_registers_per_thread: u32,
    /// HBM capacity in bytes.
    pub memory_bytes: u64,
    /// HBM bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Host PCIe link.
    pub pcie: LinkSpec,
}

impl GpuSpec {
    /// The NVIDIA A100-80GB PCIe card used in the prototype (Table 1).
    pub fn a100_80gb() -> Self {
        Self {
            name: "NVIDIA A100-80GB PCIe".into(),
            num_sms: 108,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            memory_bytes: 80 << 30,
            memory_bandwidth_gbps: 2039.0,
            pcie: LinkSpec::gen4_x16(),
        }
    }

    /// Maximum concurrently resident threads on the whole GPU.
    pub fn max_resident_threads(&self) -> u32 {
        self.num_sms * self.max_threads_per_sm
    }

    /// Maximum resident threads per SM when each thread uses
    /// `registers_per_thread` registers (the occupancy limiter discussed with
    /// Figure 13). The result is quantized to whole warps.
    pub fn occupancy_threads_per_sm(&self, registers_per_thread: u32) -> u32 {
        if registers_per_thread == 0 {
            return self.max_threads_per_sm;
        }
        let by_registers = self.registers_per_sm / registers_per_thread;
        let quantized = (by_registers / 32) * 32;
        quantized.min(self.max_threads_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_envelope() {
        let g = GpuSpec::a100_80gb();
        assert_eq!(g.max_resident_threads(), 108 * 2048);
        assert_eq!(g.memory_bytes, 80 << 30);
        assert!(g.pcie.effective_bandwidth_gbps() > 20.0);
    }

    #[test]
    fn occupancy_drops_with_register_pressure() {
        let g = GpuSpec::a100_80gb();
        assert_eq!(g.occupancy_threads_per_sm(0), 2048);
        assert_eq!(g.occupancy_threads_per_sm(32), 2048);
        let at_64 = g.occupancy_threads_per_sm(64);
        let at_128 = g.occupancy_threads_per_sm(128);
        let at_255 = g.occupancy_threads_per_sm(255);
        assert!(at_64 <= 1024 && at_64 > at_128);
        assert!(at_128 > at_255);
        assert_eq!(at_255 % 32, 0);
    }
}
