//! Warp-wide primitives.
//!
//! BaM's coalescer divides the threads of a warp into groups that access the
//! same cache line with a single `__match_any_sync`, elects a leader per
//! group, and broadcasts the leader's result with `__shfl_sync` (§3.4).
//! These functions provide the same semantics over per-lane value slices.

/// Number of lanes in a warp.
pub const WARP_SIZE: usize = 32;

/// Lane mask type (bit `i` set ⇔ lane `i` participates).
pub type LaneMask = u32;

/// Returns, for each lane, the mask of active lanes whose `values` entry
/// equals that lane's entry — the semantics of CUDA's `__match_any_sync`.
///
/// Inactive lanes (bit clear in `active`) receive a mask of 0.
///
/// # Panics
///
/// Panics if `values.len() != WARP_SIZE`.
///
/// # Examples
///
/// ```
/// use bam_gpu_sim::warp::match_any;
/// let mut vals = [0u64; 32];
/// vals[3] = 7;
/// vals[9] = 7;
/// let masks = match_any(&vals, u32::MAX);
/// assert_eq!(masks[3], (1 << 3) | (1 << 9));
/// assert_eq!(masks[3], masks[9]);
/// ```
pub fn match_any(values: &[u64], active: LaneMask) -> [LaneMask; WARP_SIZE] {
    assert_eq!(
        values.len(),
        WARP_SIZE,
        "match_any needs one value per lane"
    );
    let mut out = [0u32; WARP_SIZE];
    for lane in 0..WARP_SIZE {
        if active & (1 << lane) == 0 {
            continue;
        }
        let mut mask = 0u32;
        for other in 0..WARP_SIZE {
            if active & (1 << other) != 0 && values[other] == values[lane] {
                mask |= 1 << other;
            }
        }
        out[lane] = mask;
    }
    out
}

/// Elects the leader of a group: the lowest-numbered lane in `mask`.
///
/// Returns `None` for an empty mask.
pub fn elect_leader(mask: LaneMask) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// Warp-wide ballot: returns a mask with bit `i` set when `predicates[i]` is
/// true and lane `i` is active — the semantics of `__ballot_sync`.
///
/// # Panics
///
/// Panics if `predicates.len() != WARP_SIZE`.
pub fn ballot(predicates: &[bool], active: LaneMask) -> LaneMask {
    assert_eq!(
        predicates.len(),
        WARP_SIZE,
        "ballot needs one predicate per lane"
    );
    let mut mask = 0u32;
    for (lane, &p) in predicates.iter().enumerate() {
        if p && (active & (1 << lane) != 0) {
            mask |= 1 << lane;
        }
    }
    mask
}

/// Broadcasts lane `src_lane`'s entry of `values` to the caller — the
/// semantics of `__shfl_sync` from the perspective of any receiving lane.
///
/// # Panics
///
/// Panics if `values.len() != WARP_SIZE` or `src_lane >= WARP_SIZE`.
pub fn shfl<T: Copy>(values: &[T], src_lane: usize) -> T {
    assert_eq!(values.len(), WARP_SIZE, "shfl needs one value per lane");
    assert!(src_lane < WARP_SIZE, "source lane out of range");
    values[src_lane]
}

/// Iterates over the distinct groups produced by [`match_any`]: yields
/// `(leader_lane, group_mask)` once per group, in ascending leader order.
///
/// This is exactly the per-group work distribution BaM's coalescer performs:
/// each leader probes the cache once on behalf of its group.
pub fn groups(match_masks: &[LaneMask; WARP_SIZE], active: LaneMask) -> Vec<(usize, LaneMask)> {
    let mut seen: LaneMask = 0;
    let mut out = Vec::new();
    for (lane, &mask) in match_masks.iter().enumerate() {
        if active & (1 << lane) == 0 || seen & (1 << lane) != 0 || mask == 0 {
            continue;
        }
        let leader = elect_leader(mask).expect("non-empty mask has a leader");
        if leader == lane {
            out.push((leader, mask));
        }
        seen |= mask;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_any_partitions_lanes() {
        let mut vals = [0u64; WARP_SIZE];
        for (lane, v) in vals.iter_mut().enumerate() {
            *v = (lane % 4) as u64;
        }
        let masks = match_any(&vals, u32::MAX);
        // Lanes 0,4,8,...28 share value 0.
        let expected: u32 = (0..8).map(|i| 1u32 << (i * 4)).sum();
        assert_eq!(masks[0], expected);
        assert_eq!(masks[4], expected);
        // Union of distinct groups covers all lanes exactly once.
        let gs = groups(&masks, u32::MAX);
        assert_eq!(gs.len(), 4);
        let union: u32 = gs.iter().map(|(_, m)| m).fold(0, |a, b| a | b);
        assert_eq!(union, u32::MAX);
        let total: u32 = gs.iter().map(|(_, m)| m.count_ones()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn inactive_lanes_are_excluded() {
        let vals = [5u64; WARP_SIZE];
        let active = 0x0000_00FF;
        let masks = match_any(&vals, active);
        assert_eq!(masks[0], 0xFF);
        assert_eq!(masks[8], 0, "inactive lane gets empty mask");
        let gs = groups(&masks, active);
        assert_eq!(gs, vec![(0, 0xFF)]);
    }

    #[test]
    fn leader_is_lowest_lane() {
        assert_eq!(elect_leader(0b1010_0000), Some(5));
        assert_eq!(elect_leader(0), None);
    }

    #[test]
    fn ballot_respects_active_mask() {
        let mut preds = [false; WARP_SIZE];
        preds[1] = true;
        preds[2] = true;
        preds[31] = true;
        assert_eq!(ballot(&preds, u32::MAX), (1 << 1) | (1 << 2) | (1 << 31));
        assert_eq!(ballot(&preds, 0b0110), (1 << 1) | (1 << 2));
    }

    #[test]
    fn shfl_broadcasts() {
        let mut vals = [0u64; WARP_SIZE];
        vals[7] = 99;
        assert_eq!(shfl(&vals, 7), 99);
    }

    #[test]
    fn all_unique_values_give_singleton_groups() {
        let mut vals = [0u64; WARP_SIZE];
        for (lane, v) in vals.iter_mut().enumerate() {
            *v = lane as u64 * 1000;
        }
        let masks = match_any(&vals, u32::MAX);
        let gs = groups(&masks, u32::MAX);
        assert_eq!(gs.len(), 32);
        assert!(gs
            .iter()
            .all(|(leader, mask)| mask.count_ones() == 1 && mask == &(1u32 << leader)));
    }
}
