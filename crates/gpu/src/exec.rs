//! Kernel launch and warp-parallel execution.
//!
//! Kernels are expressed at warp granularity: the launcher creates one
//! [`WarpCtx`] per group of 32 consecutive global thread ids and invokes the
//! kernel closure for each, distributing warps across a pool of OS worker
//! threads. This gives the BaM data structures (queues, cache) real
//! concurrent exercise while keeping the thread count tractable: one OS
//! thread plays many warps, just as one SM timeslices many warps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::spec::GpuSpec;
use crate::warp::{LaneMask, WARP_SIZE};

/// Per-warp execution context handed to kernels.
#[derive(Debug, Clone, Copy)]
pub struct WarpCtx {
    /// Index of this warp within the launch.
    pub warp_id: usize,
    /// Global thread id of lane 0.
    pub base_thread: usize,
    /// Mask of lanes that correspond to real threads (the last warp of a
    /// launch may be partial).
    pub active: LaneMask,
}

impl WarpCtx {
    /// Global thread id of `lane`.
    pub fn thread_id(&self, lane: usize) -> usize {
        self.base_thread + lane
    }

    /// Whether `lane` is active in this warp.
    pub fn is_active(&self, lane: usize) -> bool {
        self.active & (1 << lane) != 0
    }

    /// Iterates over `(lane, global thread id)` for the active lanes.
    pub fn lanes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..WARP_SIZE)
            .filter(|&l| self.is_active(l))
            .map(|l| (l, self.thread_id(l)))
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> usize {
        self.active.count_ones() as usize
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Number of logical GPU threads launched.
    pub threads: usize,
    /// Number of warps executed.
    pub warps: usize,
    /// Host wall-clock seconds the functional execution took (not simulated
    /// time; useful for harness progress reporting only).
    pub wall_seconds: f64,
}

/// A warp-parallel kernel launcher.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use bam_gpu_sim::{GpuExecutor, GpuSpec};
///
/// let exec = GpuExecutor::new(GpuSpec::a100_80gb());
/// let counter = AtomicUsize::new(0);
/// exec.launch(1000, |warp| {
///     for (_lane, _tid) in warp.lanes() {
///         counter.fetch_add(1, Ordering::Relaxed);
///     }
/// });
/// assert_eq!(counter.load(Ordering::Relaxed), 1000);
/// ```
#[derive(Debug)]
pub struct GpuExecutor {
    spec: GpuSpec,
    workers: usize,
}

impl GpuExecutor {
    /// Creates an executor using one worker per available CPU core.
    pub fn new(spec: GpuSpec) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self { spec, workers }
    }

    /// Creates an executor with an explicit worker count (tests use 2–4 to
    /// provoke interleavings deterministically sized to the machine).
    pub fn with_workers(spec: GpuSpec, workers: usize) -> Self {
        Self {
            spec,
            workers: workers.max(1),
        }
    }

    /// The GPU specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Number of OS worker threads used to execute warps.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Launches `num_threads` logical GPU threads running `kernel`, one call
    /// per warp. Blocks until every warp has executed (kernel-grain
    /// synchronization, as on a real GPU).
    pub fn launch<K>(&self, num_threads: usize, kernel: K) -> KernelStats
    where
        K: Fn(&WarpCtx) + Sync,
    {
        if num_threads == 0 {
            return KernelStats::default();
        }
        let num_warps = num_threads.div_ceil(WARP_SIZE);
        let next_warp = AtomicU64::new(0);
        let start = Instant::now();
        let workers = self.workers.min(num_warps);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let w = next_warp.fetch_add(1, Ordering::Relaxed) as usize;
                    if w >= num_warps {
                        break;
                    }
                    let base_thread = w * WARP_SIZE;
                    let remaining = num_threads - base_thread;
                    let active: LaneMask = if remaining >= WARP_SIZE {
                        u32::MAX
                    } else {
                        (1u32 << remaining) - 1
                    };
                    let ctx = WarpCtx {
                        warp_id: w,
                        base_thread,
                        active,
                    };
                    kernel(&ctx);
                });
            }
        });
        KernelStats {
            threads: num_threads,
            warps: num_warps,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Convenience wrapper for per-thread kernels that do not need warp
    /// context: `f` is called once per logical thread id.
    pub fn launch_threads<F>(&self, num_threads: usize, f: F) -> KernelStats
    where
        F: Fn(usize) + Sync,
    {
        self.launch(num_threads, |warp| {
            for (_lane, tid) in warp.lanes() {
                f(tid);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn every_thread_runs_exactly_once() {
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
        let seen = Mutex::new(HashSet::new());
        let stats = exec.launch(1000, |warp| {
            for (_lane, tid) in warp.lanes() {
                assert!(seen.lock().unwrap().insert(tid), "thread {tid} ran twice");
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 1000);
        assert_eq!(stats.threads, 1000);
        assert_eq!(stats.warps, 32); // ceil(1000/32)
    }

    #[test]
    fn partial_last_warp_mask() {
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        let active_in_last = AtomicUsize::new(0);
        exec.launch(40, |warp| {
            if warp.warp_id == 1 {
                active_in_last.store(warp.active_lanes(), Ordering::Relaxed);
                assert!(warp.is_active(7));
                assert!(!warp.is_active(8));
            } else {
                assert_eq!(warp.active_lanes(), 32);
            }
        });
        assert_eq!(active_in_last.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        let stats = exec.launch(0, |_| panic!("kernel must not run"));
        assert_eq!(stats.warps, 0);
    }

    #[test]
    fn launch_threads_convenience() {
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 3);
        let sum = AtomicUsize::new(0);
        exec.launch_threads(100, |tid| {
            sum.fetch_add(tid, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn thread_ids_are_contiguous_per_warp() {
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        exec.launch(64, |warp| {
            let tids: Vec<usize> = warp.lanes().map(|(_, t)| t).collect();
            for pair in tids.windows(2) {
                assert_eq!(pair[1], pair[0] + 1);
            }
            assert_eq!(tids[0], warp.warp_id * 32);
        });
    }
}
