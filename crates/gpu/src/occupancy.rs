//! Register usage and occupancy accounting (paper Figure 13 and §5.5).
//!
//! BaM's cache probe and I/O stack are inlined into application kernels and
//! increase per-thread register usage. The paper reports the register counts
//! with and without BaM for each studied application and argues the
//! applications remain storage-bound, so the reduced occupancy does not
//! limit performance. This module provides a static cost model that
//! reproduces those counts and the resulting occupancy.

use serde::{Deserialize, Serialize};

use crate::spec::GpuSpec;

/// Register usage of one application kernel with and without BaM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterUsage {
    /// Application name as used in Figure 13.
    pub application: String,
    /// Registers per thread without BaM.
    pub without_bam: u32,
    /// Registers per thread with BaM inlined.
    pub with_bam: u32,
    /// Whether the compiler spills registers with BaM (observed for the
    /// RAPIDS workload in the paper).
    pub spills_with_bam: bool,
}

/// The register-cost model for BaM-augmented kernels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OccupancyModel {
    /// Registers consumed by the inlined BaM cache-probe path.
    pub cache_probe_registers: u32,
    /// Registers consumed by the inlined I/O-stack submission/poll path.
    pub io_stack_registers: u32,
    /// Architectural per-thread register cap.
    pub max_registers: u32,
}

impl Default for OccupancyModel {
    fn default() -> Self {
        Self {
            cache_probe_registers: 22,
            io_stack_registers: 18,
            max_registers: 255,
        }
    }
}

impl OccupancyModel {
    /// Registers a kernel uses once BaM is inlined: the base usage plus the
    /// cache and I/O stack paths, capped at the architectural limit (beyond
    /// which the compiler spills).
    pub fn with_bam(&self, base_registers: u32) -> u32 {
        (base_registers + self.cache_probe_registers + self.io_stack_registers)
            .min(self.max_registers)
    }

    /// Whether inlining BaM forces spilling for a kernel of the given base
    /// register usage.
    pub fn spills(&self, base_registers: u32) -> bool {
        base_registers + self.cache_probe_registers + self.io_stack_registers > self.max_registers
    }

    /// The Figure 13 table: register usage for every studied application.
    /// Base (without-BaM) counts are taken from the paper's figure.
    pub fn figure13(&self) -> Vec<RegisterUsage> {
        let apps: [(&str, u32); 5] = [
            ("BFS", 28),
            ("CC", 36),
            ("RAPIDS (Q0)", 29),
            ("RAPIDS (Q5)", 221),
            ("VecAdd", 21),
        ];
        apps.iter()
            .map(|&(name, base)| RegisterUsage {
                application: name.to_string(),
                without_bam: base,
                with_bam: self.with_bam(base),
                spills_with_bam: self.spills(base),
            })
            .collect()
    }

    /// Occupancy (resident threads per SM) for a kernel using
    /// `registers_per_thread`, on `gpu`.
    pub fn occupancy(&self, gpu: &GpuSpec, registers_per_thread: u32) -> u32 {
        gpu.occupancy_threads_per_sm(registers_per_thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bam_increases_register_usage_but_stays_capped() {
        let m = OccupancyModel::default();
        let rows = m.figure13();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.with_bam > r.without_bam || r.with_bam == m.max_registers);
            assert!(r.with_bam <= 255);
        }
        // The heavy RAPIDS query spills.
        let q5 = rows.iter().find(|r| r.application.contains("Q5")).unwrap();
        assert!(q5.spills_with_bam);
        let bfs = rows.iter().find(|r| r.application == "BFS").unwrap();
        assert!(!bfs.spills_with_bam);
    }

    #[test]
    fn occupancy_reduction_is_modest_for_bfs() {
        let m = OccupancyModel::default();
        let gpu = GpuSpec::a100_80gb();
        let without = m.occupancy(&gpu, 28);
        let with = m.occupancy(&gpu, m.with_bam(28));
        assert!(with <= without);
        // Still hundreds of resident threads per SM — plenty to stay
        // storage-bound, as §5.5 argues.
        assert!(with >= 640, "with-BaM occupancy {with}");
    }
}
