//! The virtual clock: nanosecond-granular simulated time.

use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// Nanoseconds in a `u64` cover ~584 years of simulated time — far beyond any
/// run — while keeping ordering exact (no float comparison in the event
/// queue).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time `ns` nanoseconds after the start.
    pub const fn from_ns(ns: u64) -> Self {
        Self(ns)
    }

    /// A time `us` microseconds after the start (rounded to whole ns).
    pub fn from_us(us: f64) -> Self {
        Self((us * 1e3).round().max(0.0) as u64)
    }

    /// Nanoseconds since the start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the start.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since the start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    /// Advances the clock by `rhs` nanoseconds.
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;

    /// Elapsed nanoseconds between two points (saturating at zero).
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_us(11.0);
        assert_eq!(t.as_ns(), 11_000);
        assert!((t.as_us() - 11.0).abs() < 1e-12);
        assert!((t.as_secs_f64() - 11.0e-6).abs() < 1e-18);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ns(100);
        let b = a + 50;
        assert!(b > a);
        assert_eq!(b - a, 50);
        assert_eq!(a - b, 0, "elapsed time saturates");
        let mut c = a;
        c += 25;
        assert_eq!(c.as_ns(), 125);
    }

    #[test]
    fn negative_us_clamps_to_zero() {
        assert_eq!(SimTime::from_us(-3.0).as_ns(), 0);
    }
}
