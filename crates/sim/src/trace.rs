//! Capturing the I/O stream of a functional run and replaying it under the
//! event engine.
//!
//! [`TraceRecorder`] implements [`bam_nvme_sim::SimHook`]: installed on a
//! `BamSystem`/`IoStack` (or a raw controller) it records every submitted
//! command. The resulting [`IoTrace`] preserves per-request routing (device,
//! queue pair) and direction, so [`IoTrace::replay`] reproduces the *measured*
//! traffic mix — not a synthetic approximation — under any arrival process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bam_nvme_sim::{IoEvent, SimHook};

use crate::engine::{self, RequestDesc, SimConfig, Workload};
use crate::report::SimReport;

/// An I/O stream captured from a functional run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IoTrace {
    /// One entry per stack-level submission, in submission order.
    pub requests: Vec<RequestDesc>,
}

impl IoTrace {
    /// Number of captured commands.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Replays the captured stream through the event engine under `workload`.
    ///
    /// Captured device/queue ids are mapped into the engine's geometry by
    /// modulo, so a trace from a small functional run can drive a full-scale
    /// array configuration.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn replay(&self, config: &SimConfig, workload: Workload) -> SimReport {
        engine::run(config, workload, &self.requests)
    }
}

/// A [`SimHook`] that records submissions and counts pipeline milestones.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    submits: Mutex<Vec<RequestDesc>>,
    device_fetches: AtomicU64,
    completions: AtomicU64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commands the controllers fetched so far.
    pub fn device_fetches(&self) -> u64 {
        self.device_fetches.load(Ordering::Relaxed)
    }

    /// Completions the controllers posted so far.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::Relaxed)
    }

    /// Takes the captured trace, leaving the recorder empty.
    pub fn take_trace(&self) -> IoTrace {
        IoTrace {
            requests: std::mem::take(&mut *self.submits.lock().expect("trace lock poisoned")),
        }
    }
}

impl SimHook for TraceRecorder {
    fn on_submit(&self, ev: &IoEvent) {
        self.submits
            .lock()
            .expect("trace lock poisoned")
            .push(RequestDesc {
                write: ev.write,
                bytes: ev.bytes,
                device: Some(ev.device),
                queue: Some(u32::from(ev.queue)),
            });
    }

    fn on_device_fetch(&self, _ev: &IoEvent) {
        self.device_fetches.fetch_add(1, Ordering::Relaxed);
    }

    fn on_complete(&self, _ev: &IoEvent) {
        self.completions.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: u32, queue: u16, write: bool, bytes: u64) -> IoEvent {
        IoEvent {
            device,
            queue,
            write,
            bytes,
            lba: 0,
        }
    }

    #[test]
    fn recorder_captures_submissions_in_order() {
        let rec = TraceRecorder::new();
        rec.on_submit(&ev(0, 1, false, 512));
        rec.on_submit(&ev(1, 2, true, 1024));
        rec.on_device_fetch(&ev(0, 1, false, 512));
        rec.on_complete(&ev(0, 1, false, 512));
        let trace = rec.take_trace();
        assert_eq!(trace.len(), 2);
        assert!(!trace.requests[0].write && trace.requests[1].write);
        assert_eq!(trace.requests[1].bytes, 1024);
        assert_eq!(trace.requests[1].device, Some(1));
        assert_eq!(rec.device_fetches(), 1);
        assert_eq!(rec.completions(), 1);
        assert!(rec.take_trace().is_empty(), "take drains the buffer");
    }

    #[test]
    fn replay_produces_latency_samples() {
        let rec = TraceRecorder::new();
        for i in 0..512u32 {
            rec.on_submit(&ev(i % 2, (i % 4) as u16, i % 8 == 0, 512));
        }
        let trace = rec.take_trace();
        let config = SimConfig::worked_example(11.0, 9);
        let report = trace.replay(&config, Workload::ClosedLoop { in_flight: 64 });
        assert_eq!(report.completed, 512);
        assert!(report.latency.p50_us >= 11.0 * 0.99);
    }
}
