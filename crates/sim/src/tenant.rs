//! Multi-tenant workloads: per-tenant arrival processes and their
//! superposition into one merged request stream.
//!
//! A [`TenantSpec`] describes one independent traffic source — its arrival
//! process, request mix, and queue-pair weight. [`Superposition`] merges the
//! open streams of N tenants into a single time-ordered arrival schedule
//! (closed-loop tenants refill event-driven inside the engine instead), with
//! each tenant driven by its own seeded RNG so adding a tenant never perturbs
//! another tenant's stream.

use bam_obs::SloSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::clock::SimTime;
use crate::dist::Mmpp2;

/// How one tenant's requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic arrivals at a fixed rate (the legacy open loop).
    FixedRate {
        /// Arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Poisson arrivals: exponential interarrival gaps at `rate_per_s`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// A fixed number of outstanding requests; every completion immediately
    /// launches the next (the GPU-threads-keep-queues-full model of §2.2).
    ClosedLoop {
        /// Concurrently outstanding requests.
        in_flight: u32,
    },
    /// Markov-modulated Poisson bursts ([`Mmpp2`]): the bursty-antagonist
    /// model.
    Mmpp(Mmpp2),
}

impl ArrivalProcess {
    /// How many of a tenant's `requests` arrivals are pre-scheduled before
    /// the engine starts: everything for open streams, only the initial
    /// in-flight window for closed loops (the rest refill event-driven on
    /// completion). The single source of truth keeping
    /// [`Superposition::generate`] and the engine's issued-count bookkeeping
    /// in sync.
    pub(crate) fn prescheduled(self, requests: u64) -> u64 {
        match self {
            ArrivalProcess::ClosedLoop { in_flight } => u64::from(in_flight).min(requests),
            _ => requests,
        }
    }
}

/// One independent traffic source in a multi-tenant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Stable identifier; also salts the tenant's private RNG stream.
    pub id: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// How this tenant's requests arrive.
    pub arrival: ArrivalProcess,
    /// Total requests the tenant issues over the run.
    pub requests: u64,
    /// How many of those requests are writes (Bresenham-interleaved).
    pub writes: u64,
    /// Relative queue-pair weight under
    /// [`crate::pipeline::QueuePairPolicy::WeightedFair`].
    pub weight: u32,
    /// Optional service-level objective: a p99 target evaluated over fixed
    /// virtual-time windows, reported per tenant (see
    /// [`crate::report::TenantSummary::slo`]).
    pub slo: Option<SloSpec>,
}

impl TenantSpec {
    /// A read-only tenant with weight 1 and the given arrival process.
    pub fn new(id: u32, name: &str, arrival: ArrivalProcess, requests: u64) -> Self {
        Self {
            id,
            name: name.to_string(),
            arrival,
            requests,
            writes: 0,
            weight: 1,
            slo: None,
        }
    }

    /// Attaches a p99 SLO (`target_p99_us` over `window_ns` evaluation
    /// windows) to the tenant.
    pub fn with_slo(mut self, target_p99_us: f64, window_ns: u64) -> Self {
        self.slo = Some(SloSpec {
            target_p99_us,
            window_ns,
        });
        self
    }

    /// The tenant's private RNG, derived from the run seed and its id so
    /// streams are independent and adding a tenant never shifts another's
    /// arrivals.
    pub(crate) fn rng(&self, run_seed: u64) -> StdRng {
        StdRng::seed_from_u64(
            run_seed ^ (u64::from(self.id) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// The merged arrival schedule of N tenants: every open-stream arrival with
/// its global request index, in time order, plus the initial batch of each
/// closed-loop tenant (scheduled at time zero; refills are event-driven).
#[derive(Debug, Clone, PartialEq)]
pub struct Superposition {
    /// `(instant, global request index)` for every pre-generated arrival,
    /// sorted by time (ties keep tenant declaration order).
    pub arrivals: Vec<(SimTime, u32)>,
}

impl Superposition {
    /// Generates and merges the arrival streams of `tenants`. `bases[t]` is
    /// tenant `t`'s first global request index (its requests are contiguous).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or a closed loop without capacity.
    pub fn generate(run_seed: u64, tenants: &[TenantSpec], bases: &[u64]) -> Self {
        let mut arrivals: Vec<(SimTime, u32)> = Vec::new();
        for (tenant, &base) in tenants.iter().zip(bases) {
            let mut rng = tenant.rng(run_seed);
            let n = tenant.requests;
            let times_ns: Vec<u64> = match tenant.arrival {
                ArrivalProcess::FixedRate { rate_per_s } => {
                    assert!(rate_per_s > 0.0, "fixed rate must be positive");
                    (0..n)
                        .map(|i| (i as f64 * 1e9 / rate_per_s).round() as u64)
                        .collect()
                }
                ArrivalProcess::Poisson { rate_per_s } => {
                    assert!(rate_per_s > 0.0, "Poisson rate must be positive");
                    let mut t = 0.0f64;
                    let mut out = Vec::with_capacity(n as usize);
                    let mut last = 0u64;
                    for _ in 0..n {
                        t += crate::dist::exp_gap_ns(rate_per_s, &mut rng);
                        last = last.max(t.round() as u64);
                        out.push(last);
                    }
                    out
                }
                ArrivalProcess::ClosedLoop { in_flight } => {
                    assert!(in_flight > 0, "closed loop needs at least one request");
                    vec![0; tenant.arrival.prescheduled(n) as usize]
                }
                ArrivalProcess::Mmpp(m) => m.arrival_times(n, &mut rng).0,
            };
            arrivals.extend(
                times_ns
                    .into_iter()
                    .enumerate()
                    .map(|(i, ns)| (SimTime::from_ns(ns), (base + i as u64) as u32)),
            );
        }
        // Stable sort: same-instant arrivals keep tenant declaration order.
        arrivals.sort_by_key(|&(at, _)| at);
        Self { arrivals }
    }

    /// Arrivals a tenant contributes before the engine starts (everything for
    /// open streams, the initial window for closed loops).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when no tenant contributed any arrival.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_matches_the_legacy_spacing() {
        let t = TenantSpec::new(0, "t0", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 4);
        let s = Superposition::generate(1, &[t], &[0]);
        let times: Vec<u64> = s.arrivals.iter().map(|&(at, _)| at.as_ns()).collect();
        assert_eq!(times, vec![0, 1000, 2000, 3000]);
    }

    #[test]
    fn superposition_merges_in_time_order_with_stable_ties() {
        let a = TenantSpec::new(0, "a", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 3);
        let b = TenantSpec::new(1, "b", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 3);
        let s = Superposition::generate(1, &[a, b], &[0, 3]);
        assert_eq!(s.len(), 6);
        // Ties at 0, 1000, 2000 ns: tenant 0's request precedes tenant 1's.
        let reqs: Vec<u32> = s.arrivals.iter().map(|&(_, r)| r).collect();
        assert_eq!(reqs, vec![0, 3, 1, 4, 2, 5]);
        assert!(s.arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn closed_loop_contributes_only_the_initial_window() {
        let t = TenantSpec::new(0, "cl", ArrivalProcess::ClosedLoop { in_flight: 4 }, 100);
        let s = Superposition::generate(1, &[t], &[0]);
        assert_eq!(s.len(), 4);
        assert!(s.arrivals.iter().all(|&(at, _)| at == SimTime::ZERO));
    }

    #[test]
    fn tenant_streams_are_independent_of_neighbours() {
        let mk = |id| TenantSpec::new(id, "p", ArrivalProcess::Poisson { rate_per_s: 1.0e5 }, 50);
        let solo = Superposition::generate(7, &[mk(1)], &[0]);
        let pair = Superposition::generate(7, &[mk(0), mk(1)], &[0, 50]);
        let solo_times: Vec<SimTime> = solo.arrivals.iter().map(|&(at, _)| at).collect();
        let pair_times: Vec<SimTime> = pair
            .arrivals
            .iter()
            .filter(|&&(_, r)| r >= 50)
            .map(|&(at, _)| at)
            .collect();
        assert_eq!(solo_times, pair_times, "tenant 1's stream must not move");
    }
}
