//! Multi-tenant workloads: per-tenant arrival processes and their
//! superposition into one merged request stream.
//!
//! A [`TenantSpec`] describes one independent traffic source — its arrival
//! process, request mix, and queue-pair weight. [`Superposition`] merges the
//! open streams of N tenants into a single time-ordered arrival schedule
//! (closed-loop tenants refill event-driven inside the engine instead), with
//! each tenant driven by its own seeded RNG so adding a tenant never perturbs
//! another tenant's stream.
//!
//! Explicit tenants top out at a handful of streams because generation is
//! O(tenants). [`TenantClass`] scales past that: a class describes `members`
//! statistically identical logical tenants whose merged stream is superposed
//! in *closed form* — M independent Poisson(λ) sources merge to one
//! Poisson(Mλ) source, exactly — so a million logical tenants cost one
//! engine-level stream. Individual arrivals are attributed back to synthetic
//! member ids by *thinning*: a dedicated per-class RNG (separate from the
//! arrival-time stream, so attribution never perturbs timing) draws each
//! arrival's member uniformly, which is precisely the decomposition theorem
//! for a Poisson superposition. On top, an optional [`AdmissionSpec`] arms
//! the engine's per-class SLO admission controller (see
//! [`crate::engine::run_classes`]).

use bam_obs::SloSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::SimTime;
use crate::dist::Mmpp2;

/// How one tenant's requests arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Deterministic arrivals at a fixed rate (the legacy open loop).
    FixedRate {
        /// Arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// Poisson arrivals: exponential interarrival gaps at `rate_per_s`.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// A fixed number of outstanding requests; every completion immediately
    /// launches the next (the GPU-threads-keep-queues-full model of §2.2).
    ClosedLoop {
        /// Concurrently outstanding requests.
        in_flight: u32,
    },
    /// Markov-modulated Poisson bursts ([`Mmpp2`]): the bursty-antagonist
    /// model.
    Mmpp(Mmpp2),
}

impl ArrivalProcess {
    /// How many of a tenant's `requests` arrivals are pre-scheduled before
    /// the engine starts: everything for open streams, only the initial
    /// in-flight window for closed loops (the rest refill event-driven on
    /// completion). The single source of truth keeping
    /// [`Superposition::generate`] and the engine's issued-count bookkeeping
    /// in sync.
    pub(crate) fn prescheduled(self, requests: u64) -> u64 {
        match self {
            ArrivalProcess::ClosedLoop { in_flight } => u64::from(in_flight).min(requests),
            _ => requests,
        }
    }
}

/// One independent traffic source in a multi-tenant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Stable identifier; also salts the tenant's private RNG stream.
    pub id: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// How this tenant's requests arrive.
    pub arrival: ArrivalProcess,
    /// Total requests the tenant issues over the run.
    pub requests: u64,
    /// How many of those requests are writes (Bresenham-interleaved).
    pub writes: u64,
    /// Relative queue-pair weight under
    /// [`crate::pipeline::QueuePairPolicy::WeightedFair`].
    pub weight: u32,
    /// Optional service-level objective: a p99 target evaluated over fixed
    /// virtual-time windows, reported per tenant (see
    /// [`crate::report::TenantSummary::slo`]).
    pub slo: Option<SloSpec>,
}

impl TenantSpec {
    /// A read-only tenant with weight 1 and the given arrival process.
    pub fn new(id: u32, name: &str, arrival: ArrivalProcess, requests: u64) -> Self {
        Self {
            id,
            name: name.to_string(),
            arrival,
            requests,
            writes: 0,
            weight: 1,
            slo: None,
        }
    }

    /// Attaches a p99 SLO (`target_p99_us` over `window_ns` evaluation
    /// windows) to the tenant.
    pub fn with_slo(mut self, target_p99_us: f64, window_ns: u64) -> Self {
        self.slo = Some(SloSpec {
            target_p99_us,
            window_ns,
        });
        self
    }

    /// The tenant's private RNG, derived from the run seed and its id so
    /// streams are independent and adding a tenant never shifts another's
    /// arrivals.
    pub(crate) fn rng(&self, run_seed: u64) -> StdRng {
        StdRng::seed_from_u64(
            run_seed ^ (u64::from(self.id) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Token-bucket admission policy of one [`TenantClass`], actuating its SLO.
///
/// The engine derives the controller's depth threshold from the class's SLO
/// budget via Little's law (see `engine::AdmissionCtl`): while the class's
/// in-flight population projects a p99 under the budget, requests are
/// admitted freely. Over budget, each admission costs one token; the bucket
/// refills at `refill_per_s` in *virtual* time up to `burst` tokens, so
/// short bursts ride through. Out of tokens, a request is deferred by
/// `defer_ns` (re-offered later, its wait surfaced as the
/// [`bam_obs::Stage::Admission`] dwell) at most `max_defers` times, then
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionSpec {
    /// Token-bucket capacity: over-budget admissions a burst may borrow.
    pub burst: u32,
    /// Token refill rate in tokens per virtual second.
    pub refill_per_s: f64,
    /// Deferral backoff in virtual nanoseconds.
    pub defer_ns: u64,
    /// Deferrals a request tolerates before it is rejected.
    pub max_defers: u32,
}

/// A class of `members` statistically identical logical tenants, merged
/// into one engine-level stream in closed form.
///
/// `member_arrival` is the process of *one* member; [`merged_arrival`]
/// (closed-form superposition) is what the engine actually schedules, so
/// event-loop cost is O(classes) regardless of `members`. Sampled requests
/// are attributed back to synthetic member ids by deterministic thinning
/// ([`member_of`]) from a dedicated RNG stream, preserving the engine's
/// bit-identity contract at any worker count.
///
/// [`merged_arrival`]: TenantClass::merged_arrival
/// [`member_of`]: TenantClass::member_of
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantClass {
    /// Stable identifier; also salts the class's RNG streams. A class and a
    /// [`TenantSpec`] with the same id draw identical arrival times for the
    /// same process — a class of one member *is* its explicit tenant.
    pub id: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// Logical tenants aggregated by this class.
    pub members: u32,
    /// The arrival process of one individual member.
    pub member_arrival: ArrivalProcess,
    /// Total requests the whole class offers over the run.
    pub requests: u64,
    /// How many of those requests are writes (Bresenham-interleaved).
    pub writes: u64,
    /// Relative queue-pair weight under
    /// [`crate::pipeline::QueuePairPolicy::WeightedFair`].
    pub weight: u32,
    /// Optional class-level service-level objective (evaluated over the
    /// class's merged completions).
    pub slo: Option<SloSpec>,
    /// Optional admission controller actuating the SLO in the arrival path.
    pub admission: Option<AdmissionSpec>,
}

impl TenantClass {
    /// A read-only class of `members` tenants, each arriving per
    /// `member_arrival`, offering `requests` in total.
    pub fn new(
        id: u32,
        name: &str,
        members: u32,
        member_arrival: ArrivalProcess,
        requests: u64,
    ) -> Self {
        Self {
            id,
            name: name.to_string(),
            members,
            member_arrival,
            requests,
            writes: 0,
            weight: 1,
            slo: None,
            admission: None,
        }
    }

    /// Attaches a p99 SLO (`target_p99_us` over `window_ns` evaluation
    /// windows) to the class.
    pub fn with_slo(mut self, target_p99_us: f64, window_ns: u64) -> Self {
        self.slo = Some(SloSpec {
            target_p99_us,
            window_ns,
        });
        self
    }

    /// Arms the class's admission controller. Requires an SLO (the
    /// controller's budget) — the engine asserts both are present.
    pub fn with_admission(mut self, admission: AdmissionSpec) -> Self {
        self.admission = Some(admission);
        self
    }

    /// The closed-form superposition of `members` independent
    /// `member_arrival` processes:
    ///
    /// * `Poisson(λ)` → `Poisson(Mλ)` — exact (superposition theorem).
    /// * `FixedRate(r)` → `FixedRate(Mr)` — the members' deterministic
    ///   combs merge to one comb at the aggregate rate.
    /// * [`Mmpp2`] → both state rates scaled by `M`, dwell times kept — the
    ///   *shared modulating environment* reading (all members calm or
    ///   bursty together: a flash crowd), under which the merge is again
    ///   closed-form.
    /// * `ClosedLoop(w)` → `ClosedLoop(Mw)` — each member keeps `w`
    ///   requests in flight.
    pub fn merged_arrival(&self) -> ArrivalProcess {
        assert!(self.members > 0, "a class needs at least one member");
        let m = f64::from(self.members);
        match self.member_arrival {
            ArrivalProcess::FixedRate { rate_per_s } => ArrivalProcess::FixedRate {
                rate_per_s: rate_per_s * m,
            },
            ArrivalProcess::Poisson { rate_per_s } => ArrivalProcess::Poisson {
                rate_per_s: rate_per_s * m,
            },
            ArrivalProcess::ClosedLoop { in_flight } => ArrivalProcess::ClosedLoop {
                in_flight: in_flight.saturating_mul(self.members),
            },
            ArrivalProcess::Mmpp(p) => ArrivalProcess::Mmpp(Mmpp2 {
                calm_rate_per_s: p.calm_rate_per_s * m,
                burst_rate_per_s: p.burst_rate_per_s * m,
                ..p
            }),
        }
    }

    /// Mean offered rate of the merged stream in requests per second —
    /// the admission controller's λ. `None` for closed loops (their rate is
    /// completion-driven, so there is no open-loop λ to project from;
    /// admission control requires an open process).
    pub fn offered_rate_per_s(&self) -> Option<f64> {
        let m = f64::from(self.members);
        match self.member_arrival {
            ArrivalProcess::FixedRate { rate_per_s } | ArrivalProcess::Poisson { rate_per_s } => {
                Some(rate_per_s * m)
            }
            ArrivalProcess::ClosedLoop { .. } => None,
            ArrivalProcess::Mmpp(p) => Some(p.mean_rate_per_s() * m),
        }
    }

    /// The class as one merged engine-level tenant: same id (so the arrival
    /// RNG stream matches an explicit [`TenantSpec`] of the merged process),
    /// with [`merged_arrival`](Self::merged_arrival) as its process.
    pub(crate) fn merged_spec(&self) -> TenantSpec {
        TenantSpec {
            id: self.id,
            name: self.name.clone(),
            arrival: self.merged_arrival(),
            requests: self.requests,
            writes: self.writes,
            weight: self.weight,
            slo: self.slo,
        }
    }

    /// Deterministic thinning: the synthetic member id of each of the
    /// class's `requests` arrivals, drawn uniformly from a dedicated
    /// per-class RNG stream.
    ///
    /// The thinning RNG is salted differently from the arrival-time RNG
    /// (`TenantSpec::rng`), so attribution consumes no arrival draws —
    /// the class's merged schedule is bit-identical whether or not member
    /// attribution is requested. Thinning runs at generation time on the
    /// sequential path, so it is invariant under the engine's worker count.
    pub fn member_of(&self, run_seed: u64) -> Vec<u32> {
        assert!(self.members > 0, "a class needs at least one member");
        let mut rng = self.thinning_rng(run_seed);
        (0..self.requests)
            .map(|_| rng.gen_range(0..self.members))
            .collect()
    }

    /// The class's private thinning RNG; the salt constant differs from
    /// [`TenantSpec::rng`]'s so the two per-id streams never collide.
    fn thinning_rng(&self, run_seed: u64) -> StdRng {
        StdRng::seed_from_u64(
            run_seed ^ (u64::from(self.id) + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        )
    }
}

/// The merged arrival schedule of N tenants: every open-stream arrival with
/// its global request index, in time order, plus the initial batch of each
/// closed-loop tenant (scheduled at time zero; refills are event-driven).
#[derive(Debug, Clone, PartialEq)]
pub struct Superposition {
    /// `(instant, global request index)` for every pre-generated arrival,
    /// sorted by time (ties keep tenant declaration order).
    pub arrivals: Vec<(SimTime, u32)>,
}

impl Superposition {
    /// Generates and merges the arrival streams of `tenants`. `bases[t]` is
    /// tenant `t`'s first global request index (its requests are contiguous).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or a closed loop without capacity.
    pub fn generate(run_seed: u64, tenants: &[TenantSpec], bases: &[u64]) -> Self {
        let mut arrivals: Vec<(SimTime, u32)> = Vec::new();
        for (tenant, &base) in tenants.iter().zip(bases) {
            let mut rng = tenant.rng(run_seed);
            let n = tenant.requests;
            let times_ns: Vec<u64> = match tenant.arrival {
                ArrivalProcess::FixedRate { rate_per_s } => {
                    assert!(rate_per_s > 0.0, "fixed rate must be positive");
                    (0..n)
                        .map(|i| (i as f64 * 1e9 / rate_per_s).round() as u64)
                        .collect()
                }
                ArrivalProcess::Poisson { rate_per_s } => {
                    assert!(rate_per_s > 0.0, "Poisson rate must be positive");
                    let mut t = 0.0f64;
                    let mut out = Vec::with_capacity(n as usize);
                    let mut last = 0u64;
                    for _ in 0..n {
                        t += crate::dist::exp_gap_ns(rate_per_s, &mut rng);
                        last = last.max(t.round() as u64);
                        out.push(last);
                    }
                    out
                }
                ArrivalProcess::ClosedLoop { in_flight } => {
                    assert!(in_flight > 0, "closed loop needs at least one request");
                    vec![0; tenant.arrival.prescheduled(n) as usize]
                }
                ArrivalProcess::Mmpp(m) => m.arrival_times(n, &mut rng).0,
            };
            arrivals.extend(
                times_ns
                    .into_iter()
                    .enumerate()
                    .map(|(i, ns)| (SimTime::from_ns(ns), (base + i as u64) as u32)),
            );
        }
        // Stable sort: same-instant arrivals keep tenant declaration order.
        arrivals.sort_by_key(|&(at, _)| at);
        Self { arrivals }
    }

    /// Generates the merged streams of `classes` — one engine-level stream
    /// per class regardless of member count — together with each request's
    /// thinned member attribution.
    ///
    /// Returns the superposition plus `member_of`, indexed by global request
    /// id: `member_of[base + i]` is the synthetic member (within its class)
    /// of the class's `i`-th request. Cost is O(total requests), never
    /// O(logical tenants).
    pub fn generate_classes(
        run_seed: u64,
        classes: &[TenantClass],
        bases: &[u64],
    ) -> (Self, Vec<u32>) {
        let specs: Vec<TenantSpec> = classes.iter().map(TenantClass::merged_spec).collect();
        let merged = Self::generate(run_seed, &specs, bases);
        let total: u64 = classes.iter().map(|c| c.requests).sum();
        let mut member_of = vec![0u32; total as usize];
        for (class, &base) in classes.iter().zip(bases) {
            let thinned = class.member_of(run_seed);
            member_of[base as usize..(base + class.requests) as usize].copy_from_slice(&thinned);
        }
        (merged, member_of)
    }

    /// Arrivals a tenant contributes before the engine starts (everything for
    /// open streams, the initial window for closed loops).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when no tenant contributed any arrival.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_matches_the_legacy_spacing() {
        let t = TenantSpec::new(0, "t0", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 4);
        let s = Superposition::generate(1, &[t], &[0]);
        let times: Vec<u64> = s.arrivals.iter().map(|&(at, _)| at.as_ns()).collect();
        assert_eq!(times, vec![0, 1000, 2000, 3000]);
    }

    #[test]
    fn superposition_merges_in_time_order_with_stable_ties() {
        let a = TenantSpec::new(0, "a", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 3);
        let b = TenantSpec::new(1, "b", ArrivalProcess::FixedRate { rate_per_s: 1.0e6 }, 3);
        let s = Superposition::generate(1, &[a, b], &[0, 3]);
        assert_eq!(s.len(), 6);
        // Ties at 0, 1000, 2000 ns: tenant 0's request precedes tenant 1's.
        let reqs: Vec<u32> = s.arrivals.iter().map(|&(_, r)| r).collect();
        assert_eq!(reqs, vec![0, 3, 1, 4, 2, 5]);
        assert!(s.arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn closed_loop_contributes_only_the_initial_window() {
        let t = TenantSpec::new(0, "cl", ArrivalProcess::ClosedLoop { in_flight: 4 }, 100);
        let s = Superposition::generate(1, &[t], &[0]);
        assert_eq!(s.len(), 4);
        assert!(s.arrivals.iter().all(|&(at, _)| at == SimTime::ZERO));
    }

    #[test]
    fn class_stream_is_bitwise_the_merged_explicit_tenant() {
        // A Poisson class of M members must schedule exactly what an
        // explicit TenantSpec with the merged rate (same id) schedules.
        let class = TenantClass::new(
            3,
            "pool",
            1000,
            ArrivalProcess::Poisson { rate_per_s: 50.0 },
            400,
        );
        let explicit = TenantSpec::new(
            3,
            "pool",
            ArrivalProcess::Poisson {
                rate_per_s: 50.0 * 1000.0,
            },
            400,
        );
        let (via_class, member_of) = Superposition::generate_classes(9, &[class], &[0]);
        let via_spec = Superposition::generate(9, &[explicit], &[0]);
        assert_eq!(via_class, via_spec);
        assert_eq!(member_of.len(), 400);
        assert!(member_of.iter().all(|&m| m < 1000));
    }

    #[test]
    fn single_member_class_is_its_explicit_tenant() {
        let class = TenantClass::new(
            1,
            "solo",
            1,
            ArrivalProcess::Poisson { rate_per_s: 2.0e5 },
            64,
        );
        let spec = TenantSpec::new(1, "solo", ArrivalProcess::Poisson { rate_per_s: 2.0e5 }, 64);
        let (via_class, member_of) = Superposition::generate_classes(5, &[class], &[0]);
        let via_spec = Superposition::generate(5, &[spec], &[0]);
        assert_eq!(via_class, via_spec);
        assert!(member_of.iter().all(|&m| m == 0));
    }

    #[test]
    fn thinning_is_deterministic_and_separate_from_arrival_draws() {
        let class = TenantClass::new(2, "c", 7, ArrivalProcess::Poisson { rate_per_s: 10.0 }, 200);
        assert_eq!(class.member_of(11), class.member_of(11));
        assert_ne!(class.member_of(11), class.member_of(12));
        // Arrival times must not depend on whether thinning ran.
        let (a, _) = Superposition::generate_classes(11, std::slice::from_ref(&class), &[0]);
        let b = Superposition::generate(11, &[class.merged_spec()], &[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn merged_arrival_scales_rates_by_member_count() {
        let c = TenantClass::new(
            0,
            "c",
            4,
            ArrivalProcess::FixedRate { rate_per_s: 250.0 },
            8,
        );
        match c.merged_arrival() {
            ArrivalProcess::FixedRate { rate_per_s } => assert!((rate_per_s - 1000.0).abs() < 1e-9),
            other => panic!("unexpected merge: {other:?}"),
        }
        assert_eq!(c.offered_rate_per_s(), Some(1000.0));
        let cl = TenantClass::new(0, "cl", 3, ArrivalProcess::ClosedLoop { in_flight: 2 }, 8);
        assert_eq!(
            cl.merged_arrival(),
            ArrivalProcess::ClosedLoop { in_flight: 6 }
        );
        assert_eq!(cl.offered_rate_per_s(), None);
    }

    #[test]
    fn tenant_streams_are_independent_of_neighbours() {
        let mk = |id| TenantSpec::new(id, "p", ArrivalProcess::Poisson { rate_per_s: 1.0e5 }, 50);
        let solo = Superposition::generate(7, &[mk(1)], &[0]);
        let pair = Superposition::generate(7, &[mk(0), mk(1)], &[0, 50]);
        let solo_times: Vec<SimTime> = solo.arrivals.iter().map(|&(at, _)| at).collect();
        let pair_times: Vec<SimTime> = pair
            .arrivals
            .iter()
            .filter(|&&(_, r)| r >= 50)
            .map(|&(at, _)| at)
            .collect();
        assert_eq!(solo_times, pair_times, "tenant 1's stream must not move");
    }
}
