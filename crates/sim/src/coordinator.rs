//! Coordinator for the sharded engine: a worker pool of per-SSD accounting
//! shards fed by the timing spine.
//!
//! The spine (`engine::drive_events`) stays sequential — the global RNG draw
//! order is part of the determinism contract — while each shard applies its
//! own device's accounting records concurrently. Records are batched and
//! flushed under conservative lookahead: a shard may lag the spine by at
//! most [`BATCH_RECORDS`] records or one [`lookahead_epsilon`] of virtual
//! time, whichever trips first. The epsilon is derived from the pipeline's
//! forwarding latencies — the soonest any cross-shard effect (a completion
//! refilling an arrival, the shared GPU link draining) can propagate — so
//! flushing on that horizon keeps every shard's view causally complete
//! without per-record synchronization.
//!
//! Determinism does not depend on the flush schedule: each shard receives
//! its records in global `(time, seq)` order regardless of batch boundaries,
//! and every merged aggregate is order-independent (see [`crate::shard`]).
//! The flush policy only bounds shard lag and channel traffic.

use std::sync::mpsc;

use bam_obs::{merge_indexed_spans, BlameRow, SpanEvent, SpanRecorder, WindowedSeries};

use crate::clock::SimTime;
use crate::engine::{
    drive_events_cursor, AdmissionState, EngineOutput, IssueState, RequestDesc, SimConfig,
};
use crate::pipeline::PipelineParams;
use crate::shard::{
    merge_tenants, occupancy_stats, Accounting, ObsPlan, OccupancyMeter, Rec, ShardMap, SpanOut,
};

/// Records a shard batch may accumulate before it is flushed regardless of
/// virtual time.
const BATCH_RECORDS: usize = 4096;

/// Outstanding batches per shard channel before the spine blocks
/// (backpressure, so a slow shard bounds memory instead of growing it).
const CHANNEL_DEPTH: usize = 4;

/// The conservative-lookahead flush stride in virtual nanoseconds: the
/// pipeline's forwarding path (doorbell forward → controller fetch →
/// completion post) is the soonest any cross-shard effect can propagate, so
/// one epsilon is a safe horizon; the stride factor amortizes channel
/// traffic over many horizons without affecting results (see module docs).
fn lookahead_epsilon(p: &PipelineParams) -> u64 {
    (p.qp_forward_ns + p.ctrl_fetch_ns + p.completion_ns).max(1) * 64
}

/// Runs the spine with `min(workers, num_ssds)` accounting shards and merges
/// their results into the same [`EngineOutput`] the inline engine produces.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded_core(
    config: &SimConfig,
    requests: &[RequestDesc],
    tenant_of: &[u32],
    qp_of: &[u32],
    arrivals: &[(SimTime, u32)],
    issue: &mut [IssueState],
    admission: &mut AdmissionState,
    recorder: Option<&SpanRecorder>,
    workers: usize,
    plan: &ObsPlan<'_>,
) -> EngineOutput {
    let map = ShardMap::new(workers, config.num_ssds, config.queue_pairs_per_ssd);
    let shards = map.shards;
    let total_qps = config.total_queue_pairs();
    let traced = recorder.is_some();

    // Dense per-shard slots: request i is its shard's local_of[i]-th request,
    // so shard arrays cost memory proportional to the shard's share.
    let mut local_of = vec![0u32; requests.len()];
    let mut slots = vec![0u32; shards];
    for (i, &qp) in qp_of.iter().enumerate() {
        let s = map.of_qp(qp);
        local_of[i] = slots[s];
        slots[s] += 1;
    }

    let epsilon = lookahead_epsilon(&config.pipeline);

    let (spine, mut accts) = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for &shard_slots in &slots {
            let (tx, rx) = mpsc::sync_channel::<Vec<Rec>>(CHANNEL_DEPTH);
            txs.push(tx);
            let acct = Accounting::new(
                requests,
                tenant_of,
                qp_of,
                Some(&local_of),
                shard_slots as usize,
                total_qps,
                plan,
                if traced {
                    SpanOut::Buffered(Vec::new())
                } else {
                    SpanOut::None
                },
            );
            handles.push(scope.spawn(move || {
                let mut acct = acct;
                for batch in rx {
                    for rec in batch {
                        acct.apply(rec);
                    }
                }
                acct
            }));
        }

        let mut buffers: Vec<Vec<Rec>> = (0..shards)
            .map(|_| Vec::with_capacity(BATCH_RECORDS))
            .collect();
        let mut next_flush = SimTime::ZERO;
        let spine = drive_events_cursor(
            config,
            requests,
            tenant_of,
            qp_of,
            arrivals,
            issue,
            admission,
            &mut |rec| {
                let at = rec.at();
                let s = map.route(&rec, qp_of);
                buffers[s].push(rec);
                if buffers[s].len() >= BATCH_RECORDS {
                    let batch =
                        std::mem::replace(&mut buffers[s], Vec::with_capacity(BATCH_RECORDS));
                    txs[s].send(batch).expect("shard worker exited early");
                }
                if at >= next_flush {
                    next_flush = at + epsilon;
                    for (buf, tx) in buffers.iter_mut().zip(&txs) {
                        if !buf.is_empty() {
                            tx.send(std::mem::take(buf))
                                .expect("shard worker exited early");
                        }
                    }
                }
            },
        );
        for (buf, tx) in buffers.into_iter().zip(&txs) {
            if !buf.is_empty() {
                tx.send(buf).expect("shard worker exited early");
            }
        }
        drop(txs);
        let accts: Vec<Accounting> = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        (spine, accts)
    });

    // Merge in global queue-pair order, so the f64 occupancy fold matches
    // the inline engine's bit for bit.
    let meters: Vec<OccupancyMeter> = (0..total_qps)
        .map(|qp| accts[map.of_qp(qp)].meters[qp as usize])
        .collect();
    let (occupancy_mean, occupancy_max) = occupancy_stats(&meters, spine.end);

    let mut read_latencies = Vec::new();
    let mut write_latencies = Vec::new();
    for acct in &mut accts {
        read_latencies.append(&mut acct.read_latencies);
        write_latencies.append(&mut acct.write_latencies);
    }

    // Replay the merged span stream into the caller's recorder in global
    // emission order — the same sequence of `record` calls the inline engine
    // makes, so ring-buffer wrap and drop counts match exactly too.
    if let Some(rec) = recorder {
        let parts: Vec<Vec<(u64, SpanEvent)>> = accts.iter_mut().map(|a| a.take_spans()).collect();
        for event in merge_indexed_spans(parts) {
            rec.record(event);
        }
    }

    // Fold the shard series and concatenate blame rows. The series merge is
    // commutative, and the blame report builder sorts rows by request id, so
    // both outputs are bit-identical to the inline engine's at any shard
    // count.
    let mut series = WindowedSeries::new(plan.telemetry.window_ns);
    let mut blame_rows: Vec<BlameRow> = Vec::new();
    for acct in &mut accts {
        series.merge(&acct.series);
        blame_rows.append(&mut acct.take_blame_rows());
    }

    let tenants = merge_tenants(accts.into_iter().map(|a| a.tenants).collect());

    EngineOutput {
        end: spine.end,
        depth: spine.depth,
        events: spine.events,
        peak_queued: spine.peak_queued,
        occupancy_mean,
        occupancy_max,
        read_latencies,
        write_latencies,
        tenants,
        series,
        blame_rows,
    }
}
