//! # bam-sim — discrete-event latency engine
//!
//! The reproduction's third methodology layer. The functional layer
//! (`bam-core` over the simulated substrates) answers *what happens*; the
//! analytic layer (`bam-timing`) answers *how long on average*; this crate
//! answers *when* — per-request latency distributions, tail percentiles,
//! in-flight-depth timelines, and queue dynamics that closed-form models
//! average away.
//!
//! * [`clock::SimTime`] — the virtual nanosecond clock.
//! * [`dist::LatencyDist`] — seedable fixed / uniform / lognormal service
//!   distributions.
//! * [`pipeline::PipelineParams`] — the doorbell → controller-fetch →
//!   media → DMA → completion pipeline, parameterized from the Table-2
//!   [`bam_nvme_sim::SsdSpec`]s and [`bam_pcie::LinkSpec`] occupancies.
//! * [`engine`] — the event loop: FIFO service centers per queue pair,
//!   media-channel pool per SSD, per-device and shared PCIe links.
//! * [`tenant`] — multi-tenant workloads: [`tenant::TenantSpec`] arrival
//!   sources (fixed-rate, Poisson, closed-loop, and [`dist::Mmpp2`] bursts)
//!   superposed into one stream ([`tenant::Superposition`]), with queue
//!   pairs allocated shared or weighted-fair
//!   ([`pipeline::QueuePairPolicy`]); [`tenant::TenantClass`] merges
//!   millions of statistically identical logical tenants in closed form
//!   (O(classes) event-loop cost) with thinned member attribution and
//!   optional SLO admission control ([`tenant::AdmissionSpec`]).
//! * [`report::SimReport`] — percentiles, depth timelines, occupancy, and
//!   the Little's-law cross-check against `bam_timing::littles`;
//!   [`report::MultiTenantReport`] adds per-tenant accounting and the
//!   interference metric.
//! * [`trace`] — a [`bam_nvme_sim::SimHook`] implementation that captures
//!   the I/O stream of a functional run for replay under the engine.
//!
//! ## Example: the paper's §2.2 worked example, event-driven
//!
//! ```
//! use bam_sim::{engine, SimConfig, Workload};
//!
//! // 512B reads at 6.35M IOPS against 11us latency...
//! let config = SimConfig::worked_example(11.0, 1);
//! let requests = engine::uniform_reads(&config, 20_000);
//! let report = engine::run(
//!     &config,
//!     Workload::OpenLoop { rate_per_s: 6.35e6 },
//!     &requests,
//! );
//! // ...needs ~70 requests in flight (T x L, Little's law).
//! let in_flight = report.depth.steady_state_mean();
//! let analytic = bam_timing::required_queue_depth(6.35e6, 11.0) as f64;
//! assert!((in_flight / analytic - 1.0).abs() < 0.05);
//! ```

pub mod clock;
mod coordinator;
pub mod dist;
pub mod engine;
mod event;
pub mod pipeline;
pub mod report;
mod shard;
pub mod tenant;
pub mod trace;

pub use bam_obs::{
    chrome_trace_json, evaluate_slo, BlameBreakdown, BlameReport, Exemplar, LatencyHisto,
    PromWriter, SloReport, SloSpec, SpanEvent, SpanId, SpanRecorder, Stage, StageBreakdown,
    WaterfallStep, WindowStats, WindowedSeries,
};
pub use clock::SimTime;
pub use dist::{LatencyDist, Mmpp2, MmppDwellStats};
pub use engine::{
    run, run_class_members, run_classes, run_classes_attributed, run_classes_observed,
    run_observed, run_sharded, run_sharded_traced, run_tenants, run_tenants_observed,
    run_tenants_sharded, run_tenants_sharded_traced, run_tenants_traced, run_tenants_with_workers,
    run_traced, run_traced_with_workers, run_with_workers, uniform_reads, RequestDesc, SimConfig,
    TelemetrySpec, Workload,
};
pub use pipeline::{fair_shares, tail_sigma, PipelineParams, QueuePairPolicy};
pub use report::{
    interference_ratio, AdmissionReport, DepthTimeline, LatencySummary, MemberSummary,
    MultiTenantReport, RunTelemetry, SimReport, TenantSummary,
};
pub use tenant::{AdmissionSpec, ArrivalProcess, Superposition, TenantClass, TenantSpec};
pub use trace::{IoTrace, TraceRecorder};
