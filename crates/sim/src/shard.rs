//! Per-shard accounting for the sharded engine.
//!
//! The timing spine (`engine::drive_events`) owns every service center and
//! the one seeded RNG — the global RNG draw order is part of the engine's
//! determinism contract, so timing decisions stay sequential. What *can*
//! parallelize is everything downstream of a timing decision: stage-dwell
//! histograms, span events, latency vectors, and occupancy meters are all
//! order-independent merges (integer histograms, min/max folds, sorted
//! vectors). The spine therefore emits a compact [`Rec`] stream, partitioned
//! by owning device, and each shard applies its slice independently.
//!
//! Every record about a request routes to the shard of the request's queue
//! pair, so a shard sees its own requests' records in global `(time, seq)`
//! order — exactly the order the inline engine would have applied them.
//! Merging shard results back (see [`merge_tenants`] and
//! [`occupancy_stats`]) reproduces the inline accounting bit for bit.

use bam_obs::{
    BlameMark, BlameRow, SpanEvent, SpanId, SpanRecorder, Stage, StageBreakdown, WindowedSeries,
};

use crate::clock::SimTime;
use crate::engine::{RequestDesc, TelemetrySpec};

/// What observability the engines collect during a run: the run-level
/// telemetry spec plus each tenant's SLO evaluation window (0 = none).
/// Both engines receive the same plan, so their outputs stay comparable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ObsPlan<'a> {
    pub(crate) telemetry: TelemetrySpec,
    pub(crate) tenant_slo_windows: &'a [u64],
    /// Thinned member attribution for class runs: `member_of[req]` is the
    /// synthetic member (within its class) each request belongs to. `None`
    /// skips per-member accounting entirely.
    pub(crate) member_of: Option<&'a [u32]>,
}

/// Time-weighted occupancy accounting for one queue pair.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct OccupancyMeter {
    integral_ns: u128,
    last_change: SimTime,
    current: u64,
    max: u64,
}

impl OccupancyMeter {
    pub(crate) fn update(&mut self, now: SimTime, occupancy: u64) {
        self.integral_ns += u128::from(now - self.last_change) * u128::from(self.current);
        self.last_change = now;
        self.current = occupancy;
        self.max = self.max.max(occupancy);
    }

    pub(crate) fn mean(&self, end: SimTime) -> f64 {
        let total = end - SimTime::ZERO;
        if total == 0 {
            return 0.0;
        }
        let integral =
            self.integral_ns + u128::from(end - self.last_change) * u128::from(self.current);
        integral as f64 / total as f64
    }
}

/// Mean-over-queue-pairs and global max of a meter bank. Both engines fold
/// meters in ascending queue-pair order, so the f64 summation order — and
/// therefore the reported mean — is identical.
pub(crate) fn occupancy_stats(meters: &[OccupancyMeter], end: SimTime) -> (f64, u64) {
    let mean = if meters.is_empty() {
        0.0
    } else {
        meters.iter().map(|m| m.mean(end)).sum::<f64>() / meters.len() as f64
    };
    let max = meters.iter().map(|m| m.max).max().unwrap_or(0);
    (mean, max)
}

/// One accounting fact from the timing spine. `idx` is the record's global
/// emission index — the total order that reconstructs the span stream after
/// a parallel run.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Rec {
    /// Request `req` entered the system at `at`.
    Arrive { req: u32, at: SimTime },
    /// Request `req` closed pipeline stage `stage` at `at`. `service_ns` is
    /// the stage's pure service time — the spine knows it exactly (it
    /// scheduled the departure) — so shards can split the dwell into service
    /// vs wait without re-deriving timing decisions.
    Stage {
        req: u32,
        stage: Stage,
        at: SimTime,
        idx: u64,
        service_ns: u64,
    },
    /// Request `req` completed at `at` (closes the Completion stage).
    Complete {
        req: u32,
        at: SimTime,
        idx: u64,
        service_ns: u64,
    },
    /// Queue pair `qp` changed occupancy at `at`.
    Meter {
        qp: u32,
        at: SimTime,
        occupancy: u64,
    },
    /// The admission controller pushed request `req` back at `at` (it will
    /// be re-offered after its class's deferral backoff).
    Defer { req: u32, at: SimTime },
    /// The admission controller rejected request `req` at `at` (it exhausted
    /// its deferral budget and never enters the pipeline).
    Reject { req: u32, at: SimTime },
}

impl Rec {
    /// Virtual instant the record was emitted at.
    pub(crate) fn at(&self) -> SimTime {
        match *self {
            Rec::Arrive { at, .. }
            | Rec::Stage { at, .. }
            | Rec::Complete { at, .. }
            | Rec::Meter { at, .. }
            | Rec::Defer { at, .. }
            | Rec::Reject { at, .. } => at,
        }
    }
}

/// Static shard topology: devices are dealt round-robin over
/// `min(workers, num_ssds)` shards, and a queue pair belongs to its device's
/// shard. Every record about a request routes to the shard of the request's
/// queue pair, so per-request state never crosses shards.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardMap {
    pub(crate) shards: usize,
    queue_pairs_per_ssd: u32,
}

impl ShardMap {
    pub(crate) fn new(workers: usize, num_ssds: u32, queue_pairs_per_ssd: u32) -> Self {
        Self {
            shards: workers.min(num_ssds as usize).max(1),
            queue_pairs_per_ssd,
        }
    }

    /// The shard owning queue pair `qp`.
    pub(crate) fn of_qp(&self, qp: u32) -> usize {
        ((qp / self.queue_pairs_per_ssd) as usize) % self.shards
    }

    /// The shard a record routes to.
    pub(crate) fn route(&self, rec: &Rec, qp_of: &[u32]) -> usize {
        match *rec {
            Rec::Arrive { req, .. }
            | Rec::Stage { req, .. }
            | Rec::Complete { req, .. }
            | Rec::Defer { req, .. }
            | Rec::Reject { req, .. } => self.of_qp(qp_of[req as usize]),
            Rec::Meter { qp, .. } => self.of_qp(qp),
        }
    }
}

/// Accounting-side state of one tenant (the spine keeps issue state; see
/// `engine::IssueState`).
#[derive(Debug)]
pub(crate) struct TenantAcc {
    /// Completed-request latencies, in completion order.
    pub(crate) latencies: Vec<u64>,
    /// When the tenant's first request arrived.
    pub(crate) first_arrival: Option<SimTime>,
    /// When the tenant's last request completed.
    pub(crate) last_completion: SimTime,
    /// Per-stage dwell-time histograms over the tenant's requests.
    pub(crate) stages: StageBreakdown,
    /// The tenant's completion telemetry on its SLO evaluation window
    /// (disabled — window 0 — for tenants without an SLO).
    pub(crate) slo_series: WindowedSeries,
    /// Requests first offered to the tenant (deferral re-offers not
    /// recounted).
    pub(crate) offered: u64,
    /// Admission-controller deferral decisions (one request may defer more
    /// than once).
    pub(crate) deferrals: u64,
    /// Requests the admission controller rejected outright.
    pub(crate) rejected: u64,
    /// Per-member completion histograms for class runs with thinned
    /// attribution (empty when `ObsPlan::member_of` is `None`).
    pub(crate) members: std::collections::BTreeMap<u32, bam_obs::LatencyHisto>,
}

impl TenantAcc {
    fn new(slo_window_ns: u64) -> Self {
        Self {
            latencies: Vec::new(),
            first_arrival: None,
            last_completion: SimTime::ZERO,
            stages: StageBreakdown::new(),
            slo_series: WindowedSeries::new(slo_window_ns),
            offered: 0,
            deferrals: 0,
            rejected: 0,
            members: std::collections::BTreeMap::new(),
        }
    }
}

/// Merges per-shard tenant accounts elementwise. Latency vectors concatenate
/// in shard order — every consumer is order-independent (histograms, min/max
/// folds, or an explicit sort) — first arrivals min-fold, last completions
/// max-fold, and stage histograms merge exactly.
pub(crate) fn merge_tenants(parts: Vec<Vec<TenantAcc>>) -> Vec<TenantAcc> {
    let mut parts = parts.into_iter();
    let mut merged = parts.next().expect("at least one shard");
    for part in parts {
        for (into, from) in merged.iter_mut().zip(part) {
            into.latencies.extend_from_slice(&from.latencies);
            into.first_arrival = match (into.first_arrival, from.first_arrival) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            into.last_completion = into.last_completion.max(from.last_completion);
            into.stages.merge(&from.stages);
            into.slo_series.merge(&from.slo_series);
            into.offered += from.offered;
            into.deferrals += from.deferrals;
            into.rejected += from.rejected;
            for (member, histo) in from.members {
                into.members.entry(member).or_default().merge(&histo);
            }
        }
    }
    merged
}

/// Where a shard's span events go: straight into the caller's recorder
/// (inline engine), into an index-tagged buffer for the post-run merge
/// (sharded engine), or nowhere (untraced).
pub(crate) enum SpanOut<'a> {
    None,
    Direct(&'a SpanRecorder),
    Buffered(Vec<(u64, SpanEvent)>),
}

/// One shard's accounting state: everything the inline engine used to track
/// per request and per tenant, applied from the record stream instead of
/// inside the event loop.
///
/// `local_of` densely remaps request ids onto this shard's own slots so the
/// per-request arrays cost memory proportional to the shard's share, not the
/// whole run ([`None`] means the identity map — the inline engine accounts
/// every request).
pub(crate) struct Accounting<'a> {
    requests: &'a [RequestDesc],
    tenant_of: &'a [u32],
    qp_of: &'a [u32],
    local_of: Option<&'a [u32]>,
    /// Thinned member attribution (class runs only; see
    /// [`ObsPlan::member_of`]).
    member_of: Option<&'a [u32]>,
    /// Arrival instant of each owned request (dense via `local_of`).
    arrive_at: Vec<SimTime>,
    /// Last stage boundary of each owned request.
    last_mark: Vec<SimTime>,
    pub(crate) meters: Vec<OccupancyMeter>,
    pub(crate) tenants: Vec<TenantAcc>,
    /// Completed-read latencies, in completion order.
    pub(crate) read_latencies: Vec<u64>,
    /// Completed-write latencies, in completion order.
    pub(crate) write_latencies: Vec<u64>,
    pub(crate) spans: SpanOut<'a>,
    /// Run-level windowed telemetry (disabled — window 0 — when the plan
    /// asks for none; every record is then a single branch).
    pub(crate) series: WindowedSeries,
    /// Per-request blame rows (empty when the plan disables blame). Dense
    /// via `local_of`, like the other per-request arrays.
    rows: Vec<BlameRow>,
    /// Whether blame rows are being collected.
    blame: bool,
}

impl<'a> Accounting<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        requests: &'a [RequestDesc],
        tenant_of: &'a [u32],
        qp_of: &'a [u32],
        local_of: Option<&'a [u32]>,
        slots: usize,
        total_qps: u32,
        plan: &ObsPlan<'a>,
        spans: SpanOut<'a>,
    ) -> Self {
        let blame = plan.telemetry.blame;
        Self {
            requests,
            tenant_of,
            qp_of,
            local_of,
            member_of: plan.member_of,
            arrive_at: vec![SimTime::ZERO; slots],
            last_mark: vec![SimTime::ZERO; slots],
            meters: vec![OccupancyMeter::default(); total_qps as usize],
            tenants: plan
                .tenant_slo_windows
                .iter()
                .map(|&w| TenantAcc::new(w))
                .collect(),
            read_latencies: Vec::new(),
            write_latencies: Vec::new(),
            spans,
            series: WindowedSeries::new(plan.telemetry.window_ns),
            rows: if blame {
                (0..slots)
                    .map(|_| BlameRow {
                        id: 0,
                        arrive_ns: 0,
                        marks: Vec::new(),
                    })
                    .collect()
            } else {
                Vec::new()
            },
            blame,
        }
    }

    #[inline]
    fn local(&self, req: u32) -> usize {
        match self.local_of {
            Some(map) => map[req as usize] as usize,
            None => req as usize,
        }
    }

    /// Closes one pipeline stage of `req` at `now`: the dwell since the
    /// request's previous stage boundary lands in its tenant's
    /// [`StageBreakdown`] and (when tracing) in the span output on the
    /// request's queue-pair track. Dwell times tile the request's life
    /// exactly — their sum is the end-to-end latency. `service_ns` is the
    /// stage's pure service time from the spine; the dwell's remainder is
    /// queueing wait, recorded into the windowed series and (when blame is
    /// on) the request's blame row.
    fn mark(&mut self, req: u32, stage: Stage, now: SimTime, idx: u64, service_ns: u64) {
        let slot = self.local(req);
        let start = self.last_mark[slot];
        let dwell = now - start;
        self.tenants[self.tenant_of[req as usize] as usize]
            .stages
            .record(stage, dwell);
        self.series
            .record_stage(now.as_ns(), stage, dwell, dwell - service_ns.min(dwell));
        if self.blame {
            self.rows[slot].marks.push(BlameMark {
                stage,
                end_ns: now.as_ns(),
                service_ns,
            });
        }
        match &mut self.spans {
            SpanOut::None => {}
            SpanOut::Direct(rec) => rec.record(Self::span_event(
                self.requests,
                self.qp_of,
                req,
                stage,
                start,
                now,
            )),
            SpanOut::Buffered(buf) => buf.push((
                idx,
                Self::span_event(self.requests, self.qp_of, req, stage, start, now),
            )),
        }
        self.last_mark[slot] = now;
    }

    fn span_event(
        requests: &[RequestDesc],
        qp_of: &[u32],
        req: u32,
        stage: Stage,
        start: SimTime,
        end: SimTime,
    ) -> SpanEvent {
        SpanEvent {
            span: SpanId(u64::from(req)),
            stage,
            start_ns: start.as_ns(),
            end_ns: end.as_ns(),
            track: qp_of[req as usize],
            arg: requests[req as usize].bytes,
        }
    }

    /// Applies one record. Records arrive in global `(time, seq)` order for
    /// this shard's requests and queue pairs, so the state transitions are
    /// the same ones the inline engine performs.
    pub(crate) fn apply(&mut self, rec: Rec) {
        match rec {
            Rec::Arrive { req, at } => {
                let slot = self.local(req);
                self.arrive_at[slot] = at;
                self.last_mark[slot] = at;
                self.series.record_arrival(at.as_ns());
                if self.blame {
                    self.rows[slot].id = u64::from(req);
                    self.rows[slot].arrive_ns = at.as_ns();
                }
                let tenant = &mut self.tenants[self.tenant_of[req as usize] as usize];
                tenant.first_arrival.get_or_insert(at);
                tenant.offered += 1;
                tenant.slo_series.record_arrival(at.as_ns());
            }
            Rec::Stage {
                req,
                stage,
                at,
                idx,
                service_ns,
            } => self.mark(req, stage, at, idx, service_ns),
            Rec::Complete {
                req,
                at,
                idx,
                service_ns,
            } => {
                self.mark(req, Stage::Completion, at, idx, service_ns);
                let latency = at - self.arrive_at[self.local(req)];
                self.series.record_completion(at.as_ns(), latency);
                let tenant = &mut self.tenants[self.tenant_of[req as usize] as usize];
                tenant.latencies.push(latency);
                tenant.last_completion = at;
                tenant.slo_series.record_completion(at.as_ns(), latency);
                if let Some(member_of) = self.member_of {
                    tenant
                        .members
                        .entry(member_of[req as usize])
                        .or_default()
                        .record(latency);
                }
                if self.requests[req as usize].write {
                    self.write_latencies.push(latency);
                } else {
                    self.read_latencies.push(latency);
                }
            }
            Rec::Meter { qp, at, occupancy } => {
                self.meters[qp as usize].update(at, occupancy);
                self.series.record_occupancy(at.as_ns(), occupancy);
            }
            Rec::Defer { req, at } => {
                let tenant = &mut self.tenants[self.tenant_of[req as usize] as usize];
                tenant.deferrals += 1;
                tenant.slo_series.record_deferral(at.as_ns());
                self.series.record_deferral(at.as_ns());
            }
            Rec::Reject { req, at } => {
                let tenant = &mut self.tenants[self.tenant_of[req as usize] as usize];
                tenant.rejected += 1;
                tenant.slo_series.record_rejection(at.as_ns());
                self.series.record_rejection(at.as_ns());
            }
        }
    }

    /// The shard's buffered `(emission index, span event)` pairs, if any.
    pub(crate) fn take_spans(&mut self) -> Vec<(u64, SpanEvent)> {
        match std::mem::replace(&mut self.spans, SpanOut::None) {
            SpanOut::Buffered(buf) => buf,
            _ => Vec::new(),
        }
    }

    /// The shard's blame rows (empty when blame was disabled).
    pub(crate) fn take_blame_rows(&mut self) -> Vec<BlameRow> {
        std::mem::take(&mut self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_deals_devices_round_robin() {
        let map = ShardMap::new(2, 4, 2);
        assert_eq!(map.shards, 2);
        // Queue pairs 0-1 → device 0 → shard 0; 2-3 → device 1 → shard 1 …
        assert_eq!(map.of_qp(0), 0);
        assert_eq!(map.of_qp(1), 0);
        assert_eq!(map.of_qp(2), 1);
        assert_eq!(map.of_qp(4), 0);
        assert_eq!(map.of_qp(7), 1);
        // Never more shards than devices, never zero.
        assert_eq!(ShardMap::new(8, 4, 2).shards, 4);
        assert_eq!(ShardMap::new(0, 4, 2).shards, 1);
    }

    #[test]
    fn merge_tenants_folds_min_max_and_concats() {
        let mut a = TenantAcc::new(0);
        a.latencies.push(10);
        a.first_arrival = Some(SimTime::from_ns(5));
        a.last_completion = SimTime::from_ns(100);
        let mut b = TenantAcc::new(0);
        b.latencies.push(20);
        b.first_arrival = Some(SimTime::from_ns(2));
        b.last_completion = SimTime::from_ns(50);
        let merged = merge_tenants(vec![vec![a], vec![b]]);
        assert_eq!(merged[0].latencies, vec![10, 20]);
        assert_eq!(merged[0].first_arrival, Some(SimTime::from_ns(2)));
        assert_eq!(merged[0].last_completion, SimTime::from_ns(100));
    }

    #[test]
    fn occupancy_stats_match_meter_arithmetic() {
        let mut m = OccupancyMeter::default();
        m.update(SimTime::from_ns(0), 2);
        m.update(SimTime::from_ns(100), 0);
        let (mean, max) = occupancy_stats(&[m], SimTime::from_ns(200));
        assert!((mean - 1.0).abs() < 1e-12, "{mean}");
        assert_eq!(max, 2);
        assert_eq!(occupancy_stats(&[], SimTime::from_ns(200)), (0.0, 0));
    }
}
