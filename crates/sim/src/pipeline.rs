//! Per-request pipeline parameters, derived from the Table-2 device specs
//! and the PCIe link specs.
//!
//! A request's life (paper Figure 2) is modelled as five stages:
//!
//! ```text
//! queue pair ──▶ controller fetch ──▶ media ──▶ SSD link ──▶ GPU link ──▶ CQ
//!  (serialized)     (pure delay)    (c channels)  (per-dev)    (shared)
//! ```
//!
//! Stage means are chosen so the *unloaded* end-to-end latency equals the
//! spec's published average latency, and stage capacities so the saturated
//! throughput matches the analytic envelope in [`bam_timing::ssd`]:
//!
//! * each queue pair forwards a command after a short protocol window but
//!   stays busy for `1 / PER_QUEUE_PAIR_IOPS` — the Fig-11 serialization —
//!   so per-QP latency stays small while per-QP throughput is capped;
//! * the media has `ceil(peak_iops × mean_service)` parallel channels, so
//!   its saturated rate reproduces the Table-2 IOPS points;
//! * each PCIe hop is a FIFO whose occupancy is `bytes / bandwidth`.

use bam_nvme_sim::{SsdSpec, SsdTechnology};
use bam_pcie::LinkSpec;
use bam_timing::ssd::PER_QUEUE_PAIR_IOPS;
use serde::{Deserialize, Serialize};

use crate::dist::LatencyDist;

/// GPU-side protocol time to win an SQ slot, write the entry, and (amortized)
/// ring the doorbell, in nanoseconds.
const QP_FORWARD_NS: u64 = 200;

/// How the array's queue pairs are allocated among tenants in a multi-tenant
/// run ([`crate::engine::run_tenants`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePairPolicy {
    /// Free-for-all: every tenant round-robins across every queue pair, so a
    /// bursty tenant's backlog sits in front of everyone else's commands.
    #[default]
    Shared,
    /// Weighted-fair: the global queue-pair space is partitioned among
    /// tenants in proportion to their weights ([`fair_shares`]); each tenant
    /// round-robins only within its own partition, so backlog stays with the
    /// tenant that caused it.
    ///
    /// Partitions are contiguous slices of the global queue-pair index
    /// space, and queue pairs map to devices as `qp / queue_pairs_per_ssd` —
    /// so when a tenant's share is smaller than the array, its media
    /// channels and per-device link are partitioned along with its queue
    /// pairs (an SR-IOV-style hard slice, not submission-slot arbitration
    /// over shared media).
    WeightedFair,
}

impl QueuePairPolicy {
    /// Short label used in printed tables and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            QueuePairPolicy::Shared => "shared",
            QueuePairPolicy::WeightedFair => "weighted-fair",
        }
    }
}

/// Splits `total` queue pairs among tenants in proportion to `weights`
/// (largest-remainder method), guaranteeing every tenant at least one queue
/// pair. Deterministic: remainder ties break toward lower indices.
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is zero, or `total` is smaller
/// than the number of tenants.
pub fn fair_shares(total: u32, weights: &[u32]) -> Vec<u32> {
    assert!(!weights.is_empty(), "no tenants to allocate to");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    assert!(
        total as usize >= weights.len(),
        "need at least one queue pair per tenant ({total} for {})",
        weights.len()
    );
    let sum: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut shares: Vec<u32> = weights
        .iter()
        .map(|&w| (u64::from(total) * u64::from(w) / sum) as u32)
        .collect();
    // Hand out the remainder by largest fractional part (lower index wins
    // ties), then lift any zero share to one by taking from the largest.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| {
        let frac = u64::from(total) * u64::from(weights[i]) % sum;
        (std::cmp::Reverse(frac), i)
    });
    let assigned: u32 = shares.iter().sum();
    for &i in order.iter().take((total - assigned) as usize) {
        shares[i] += 1;
    }
    for i in 0..shares.len() {
        while shares[i] == 0 {
            let largest = (0..shares.len()).max_by_key(|&j| shares[j]).unwrap();
            debug_assert!(shares[largest] > 1);
            shares[largest] -= 1;
            shares[i] += 1;
        }
    }
    debug_assert_eq!(shares.iter().sum::<u32>(), total);
    shares
}

/// Stage parameters of one SSD's request pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineParams {
    /// Latency a request spends winning its queue pair (protocol window).
    pub qp_forward_ns: u64,
    /// Time the queue pair stays serialized per command (throughput cap:
    /// `1e9 / qp_recovery_ns` commands per second per queue pair).
    pub qp_recovery_ns: u64,
    /// Doorbell flight plus controller SQ-entry fetch (pure delay).
    pub ctrl_fetch_ns: u64,
    /// Media service time for reads, per channel.
    pub read_media: LatencyDist,
    /// Media service time for writes, per channel.
    pub write_media: LatencyDist,
    /// Parallel media channels per SSD (internal NAND/Optane parallelism).
    pub media_channels: u32,
    /// Per-device link occupancy in ns per byte (x4 link).
    pub ssd_link_ns_per_byte: f64,
    /// Shared GPU-side link occupancy in ns per byte (x16 link).
    pub gpu_link_ns_per_byte: f64,
    /// Completion-entry flight plus polling pickup (pure delay).
    pub completion_ns: u64,
    /// Access size the link occupancies were derived for.
    pub access_bytes: u64,
    /// Write-ahead journal persist time charged to every *write* before it
    /// enters the queue pair (0 = journalling off). This is a vNV-Heap-style
    /// *bound*: a fixed worst-case persist latency, not a sampled
    /// distribution, so the durability cost in a sim run is deterministic.
    pub journal_flush_ns: u64,
}

/// Lognormal shape parameter per media technology: Optane's latency is
/// near-deterministic, NAND's collides with erases and garbage collection.
pub fn tail_sigma(technology: SsdTechnology) -> f64 {
    match technology {
        SsdTechnology::Dram => 0.02,
        SsdTechnology::Optane => 0.08,
        SsdTechnology::ZNand => 0.18,
        SsdTechnology::NandFlash => 0.45,
    }
}

impl PipelineParams {
    /// Derives a pipeline from a Table-2 device spec and the prototype's
    /// links, for `access_bytes` accesses. Media service is lognormal with
    /// the technology's [`tail_sigma`]; use [`PipelineParams::deterministic`]
    /// afterwards for fixed-latency validation runs.
    pub fn from_specs(
        spec: &SsdSpec,
        ssd_link: &LinkSpec,
        gpu_link: &LinkSpec,
        access_bytes: u64,
    ) -> Self {
        let qp_recovery_ns = (1e9 / PER_QUEUE_PAIR_IOPS).round() as u64;
        // Doorbell reaches the device across both hops; the controller then
        // fetches the 64-byte SQ entry from GPU memory (one round trip).
        let ctrl_fetch_ns = ((gpu_link.latency_us + ssd_link.latency_us) * 1e3).round() as u64;
        let completion_ns = ctrl_fetch_ns;
        let ssd_link_ns_per_byte = 1e9 / ssd_link.effective_bandwidth_bps();
        let gpu_link_ns_per_byte = 1e9 / gpu_link.effective_bandwidth_bps();
        let dma_ns = (access_bytes as f64 * (ssd_link_ns_per_byte + gpu_link_ns_per_byte)).round();
        // Everything that is not media, in microseconds.
        let overhead_us =
            (QP_FORWARD_NS + ctrl_fetch_ns + completion_ns) as f64 / 1e3 + dma_ns / 1e3;
        let sigma = tail_sigma(spec.technology);
        // The spec's published read latency is the unloaded end-to-end mean;
        // the media stage gets whatever the protocol overheads leave (floored
        // so ultra-low-latency pseudo-devices stay well-formed).
        let read_media_us = (spec.read_latency_us - overhead_us).max(0.5);
        // Channels sized so channels / read_service = peak read IOPS.
        let media_channels = (spec.read_iops(access_bytes) * read_media_us * 1e-6)
            .ceil()
            .max(1.0);
        // Reads and writes share the channel pool (they share the media), so
        // the write service time is sized for the published write-IOPS
        // ceiling: `channels / write_service = write_peak`. Devices whose
        // write path is slower than their read path (Optane's 1M vs 5.1M at
        // 512B) thus serve writes with longer channel occupancy — modelling
        // program time — with the spec's write latency as a lower bound.
        let write_latency_floor = (spec.write_latency_us - overhead_us).max(0.5);
        let write_media_us =
            (media_channels / spec.write_iops(access_bytes) * 1e6).max(write_latency_floor);
        let media_channels = media_channels as u32;
        Self {
            qp_forward_ns: QP_FORWARD_NS,
            qp_recovery_ns,
            ctrl_fetch_ns,
            read_media: LatencyDist::lognormal_mean_us(read_media_us, sigma),
            write_media: LatencyDist::lognormal_mean_us(write_media_us, sigma),
            media_channels,
            ssd_link_ns_per_byte,
            gpu_link_ns_per_byte,
            completion_ns,
            access_bytes,
            journal_flush_ns: 0,
        }
    }

    /// Charges every write a journal-persist stage before its queue pair: one
    /// redo record (header/checksum overhead of `record_overhead_bytes` plus
    /// the `access_bytes` payload) pushed over both links to the durable
    /// journal device, plus the controller-fetch round trip. The bound is
    /// fixed per configuration (vNV-Heap's worst-case persist discipline), so
    /// enabling the journal shifts write latency deterministically.
    pub fn with_journal_flush(mut self, record_overhead_bytes: u64) -> Self {
        let record_bytes = (record_overhead_bytes + self.access_bytes) as f64;
        let link_ns = record_bytes * (self.ssd_link_ns_per_byte + self.gpu_link_ns_per_byte);
        self.journal_flush_ns = self.ctrl_fetch_ns + link_ns.round() as u64;
        self
    }

    /// Replaces both media distributions with their fixed means (for
    /// deterministic validation runs).
    pub fn deterministic(mut self) -> Self {
        self.read_media = LatencyDist::Fixed {
            ns: self.read_media.mean_ns().round() as u64,
        };
        self.write_media = LatencyDist::Fixed {
            ns: self.write_media.mean_ns().round() as u64,
        };
        self
    }

    /// Link occupancy of one request on the per-device link, in ns.
    pub(crate) fn ssd_link_ns(&self) -> u64 {
        (self.access_bytes as f64 * self.ssd_link_ns_per_byte).round() as u64
    }

    /// Link occupancy of one request on the shared GPU link, in ns.
    pub(crate) fn gpu_link_ns(&self) -> u64 {
        (self.access_bytes as f64 * self.gpu_link_ns_per_byte).round() as u64
    }

    /// Mean unloaded end-to-end read latency of this pipeline, in µs.
    pub fn unloaded_read_latency_us(&self) -> f64 {
        (self.qp_forward_ns + self.ctrl_fetch_ns + self.completion_ns) as f64 / 1e3
            + self.read_media.mean_ns() / 1e3
            + (self.ssd_link_ns() + self.gpu_link_ns()) as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_matches_table2() {
        for spec in [
            SsdSpec::intel_optane_p5800x(),
            SsdSpec::samsung_pm1735(),
            SsdSpec::samsung_980pro(),
        ] {
            let p =
                PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 512);
            let l = p.unloaded_read_latency_us();
            assert!(
                (l / spec.read_latency_us - 1.0).abs() < 0.01,
                "{}: unloaded {l}us vs spec {}us",
                spec.name,
                spec.read_latency_us
            );
        }
    }

    #[test]
    fn media_channels_reproduce_peak_iops() {
        let spec = SsdSpec::intel_optane_p5800x();
        let p = PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 512);
        let rate = p.media_channels as f64 / (p.read_media.mean_ns() * 1e-9);
        // The ceil() on channels may overshoot slightly, never undershoot.
        assert!(rate >= spec.read_iops_512 * 0.999, "rate {rate}");
        assert!(rate <= spec.read_iops_512 * 1.10, "rate {rate}");
    }

    #[test]
    fn write_service_caps_write_throughput() {
        let spec = SsdSpec::intel_optane_p5800x();
        let p = PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 512);
        let rate = f64::from(p.media_channels) / (p.write_media.mean_ns() * 1e-9);
        assert!(
            (rate / spec.write_iops_512 - 1.0).abs() < 0.05,
            "saturated write rate {rate} vs spec {}",
            spec.write_iops_512
        );
    }

    #[test]
    fn qp_recovery_caps_per_queue_throughput() {
        let spec = SsdSpec::samsung_980pro();
        let p =
            PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 4096);
        let per_qp = 1e9 / p.qp_recovery_ns as f64;
        assert!((per_qp / PER_QUEUE_PAIR_IOPS - 1.0).abs() < 0.01);
    }

    #[test]
    fn nand_tail_is_heavier_than_optane() {
        assert!(tail_sigma(SsdTechnology::NandFlash) > tail_sigma(SsdTechnology::Optane));
    }

    #[test]
    fn fair_shares_proportional_and_exhaustive() {
        assert_eq!(fair_shares(8, &[1, 1]), vec![4, 4]);
        assert_eq!(fair_shares(8, &[3, 1]), vec![6, 2]);
        assert_eq!(fair_shares(8, &[1, 1, 1, 1, 1, 1, 1, 1]), vec![1; 8]);
        // Remainders go to the largest fractional parts, lower index first.
        assert_eq!(fair_shares(10, &[1, 1, 1]), vec![4, 3, 3]);
        // Every allocation is exhaustive.
        for (total, weights) in [(7u32, vec![2u32, 5]), (128, vec![1, 2, 3, 4])] {
            assert_eq!(fair_shares(total, &weights).iter().sum::<u32>(), total);
        }
    }

    #[test]
    fn fair_shares_guarantees_a_queue_pair_to_tiny_weights() {
        let shares = fair_shares(8, &[1000, 1, 1]);
        assert_eq!(shares.iter().sum::<u32>(), 8);
        assert!(shares.iter().all(|&s| s >= 1), "{shares:?}");
        assert!(shares[0] >= 6);
    }

    #[test]
    #[should_panic(expected = "at least one queue pair per tenant")]
    fn fair_shares_rejects_too_few_queue_pairs() {
        fair_shares(2, &[1, 1, 1]);
    }

    #[test]
    fn journal_flush_defaults_off_and_scales_with_record_size() {
        let spec = SsdSpec::intel_optane_p5800x();
        let p =
            PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 4096);
        assert_eq!(p.journal_flush_ns, 0, "journalling must be opt-in");
        let small = p.clone().with_journal_flush(48);
        let large = p.with_journal_flush(4096);
        assert!(small.journal_flush_ns > small.ctrl_fetch_ns);
        assert!(large.journal_flush_ns > small.journal_flush_ns);
    }

    #[test]
    fn deterministic_strips_randomness_but_keeps_means() {
        let spec = SsdSpec::samsung_pm1735();
        let p =
            PipelineParams::from_specs(&spec, &LinkSpec::gen4_x4(), &LinkSpec::gen4_x16(), 4096)
                .deterministic();
        assert!(matches!(p.read_media, LatencyDist::Fixed { .. }));
        let l = p.unloaded_read_latency_us();
        assert!((l / spec.read_latency_us - 1.0).abs() < 0.01, "{l}");
    }
}
