//! The event queue: a binary heap over (time, sequence) pairs.
//!
//! Two events at the same instant are ordered by insertion sequence, which
//! makes every run a total order — the engine is deterministic for a given
//! seed regardless of how ties arise.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// What happens when an event fires. `req` indexes the engine's request
/// table; resource indices are resolved by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A request enters the system (open-loop arrival or closed-loop refill).
    Arrive { req: u32 },
    /// The write's journal record is durable; it may now enter its queue
    /// pair. Only scheduled when the pipeline's `journal_flush_ns` is
    /// non-zero (reads never journal).
    JournalFlushed { req: u32 },
    /// The request won its queue pair and rang the doorbell; it now travels
    /// to the controller.
    QpForwarded { req: u32 },
    /// The queue pair's submission-side serialization window expired; the
    /// next waiter may proceed.
    QpRecovered { qp: u32 },
    /// The controller finished fetching the SQ entry.
    FetchDone { req: u32 },
    /// The media finished serving the request on one of its channels.
    MediaDone { req: u32 },
    /// The per-device PCIe link finished the request's transfer.
    SsdLinkDone { req: u32 },
    /// The shared GPU-side PCIe link finished the request's transfer.
    GpuLinkDone { req: u32 },
    /// The completion entry landed and the submitter observed it.
    Complete { req: u32 },
}

#[derive(Debug, PartialEq, Eq)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of scheduled events.
///
/// Tracks its own high-water mark: [`peak_len`](Self::peak_len) against
/// [`reserved`](Self::reserved) is the regression probe asserting the
/// engine's up-front capacity reservation actually covers a run (the heap
/// must never reallocate mid-run).
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    reserved: usize,
    peak: usize,
}

impl EventQueue {
    /// A queue with room for `n` simultaneously pending events. The engine
    /// reserves for its worst case up front (see
    /// `engine::heap_reservation`), so a run never reallocates the heap.
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
            reserved: n,
            peak: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub(crate) fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
        self.peak = self.peak.max(self.heap.len());
    }

    /// Removes and returns the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Fire time of the earliest pending event, if any.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Most events ever simultaneously pending.
    pub(crate) fn peak_len(&self) -> usize {
        self.peak
    }

    /// Capacity reserved at construction.
    pub(crate) fn reserved(&self) -> usize {
        self.reserved
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::default();
        q.schedule(SimTime::from_ns(30), Event::Arrive { req: 3 });
        q.schedule(SimTime::from_ns(10), Event::Arrive { req: 1 });
        q.schedule(SimTime::from_ns(10), Event::Complete { req: 2 });
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        let c = q.pop().unwrap();
        assert_eq!(a, (SimTime::from_ns(10), Event::Arrive { req: 1 }));
        assert_eq!(
            b,
            (SimTime::from_ns(10), Event::Complete { req: 2 }),
            "FIFO tie-break"
        );
        assert_eq!(c.0, SimTime::from_ns(30));
        assert!(q.is_empty());
    }
}
