//! The discrete-event engine.
//!
//! Requests flow through the five-stage pipeline of
//! [`crate::pipeline::PipelineParams`] over a virtual nanosecond clock. Every
//! resource (queue pairs, media channel pools, per-device links, the shared
//! GPU link) is a FIFO service center; contention shows up as queueing delay
//! and therefore in the latency distribution — the dynamics the closed-form
//! models in `bam-timing` average away.
//!
//! Runs are deterministic: the event heap breaks ties by insertion order and
//! all randomness comes from one seeded SplitMix64 generator.
//!
//! Two engines share one timing spine (`drive_events`): the inline engine
//! ([`run`]) applies accounting in the event loop, and the sharded engine
//! ([`run_sharded`]) streams accounting records to per-SSD worker shards
//! (the private `shard` and `coordinator` modules) whose merged results
//! are bit-identical at any worker count.

use std::collections::VecDeque;

use bam_obs::{SpanRecorder, Stage, StageBreakdown};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bam_obs::{evaluate_slo, BlameRow, WindowedSeries};

use crate::clock::SimTime;
use crate::coordinator;
use crate::dist::LatencyDist;
use crate::event::{Event, EventQueue};
use crate::pipeline::{fair_shares, PipelineParams, QueuePairPolicy};
use crate::report::{
    build_run_telemetry, DepthTimeline, MultiTenantReport, RunTelemetry, SimReport, TenantSummary,
};
use crate::shard::{occupancy_stats, Accounting, ObsPlan, Rec, SpanOut, TenantAcc};
use crate::tenant::{ArrivalProcess, Superposition, TenantClass, TenantSpec};

/// What run-level telemetry the engines collect.
///
/// The disabled spec costs one predictable branch per accounting record;
/// enabled telemetry perturbs nothing — the report of an observed run is
/// bit-identical to the unobserved run's, on either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Windowed-series window size in virtual nanoseconds (0 = no series).
    pub window_ns: u64,
    /// Collect per-request blame rows (service/wait decomposition).
    pub blame: bool,
    /// Slowest-request exemplars kept in the blame report.
    pub blame_top_k: usize,
}

impl TelemetrySpec {
    /// No telemetry: empty series, no blame rows.
    pub const fn disabled() -> Self {
        Self {
            window_ns: 0,
            blame: false,
            blame_top_k: 0,
        }
    }

    /// Full telemetry: a windowed series on `window_ns` plus blame
    /// decomposition keeping `blame_top_k` exemplars.
    pub const fn full(window_ns: u64, blame_top_k: usize) -> Self {
        Self {
            window_ns,
            blame: true,
            blame_top_k,
        }
    }
}

/// Static description of one simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestDesc {
    /// `true` for a write (uses the write media distribution).
    pub write: bool,
    /// Payload bytes (link occupancy scales with this).
    pub bytes: u64,
    /// Device to route to; `None` round-robins across the array.
    pub device: Option<u32>,
    /// Queue pair within the device; `None` round-robins.
    pub queue: Option<u32>,
}

impl RequestDesc {
    /// A round-robin-routed read of `bytes`.
    pub fn read(bytes: u64) -> Self {
        Self {
            write: false,
            bytes,
            device: None,
            queue: None,
        }
    }

    /// A round-robin-routed write of `bytes`.
    pub fn write(bytes: u64) -> Self {
        Self {
            write: true,
            bytes,
            device: None,
            queue: None,
        }
    }
}

/// How requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Arrivals at a fixed rate regardless of completions (queue growth is
    /// possible — that is the point).
    OpenLoop {
        /// Arrival rate in requests per second.
        rate_per_s: f64,
    },
    /// A fixed number of outstanding requests; every completion immediately
    /// launches the next (the GPU-threads-keep-queues-full model of §2.2).
    ClosedLoop {
        /// Concurrently outstanding requests.
        in_flight: u32,
    },
}

/// Engine configuration: the array geometry plus the per-SSD pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Devices in the array.
    pub num_ssds: u32,
    /// Queue pairs per device.
    pub queue_pairs_per_ssd: u32,
    /// Per-SSD stage parameters.
    pub pipeline: PipelineParams,
}

impl SimConfig {
    /// Total queue pairs across the array.
    pub fn total_queue_pairs(&self) -> u32 {
        self.num_ssds * self.queue_pairs_per_ssd
    }

    /// A configuration with *pure-delay* service of `latency_us` and no
    /// bandwidth or serialization constraints: the §2.2 worked examples,
    /// where only Little's law governs the in-flight population.
    pub fn worked_example(latency_us: f64, seed: u64) -> Self {
        Self {
            seed,
            num_ssds: 1,
            queue_pairs_per_ssd: 1024,
            pipeline: PipelineParams {
                qp_forward_ns: 0,
                qp_recovery_ns: 0,
                ctrl_fetch_ns: 0,
                read_media: LatencyDist::fixed_us(latency_us),
                write_media: LatencyDist::fixed_us(latency_us),
                media_channels: u32::MAX,
                ssd_link_ns_per_byte: 0.0,
                gpu_link_ns_per_byte: 0.0,
                completion_ns: 0,
                access_bytes: 512,
                journal_flush_ns: 0,
            },
        }
    }
}

/// A FIFO service center with `capacity` parallel servers.
#[derive(Debug)]
struct Center {
    busy: u32,
    capacity: u32,
    waiting: VecDeque<u32>,
}

impl Center {
    fn new(capacity: u32) -> Self {
        Self {
            busy: 0,
            capacity,
            waiting: VecDeque::new(),
        }
    }

    /// Admits `req`: returns `true` if a server was free (caller schedules
    /// the departure), otherwise queues it.
    fn admit(&mut self, req: u32) -> bool {
        if self.busy < self.capacity {
            self.busy += 1;
            true
        } else {
            self.waiting.push_back(req);
            false
        }
    }

    /// Releases one server; if a request was waiting it is started
    /// immediately (the caller schedules its departure).
    fn release(&mut self) -> Option<u32> {
        let next = self.waiting.pop_front();
        if next.is_none() {
            self.busy -= 1;
        }
        next
    }

    /// Requests currently at this center (in service + waiting).
    fn occupancy(&self) -> u64 {
        u64::from(self.busy) + self.waiting.len() as u64
    }
}

/// Spine-side issue state of one tenant: which requests exist and how
/// closed-loop completions refill them. Accounting state lives in
/// [`TenantAcc`].
pub(crate) struct IssueState {
    /// First global request index of the tenant's contiguous block.
    pub(crate) base: u64,
    /// Requests in the block.
    pub(crate) count: u64,
    /// Requests whose arrivals have been scheduled so far.
    pub(crate) issued: u64,
    /// `Some(in_flight)` for closed-loop tenants: completions refill.
    pub(crate) refill: Option<u32>,
}

impl IssueState {
    pub(crate) fn new(base: u64, count: u64, issued: u64, refill: Option<u32>) -> Self {
        Self {
            base,
            count,
            issued,
            refill,
        }
    }
}

/// `ln(100)`: the p99-to-mean ratio of an exponential sojourn tail
/// (`P[T > t] = e^(-t/mean)` crosses 1% at `t = mean·ln 100`). Hardcoded so
/// controller thresholds never depend on the platform's `ln`.
const LN_100: f64 = 4.605_170_185_988_092;

/// The admission controller of one tenant class, actuating its SLO in the
/// arrival path.
///
/// The control law inverts Little's law: with offered rate λ and an
/// exponential-tail projection, the class's p99 stays under `target_p99_us`
/// while its in-flight population stays under
/// `steady_state_in_flight(λ, target_p99_us / ln 100)`. Below that depth
/// every request is admitted. Above it, admissions draw from a token bucket
/// (so transient bursts ride through); an empty bucket defers the request by
/// `defer_ns`, and a request that exhausts `max_defers` is rejected.
///
/// All decisions run on the sequential timing spine over virtual time, so
/// they are deterministic and invariant under the engine's worker count.
#[derive(Debug)]
pub(crate) struct AdmissionCtl {
    /// In-flight depth below which admission is unconditional.
    depth_limit: u64,
    /// The class's currently admitted-but-incomplete requests.
    in_flight: u64,
    /// Token bucket: current fill, capacity, and virtual-time refill rate.
    tokens: f64,
    burst: f64,
    refill_per_s: f64,
    last_refill: SimTime,
    /// Deferral backoff and per-request deferral budget.
    defer_ns: u64,
    max_defers: u32,
}

/// What the admission controller decided for one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Enter the pipeline now.
    Admit,
    /// Re-offer after the class's deferral backoff.
    Defer { until_ns: u64 },
    /// Drop the request; it never enters the pipeline.
    Reject,
}

impl AdmissionCtl {
    fn new(
        spec: &crate::tenant::AdmissionSpec,
        offered_rate_per_s: f64,
        target_p99_us: f64,
    ) -> Self {
        assert!(
            offered_rate_per_s > 0.0,
            "admission control needs a positive offered rate"
        );
        assert!(target_p99_us > 0.0, "admission control needs a p99 budget");
        let depth_limit =
            bam_timing::steady_state_in_flight(offered_rate_per_s, target_p99_us / LN_100).floor()
                as u64;
        Self {
            depth_limit: depth_limit.max(1),
            in_flight: 0,
            tokens: f64::from(spec.burst),
            burst: f64::from(spec.burst),
            refill_per_s: spec.refill_per_s,
            last_refill: SimTime::ZERO,
            defer_ns: spec.defer_ns,
            max_defers: spec.max_defers,
        }
    }

    /// The depth threshold the control law derived from the class's SLO.
    pub(crate) fn depth_limit(&self) -> u64 {
        self.depth_limit
    }

    fn decide(&mut self, now: SimTime, defers_so_far: u32) -> Admission {
        let elapsed_ns = now - self.last_refill;
        self.tokens = (self.tokens + elapsed_ns as f64 * self.refill_per_s / 1e9).min(self.burst);
        self.last_refill = now;
        if self.in_flight < self.depth_limit {
            self.in_flight += 1;
            return Admission::Admit;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.in_flight += 1;
            return Admission::Admit;
        }
        if defers_so_far < self.max_defers {
            Admission::Defer {
                until_ns: now.as_ns() + self.defer_ns,
            }
        } else {
            Admission::Reject
        }
    }
}

/// Per-run admission state: one optional controller per engine tenant plus
/// each request's deferral count. [`AdmissionState::none`] (every
/// non-class entry point) is a zero-cost pass-through — the spine's event
/// schedule is byte-identical to the pre-admission engine's.
pub(crate) struct AdmissionState {
    ctls: Vec<Option<AdmissionCtl>>,
    /// Deferrals each request has absorbed so far (empty when no controller
    /// is armed).
    defers: Vec<u32>,
}

impl AdmissionState {
    /// No admission control anywhere: every offer admits immediately.
    pub(crate) fn none() -> Self {
        Self {
            ctls: Vec::new(),
            defers: Vec::new(),
        }
    }

    pub(crate) fn new(ctls: Vec<Option<AdmissionCtl>>, num_requests: usize) -> Self {
        let armed = ctls.iter().any(Option::is_some);
        Self {
            ctls,
            defers: if armed {
                vec![0; num_requests]
            } else {
                Vec::new()
            },
        }
    }

    /// Deferrals request `req` has absorbed so far.
    fn defer_count(&self, req: u32) -> u32 {
        self.defers.get(req as usize).copied().unwrap_or(0)
    }

    /// Runs tenant `tenant`'s controller (if armed) on an offer of `req`.
    fn offer(&mut self, tenant: usize, req: u32, now: SimTime) -> Admission {
        let Some(ctl) = self.ctls.get_mut(tenant).and_then(Option::as_mut) else {
            return Admission::Admit;
        };
        let decision = ctl.decide(now, self.defers[req as usize]);
        if let Admission::Defer { .. } = decision {
            self.defers[req as usize] += 1;
        }
        decision
    }

    /// Releases one in-flight slot of `tenant`'s controller on completion.
    fn complete(&mut self, tenant: usize) {
        if let Some(ctl) = self.ctls.get_mut(tenant).and_then(Option::as_mut) {
            ctl.in_flight -= 1;
        }
    }
}

/// Worst-case simultaneously pending events, reserved up front so the heap
/// never reallocates mid-run: every not-yet-popped pre-scheduled arrival,
/// at most one in-service event per in-flight request, and up to two pending
/// events per queue pair (`QpForwarded` + `QpRecovered` are scheduled
/// together).
pub(crate) fn heap_reservation(
    pending_arrivals: usize,
    num_requests: usize,
    total_qps: u32,
) -> usize {
    pending_arrivals + num_requests + 2 * total_qps as usize + 16
}

/// What the timing spine hands back to its wrappers.
pub(crate) struct SpineOutcome {
    pub(crate) end: SimTime,
    pub(crate) depth: DepthTimeline,
    /// Events processed (identical for the inline and sharded engines).
    pub(crate) events: u64,
    /// Most events ever simultaneously pending in the heap.
    pub(crate) peak_queued: usize,
}

/// The timing spine: drives `requests` (routed by `qp_of`, attributed by
/// `tenant_of`) from the pre-scheduled `arrivals` through the five-stage
/// pipeline, refilling closed-loop tenants on completion, and emits every
/// accounting fact as a [`Rec`] through `sink` in global `(time, seq)`
/// order.
///
/// With `CURSOR` false the pre-scheduled arrivals are heap-loaded up front
/// (the inline engine's historical behavior). With `CURSOR` true they are
/// fed from the already-time-sorted slice instead, keeping the heap sized by
/// in-flight work rather than total run length; a pending arrival fires
/// before any heap event at the same instant, which is exactly the heap
/// order (pre-scheduled arrivals always carry lower insertion sequences than
/// runtime events), so both modes process the identical event sequence.
#[allow(clippy::too_many_arguments)]
fn drive_events<const CURSOR: bool>(
    config: &SimConfig,
    requests: &[RequestDesc],
    tenant_of: &[u32],
    qp_of: &[u32],
    arrivals: &[(SimTime, u32)],
    issue: &mut [IssueState],
    admission: &mut AdmissionState,
    sink: &mut impl FnMut(Rec),
) -> SpineOutcome {
    let n = requests.len() as u64;
    let total_qps = config.total_queue_pairs();
    let p = &config.pipeline;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut queue_pairs: Vec<Center> = (0..total_qps).map(|_| Center::new(1)).collect();
    let mut media: Vec<Center> = (0..config.num_ssds)
        .map(|_| Center::new(p.media_channels))
        .collect();
    let mut ssd_links: Vec<Center> = (0..config.num_ssds).map(|_| Center::new(1)).collect();
    let mut gpu_link = Center::new(1);

    let device_of = |req: u32| qp_of[req as usize] / config.queue_pairs_per_ssd;
    let ssd_link_ns =
        |desc: &RequestDesc| (desc.bytes as f64 * p.ssd_link_ns_per_byte).round() as u64;
    let gpu_link_ns =
        |desc: &RequestDesc| (desc.bytes as f64 * p.gpu_link_ns_per_byte).round() as u64;

    // Media service times are drawn when the channel is seized; the stash
    // lets the departure event report the drawn sample as the stage's
    // service share (every other stage's service is a pipeline constant).
    let mut media_service: Vec<u64> = vec![0; requests.len()];

    let mut completed: u64 = 0;
    let mut rejected: u64 = 0;
    let mut depth_timeline = DepthTimeline::default();
    let mut depth: u32 = 0;
    let mut now = SimTime::ZERO;
    let mut processed: u64 = 0;
    let mut rec_idx: u64 = 0;
    let mut next_arrival = 0usize;

    let mut events = EventQueue::with_capacity(heap_reservation(
        if CURSOR { 0 } else { arrivals.len() },
        requests.len(),
        total_qps,
    ));
    if !CURSOR {
        for &(at, req) in arrivals {
            events.schedule(at, Event::Arrive { req });
        }
    }

    // Closes one stage of `req` at the current instant (dwell measured from
    // the request's previous boundary — the shard owns that state). The
    // third operand is the stage's pure service time: the spine scheduled
    // the departure, so it knows it exactly, and the shard splits the dwell
    // into service vs wait without re-deriving any timing decision.
    macro_rules! mark {
        ($req:expr, $stage:expr, $service:expr) => {{
            let idx = rec_idx;
            rec_idx += 1;
            sink(Rec::Stage {
                req: $req,
                stage: $stage,
                at: now,
                idx,
                service_ns: $service,
            });
        }};
    }
    macro_rules! meter {
        ($qp:expr) => {
            sink(Rec::Meter {
                qp: $qp as u32,
                at: now,
                occupancy: queue_pairs[$qp].occupancy(),
            })
        };
    }

    loop {
        let take_arrival = CURSOR
            && next_arrival < arrivals.len()
            && events
                .peek_time()
                .is_none_or(|t| arrivals[next_arrival].0 <= t);
        let (at, event) = if take_arrival {
            let (at, req) = arrivals[next_arrival];
            next_arrival += 1;
            (at, Event::Arrive { req })
        } else if let Some(popped) = events.pop() {
            popped
        } else {
            break;
        };
        debug_assert!(at >= now, "time went backwards");
        now = at;
        processed += 1;
        match event {
            Event::Arrive { req } => {
                // Latency is measured from the *first* offer: a deferred
                // request's re-offers don't re-arm its arrival record, so
                // its admission wait counts against its latency.
                let deferred_before = admission.defer_count(req);
                if deferred_before == 0 {
                    sink(Rec::Arrive { req, at: now });
                }
                match admission.offer(tenant_of[req as usize] as usize, req, now) {
                    Admission::Admit => {
                        if deferred_before > 0 {
                            // The whole dwell since first offer is admission
                            // wait (zero service), so stage dwells still tile
                            // the request's latency exactly.
                            mark!(req, Stage::Admission, 0);
                        }
                        depth += 1;
                        depth_timeline.record(now, depth);
                        // A write's journal record must be durable before the
                        // request may ring its doorbell; when journalling is
                        // off (`journal_flush_ns == 0`) no extra event exists
                        // and the schedule is identical to the unjournalled
                        // engine.
                        if requests[req as usize].write && p.journal_flush_ns > 0 {
                            events
                                .schedule(now + p.journal_flush_ns, Event::JournalFlushed { req });
                        } else {
                            let qp = qp_of[req as usize] as usize;
                            if queue_pairs[qp].admit(req) {
                                events.schedule(now + p.qp_forward_ns, Event::QpForwarded { req });
                                events.schedule(
                                    now + p.qp_recovery_ns,
                                    Event::QpRecovered { qp: qp as u32 },
                                );
                            }
                            meter!(qp);
                        }
                    }
                    Admission::Defer { until_ns } => {
                        sink(Rec::Defer { req, at: now });
                        events.schedule(SimTime::from_ns(until_ns), Event::Arrive { req });
                    }
                    Admission::Reject => {
                        sink(Rec::Reject { req, at: now });
                        rejected += 1;
                    }
                }
            }
            Event::JournalFlushed { req } => {
                mark!(req, Stage::JournalFlush, p.journal_flush_ns);
                let qp = qp_of[req as usize] as usize;
                if queue_pairs[qp].admit(req) {
                    events.schedule(now + p.qp_forward_ns, Event::QpForwarded { req });
                    events.schedule(now + p.qp_recovery_ns, Event::QpRecovered { qp: qp as u32 });
                }
                meter!(qp);
            }
            Event::QpRecovered { qp } => {
                let qp = qp as usize;
                if let Some(next) = queue_pairs[qp].release() {
                    events.schedule(now + p.qp_forward_ns, Event::QpForwarded { req: next });
                    events.schedule(now + p.qp_recovery_ns, Event::QpRecovered { qp: qp as u32 });
                }
                meter!(qp);
            }
            Event::QpForwarded { req } => {
                mark!(req, Stage::QueuePair, p.qp_forward_ns);
                events.schedule(now + p.ctrl_fetch_ns, Event::FetchDone { req });
            }
            Event::FetchDone { req } => {
                mark!(req, Stage::CtrlFetch, p.ctrl_fetch_ns);
                let dev = device_of(req) as usize;
                if media[dev].admit(req) {
                    let desc = &requests[req as usize];
                    let dist = if desc.write {
                        &p.write_media
                    } else {
                        &p.read_media
                    };
                    let service = dist.sample(&mut rng);
                    media_service[req as usize] = service;
                    events.schedule(now + service, Event::MediaDone { req });
                }
            }
            Event::MediaDone { req } => {
                mark!(req, Stage::Media, media_service[req as usize]);
                let dev = device_of(req) as usize;
                if let Some(next) = media[dev].release() {
                    let desc = &requests[next as usize];
                    let dist = if desc.write {
                        &p.write_media
                    } else {
                        &p.read_media
                    };
                    let service = dist.sample(&mut rng);
                    media_service[next as usize] = service;
                    events.schedule(now + service, Event::MediaDone { req: next });
                }
                if ssd_links[dev].admit(req) {
                    events.schedule(
                        now + ssd_link_ns(&requests[req as usize]),
                        Event::SsdLinkDone { req },
                    );
                }
            }
            Event::SsdLinkDone { req } => {
                mark!(req, Stage::SsdLink, ssd_link_ns(&requests[req as usize]));
                let dev = device_of(req) as usize;
                if let Some(next) = ssd_links[dev].release() {
                    events.schedule(
                        now + ssd_link_ns(&requests[next as usize]),
                        Event::SsdLinkDone { req: next },
                    );
                }
                if gpu_link.admit(req) {
                    events.schedule(
                        now + gpu_link_ns(&requests[req as usize]),
                        Event::GpuLinkDone { req },
                    );
                }
            }
            Event::GpuLinkDone { req } => {
                mark!(req, Stage::GpuLink, gpu_link_ns(&requests[req as usize]));
                if let Some(next) = gpu_link.release() {
                    events.schedule(
                        now + gpu_link_ns(&requests[next as usize]),
                        Event::GpuLinkDone { req: next },
                    );
                }
                events.schedule(now + p.completion_ns, Event::Complete { req });
            }
            Event::Complete { req } => {
                let idx = rec_idx;
                rec_idx += 1;
                sink(Rec::Complete {
                    req,
                    at: now,
                    idx,
                    service_ns: p.completion_ns,
                });
                completed += 1;
                depth -= 1;
                depth_timeline.record(now, depth);
                admission.complete(tenant_of[req as usize] as usize);
                // Closed-loop tenants launch their next request immediately.
                let t = &mut issue[tenant_of[req as usize] as usize];
                if t.refill.is_some() && t.issued < t.count {
                    let next = (t.base + t.issued) as u32;
                    t.issued += 1;
                    events.schedule(now, Event::Arrive { req: next });
                }
            }
        }
        // Once every request has either completed or been rejected, anything
        // still queued is bookkeeping for finished requests (events pop in
        // time order, so the last settlement is necessarily final).
        if completed + rejected == n {
            break;
        }
    }

    // Regression guard for the heap reservation: `with_capacity` must cover
    // the run's true peak, or mid-run reallocation silently returns.
    assert!(
        events.peak_len() <= events.reserved(),
        "event heap outgrew its reservation: peak {} > reserved {}",
        events.peak_len(),
        events.reserved()
    );

    SpineOutcome {
        end: now,
        depth: depth_timeline,
        events: processed,
        peak_queued: events.peak_len(),
    }
}

/// Which engine executes a run.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EngineMode {
    /// The historical single-threaded engine: accounting applied inline in
    /// the event loop, arrivals heap-loaded up front.
    Inline,
    /// The sharded engine: the timing spine streams records to
    /// `min(workers, num_ssds)` accounting shards (see
    /// [`crate::coordinator`]).
    Sharded(usize),
}

/// What either engine hands back to the report builders.
pub(crate) struct EngineOutput {
    pub(crate) end: SimTime,
    pub(crate) depth: DepthTimeline,
    pub(crate) events: u64,
    /// Most events ever simultaneously pending in the spine's heap. Not part
    /// of any report — the cursor-fed sharded spine keeps a much smaller
    /// heap than the heap-fed inline engine on the same workload. Read only
    /// by the reservation regression tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) peak_queued: usize,
    pub(crate) occupancy_mean: f64,
    pub(crate) occupancy_max: u64,
    /// Completed-read latencies (completion order for the inline engine,
    /// shard-concatenated for the sharded one — consumers are
    /// order-independent).
    pub(crate) read_latencies: Vec<u64>,
    /// Completed-write latencies. Includes the journal-flush stage when
    /// enabled — latency is measured from arrival.
    pub(crate) write_latencies: Vec<u64>,
    /// Per-tenant accounting, in tenant declaration order.
    pub(crate) tenants: Vec<TenantAcc>,
    /// Run-level windowed telemetry (empty when the plan disabled it).
    pub(crate) series: WindowedSeries,
    /// Per-request blame rows (empty when the plan disabled blame;
    /// shard-concatenated for the sharded engine — the report builder sorts).
    pub(crate) blame_rows: Vec<BlameRow>,
}

/// Runs the spine with inline accounting (the historical engine) or via the
/// shard coordinator, returning identical output either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute(
    config: &SimConfig,
    requests: &[RequestDesc],
    tenant_of: &[u32],
    qp_of: &[u32],
    arrivals: &[(SimTime, u32)],
    issue: &mut [IssueState],
    admission: &mut AdmissionState,
    recorder: Option<&SpanRecorder>,
    mode: EngineMode,
    plan: &ObsPlan<'_>,
) -> EngineOutput {
    match mode {
        EngineMode::Inline => {
            let spans = recorder.map_or(SpanOut::None, SpanOut::Direct);
            let mut acct = Accounting::new(
                requests,
                tenant_of,
                qp_of,
                None,
                requests.len(),
                config.total_queue_pairs(),
                plan,
                spans,
            );
            let spine = drive_events::<false>(
                config,
                requests,
                tenant_of,
                qp_of,
                arrivals,
                issue,
                admission,
                &mut |rec| acct.apply(rec),
            );
            let (occupancy_mean, occupancy_max) = occupancy_stats(&acct.meters, spine.end);
            let blame_rows = acct.take_blame_rows();
            EngineOutput {
                end: spine.end,
                depth: spine.depth,
                events: spine.events,
                peak_queued: spine.peak_queued,
                occupancy_mean,
                occupancy_max,
                read_latencies: acct.read_latencies,
                write_latencies: acct.write_latencies,
                tenants: acct.tenants,
                series: acct.series,
                blame_rows,
            }
        }
        EngineMode::Sharded(workers) => coordinator::run_sharded_core(
            config, requests, tenant_of, qp_of, arrivals, issue, admission, recorder, workers, plan,
        ),
    }
}

/// The cursor-fed spine entry point for the coordinator (monomorphized
/// separately from the inline engine's heap-fed one).
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_events_cursor(
    config: &SimConfig,
    requests: &[RequestDesc],
    tenant_of: &[u32],
    qp_of: &[u32],
    arrivals: &[(SimTime, u32)],
    issue: &mut [IssueState],
    admission: &mut AdmissionState,
    sink: &mut impl FnMut(Rec),
) -> SpineOutcome {
    drive_events::<true>(
        config, requests, tenant_of, qp_of, arrivals, issue, admission, sink,
    )
}

/// Runs `requests` through the pipeline under the given arrival process and
/// returns the run's report.
///
/// # Panics
///
/// Panics if `requests` is empty, the configuration has no queue pairs, or an
/// open-loop rate is not positive.
pub fn run(config: &SimConfig, workload: Workload, requests: &[RequestDesc]) -> SimReport {
    run_with(
        config,
        workload,
        requests,
        None,
        EngineMode::Inline,
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run`] with run-level telemetry: alongside the (bit-identical) report,
/// returns the windowed series and blame decomposition described by
/// `telemetry`. `workers` dispatches the engine as in [`run_with_workers`];
/// the telemetry is bit-identical at any worker count.
pub fn run_observed(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    workers: usize,
    telemetry: TelemetrySpec,
) -> (SimReport, RunTelemetry) {
    let mode = if workers <= 1 {
        EngineMode::Inline
    } else {
        EngineMode::Sharded(workers)
    };
    run_with(config, workload, requests, None, mode, telemetry)
}

/// [`run`] with span tracing: every request's stage intervals are recorded
/// into `recorder` as [`bam_obs::SpanEvent`]s with virtual-nanosecond
/// timestamps. Tracing changes no simulation state — the report is identical
/// to the untraced run's.
pub fn run_traced(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    recorder: &SpanRecorder,
) -> SimReport {
    run_with(
        config,
        workload,
        requests,
        Some(recorder),
        EngineMode::Inline,
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run`] on the sharded engine: the timing spine streams accounting to
/// `min(workers, num_ssds)` per-SSD shards applied by a worker pool. The
/// report is bit-identical to [`run`]'s at any worker count.
///
/// # Panics
///
/// Panics on [`run`]'s conditions, or if `workers` is zero.
pub fn run_sharded(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    workers: usize,
) -> SimReport {
    assert!(workers > 0, "need at least one worker");
    run_with(
        config,
        workload,
        requests,
        None,
        EngineMode::Sharded(workers),
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run_sharded`] with span tracing: shards buffer their span events and
/// the coordinator merges them back in global emission order, so the
/// recorder's contents are bit-identical to [`run_traced`]'s.
pub fn run_sharded_traced(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    workers: usize,
    recorder: &SpanRecorder,
) -> SimReport {
    assert!(workers > 0, "need at least one worker");
    run_with(
        config,
        workload,
        requests,
        Some(recorder),
        EngineMode::Sharded(workers),
        TelemetrySpec::disabled(),
    )
    .0
}

/// Engine dispatch by worker count: `workers <= 1` runs the inline engine,
/// anything larger the sharded one. The report is identical either way —
/// this is what the benchmark binaries' `--workers` flag calls.
pub fn run_with_workers(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    workers: usize,
) -> SimReport {
    if workers <= 1 {
        run(config, workload, requests)
    } else {
        run_sharded(config, workload, requests, workers)
    }
}

/// [`run_with_workers`] with span tracing.
pub fn run_traced_with_workers(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    workers: usize,
    recorder: &SpanRecorder,
) -> SimReport {
    if workers <= 1 {
        run_traced(config, workload, requests, recorder)
    } else {
        run_sharded_traced(config, workload, requests, workers, recorder)
    }
}

/// Legacy routing: explicit overrides win, everything else round-robins
/// devices first and local queues second on the global request index.
pub(crate) fn legacy_qp_of(config: &SimConfig, requests: &[RequestDesc]) -> Vec<u32> {
    let mut qp_of: Vec<u32> = Vec::with_capacity(requests.len());
    for (i, desc) in requests.iter().enumerate() {
        let device = desc
            .device
            .map_or_else(|| (i as u32) % config.num_ssds, |d| d % config.num_ssds);
        let local = desc.queue.map_or_else(
            || ((i as u32) / config.num_ssds) % config.queue_pairs_per_ssd,
            |q| q % config.queue_pairs_per_ssd,
        );
        qp_of.push(device * config.queue_pairs_per_ssd + local);
    }
    qp_of
}

/// The pre-scheduled arrival stream of a single-tenant workload over `n`
/// requests (time-ascending by construction).
pub(crate) fn workload_arrivals(workload: Workload, n: u64) -> Vec<(SimTime, u32)> {
    match workload {
        Workload::OpenLoop { rate_per_s } => {
            assert!(rate_per_s > 0.0, "open-loop rate must be positive");
            (0..n)
                .map(|i| {
                    (
                        SimTime::from_ns((i as f64 * 1e9 / rate_per_s).round() as u64),
                        i as u32,
                    )
                })
                .collect()
        }
        Workload::ClosedLoop { in_flight } => {
            assert!(in_flight > 0, "closed loop needs at least one request");
            (0..u64::from(in_flight).min(n))
                .map(|i| (SimTime::ZERO, i as u32))
                .collect()
        }
    }
}

fn run_with(
    config: &SimConfig,
    workload: Workload,
    requests: &[RequestDesc],
    recorder: Option<&SpanRecorder>,
    mode: EngineMode,
    telemetry: TelemetrySpec,
) -> (SimReport, RunTelemetry) {
    assert!(!requests.is_empty(), "nothing to simulate");
    assert!(
        config.total_queue_pairs() > 0,
        "need at least one queue pair"
    );
    let n = requests.len() as u64;
    let qp_of = legacy_qp_of(config, requests);
    let arrivals = workload_arrivals(workload, n);
    let refill = match workload {
        Workload::ClosedLoop { in_flight } => Some(in_flight),
        Workload::OpenLoop { .. } => None,
    };
    let mut issue = [IssueState::new(0, n, arrivals.len() as u64, refill)];
    let tenant_of = vec![0u32; requests.len()];
    let plan = ObsPlan {
        telemetry,
        tenant_slo_windows: &[0],
        member_of: None,
    };
    let mut outcome = execute(
        config,
        requests,
        &tenant_of,
        &qp_of,
        &arrivals,
        &mut issue,
        &mut AdmissionState::none(),
        recorder,
        mode,
        &plan,
    );
    let series = std::mem::replace(&mut outcome.series, WindowedSeries::new(0));
    let blame_rows = std::mem::take(&mut outcome.blame_rows);
    let run_telemetry =
        build_run_telemetry(series, blame_rows, &outcome.depth, telemetry.blame_top_k);
    let acc = outcome.tenants.remove(0);
    let report = SimReport::build(
        acc.latencies,
        outcome.read_latencies,
        outcome.write_latencies,
        outcome.depth,
        outcome.end,
        outcome.events,
        outcome.occupancy_mean,
        outcome.occupancy_max,
        acc.stages,
    );
    (report, run_telemetry)
}

/// Runs the superposed workloads of `tenants` through the pipeline, with
/// queue pairs allocated by `policy`, and returns per-tenant accounting plus
/// the merged view.
///
/// Each tenant's `requests` block uses the pipeline's access size with its
/// writes Bresenham-interleaved, routed round-robin across the tenant's
/// queue-pair allocation. Arrival streams are generated from per-tenant RNGs
/// (`TenantSpec::rng`), so a tenant's stream is invariant under changes to
/// its neighbours.
///
/// # Panics
///
/// Panics if `tenants` is empty, ids repeat, or
/// ([`QueuePairPolicy::WeightedFair`] only) there are fewer queue pairs than
/// tenants. A tenant with zero requests is legal: it contributes nothing to
/// the run and gets an all-zero summary.
pub fn run_tenants(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
) -> MultiTenantReport {
    run_tenants_with(
        config,
        tenants,
        policy,
        None,
        EngineMode::Inline,
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run_tenants`] with run-level telemetry (see [`run_observed`]): returns
/// the multi-tenant report — including per-tenant SLO evaluations for
/// tenants carrying a [`bam_obs::SloSpec`] — plus the run's windowed series
/// and blame decomposition. Bit-identical at any worker count.
pub fn run_tenants_observed(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    workers: usize,
    telemetry: TelemetrySpec,
) -> (MultiTenantReport, RunTelemetry) {
    let mode = if workers <= 1 {
        EngineMode::Inline
    } else {
        EngineMode::Sharded(workers)
    };
    run_tenants_with(config, tenants, policy, None, mode, telemetry)
}

/// [`run_tenants`] with span tracing into `recorder` (see [`run_traced`]).
pub fn run_tenants_traced(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    recorder: &SpanRecorder,
) -> MultiTenantReport {
    run_tenants_with(
        config,
        tenants,
        policy,
        Some(recorder),
        EngineMode::Inline,
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run_tenants`] on the sharded engine (see [`run_sharded`]); the report
/// is bit-identical to [`run_tenants`]'s at any worker count.
///
/// # Panics
///
/// Panics on [`run_tenants`]'s conditions, or if `workers` is zero.
pub fn run_tenants_sharded(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    workers: usize,
) -> MultiTenantReport {
    assert!(workers > 0, "need at least one worker");
    run_tenants_with(
        config,
        tenants,
        policy,
        None,
        EngineMode::Sharded(workers),
        TelemetrySpec::disabled(),
    )
    .0
}

/// [`run_tenants_sharded`] with span tracing (see [`run_sharded_traced`]).
pub fn run_tenants_sharded_traced(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    workers: usize,
    recorder: &SpanRecorder,
) -> MultiTenantReport {
    assert!(workers > 0, "need at least one worker");
    run_tenants_with(
        config,
        tenants,
        policy,
        Some(recorder),
        EngineMode::Sharded(workers),
        TelemetrySpec::disabled(),
    )
    .0
}

/// Engine dispatch by worker count for multi-tenant runs (see
/// [`run_with_workers`]).
pub fn run_tenants_with_workers(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    workers: usize,
) -> MultiTenantReport {
    if workers <= 1 {
        run_tenants(config, tenants, policy)
    } else {
        run_tenants_sharded(config, tenants, policy, workers)
    }
}

fn run_tenants_with(
    config: &SimConfig,
    tenants: &[TenantSpec],
    policy: QueuePairPolicy,
    recorder: Option<&SpanRecorder>,
    mode: EngineMode,
    telemetry: TelemetrySpec,
) -> (MultiTenantReport, RunTelemetry) {
    assert!(!tenants.is_empty(), "no tenants to simulate");
    assert!(
        config.total_queue_pairs() > 0,
        "need at least one queue pair"
    );
    for (i, t) in tenants.iter().enumerate() {
        assert!(
            tenants[..i].iter().all(|u| u.id != t.id),
            "duplicate tenant id {}",
            t.id
        );
    }
    let total_qps = config.total_queue_pairs();
    let weights: Vec<u32> = tenants.iter().map(|t| t.weight).collect();
    let shares: Vec<u32> = match policy {
        QueuePairPolicy::Shared => vec![total_qps; tenants.len()],
        QueuePairPolicy::WeightedFair => fair_shares(total_qps, &weights),
    };
    let mut share_base: Vec<u32> = Vec::with_capacity(tenants.len());
    let mut acc = 0u32;
    for &s in &shares {
        share_base.push(acc);
        acc += s;
    }

    // Flat request table: each tenant owns a contiguous block.
    let mut bases: Vec<u64> = Vec::with_capacity(tenants.len());
    let mut requests: Vec<RequestDesc> = Vec::new();
    let mut tenant_of: Vec<u32> = Vec::new();
    let mut qp_of: Vec<u32> = Vec::new();
    for (ti, t) in tenants.iter().enumerate() {
        bases.push(requests.len() as u64);
        requests.extend(mixed_requests(config, t.requests, t.writes));
        for k in 0..t.requests {
            tenant_of.push(ti as u32);
            let k = k as u32;
            let qp = match policy {
                // Devices first, local queues second — the legacy spread,
                // but on the tenant's own arrival counter.
                QueuePairPolicy::Shared => {
                    let device = k % config.num_ssds;
                    let local = (k / config.num_ssds) % config.queue_pairs_per_ssd;
                    device * config.queue_pairs_per_ssd + local
                }
                // Round-robin within the tenant's partition of the global
                // queue-pair space.
                QueuePairPolicy::WeightedFair => share_base[ti] + (k % shares[ti]),
            };
            qp_of.push(qp);
        }
    }

    let superposition = Superposition::generate(config.seed, tenants, &bases);
    let mut issue: Vec<IssueState> = tenants
        .iter()
        .zip(&bases)
        .map(|(t, &base)| {
            let refill = match t.arrival {
                ArrivalProcess::ClosedLoop { in_flight } => Some(in_flight),
                _ => None,
            };
            IssueState::new(base, t.requests, t.arrival.prescheduled(t.requests), refill)
        })
        .collect();

    let slo_windows: Vec<u64> = tenants
        .iter()
        .map(|t| t.slo.map_or(0, |s| s.window_ns))
        .collect();
    let plan = ObsPlan {
        telemetry,
        tenant_slo_windows: &slo_windows,
        member_of: None,
    };
    let mut outcome = execute(
        config,
        &requests,
        &tenant_of,
        &qp_of,
        &superposition.arrivals,
        &mut issue,
        &mut AdmissionState::none(),
        recorder,
        mode,
        &plan,
    );
    let series = std::mem::replace(&mut outcome.series, WindowedSeries::new(0));
    let blame_rows = std::mem::take(&mut outcome.blame_rows);
    let run_telemetry =
        build_run_telemetry(series, blame_rows, &outcome.depth, telemetry.blame_top_k);

    let mut all_latencies: Vec<u64> = Vec::with_capacity(requests.len());
    let mut overall_stages = StageBreakdown::new();
    let mut summaries: Vec<TenantSummary> = Vec::with_capacity(tenants.len());
    for ((t, acc), &share) in tenants.iter().zip(outcome.tenants).zip(&shares) {
        all_latencies.extend_from_slice(&acc.latencies);
        overall_stages.merge(&acc.stages);
        let slo = t
            .slo
            .as_ref()
            .map(|spec| evaluate_slo(&acc.slo_series, spec));
        let histo = bam_obs::LatencyHisto::from_samples(acc.latencies);
        let first_arrival = acc.first_arrival.unwrap_or(SimTime::ZERO);
        let span_s = (acc.last_completion - first_arrival) as f64 / 1e9;
        summaries.push(TenantSummary {
            id: t.id,
            name: t.name.clone(),
            weight: t.weight,
            queue_pairs: share,
            latency: crate::report::LatencySummary::from_histo(&histo),
            completed: histo.count(),
            throughput_per_s: if span_s > 0.0 {
                histo.count() as f64 / span_s
            } else {
                0.0
            },
            first_arrival_s: first_arrival.as_secs_f64(),
            last_completion_s: acc.last_completion.as_secs_f64(),
            stages: acc.stages,
            slo,
            admission: None,
            members: Vec::new(),
        });
    }
    let report = MultiTenantReport {
        overall: SimReport::build(
            all_latencies,
            outcome.read_latencies,
            outcome.write_latencies,
            outcome.depth,
            outcome.end,
            outcome.events,
            outcome.occupancy_mean,
            outcome.occupancy_max,
            overall_stages,
        ),
        tenants: summaries,
    };
    (report, run_telemetry)
}

/// Accounting granularity of a class run (see [`run_classes`]).
enum ClassGranularity {
    /// One engine tenant per class — the production mode, O(classes)
    /// accounting regardless of member count. With `attribution` the
    /// thinned per-member histograms are collected too.
    Class { attribution: bool },
    /// One engine tenant per logical member: the *oracle* mode the
    /// equivalence suite compares against. The merged stream, routing and
    /// request table are identical to `Class` mode — only accounting
    /// granularity changes — so the overall report must match bit for bit.
    Member,
}

/// Runs the closed-form-merged streams of `classes` through the pipeline:
/// one engine-level stream per class, so a million logical tenants cost
/// O(classes) in the event loop. Classes with an [`crate::AdmissionSpec`]
/// get per-class SLO admission control in the arrival path (reported via
/// [`TenantSummary::admission`]).
///
/// # Panics
///
/// Panics if `classes` is empty, ids repeat, a class has zero members, or a
/// class arms admission without an SLO or with a closed-loop process (a
/// closed loop has no open-loop offered rate to project from).
pub fn run_classes(
    config: &SimConfig,
    classes: &[TenantClass],
    policy: QueuePairPolicy,
    workers: usize,
) -> MultiTenantReport {
    run_classes_core(
        config,
        classes,
        policy,
        mode_for(workers),
        TelemetrySpec::disabled(),
        ClassGranularity::Class { attribution: false },
    )
    .0
}

/// [`run_classes`] with run-level telemetry (see [`run_observed`]).
/// Bit-identical at any worker count.
pub fn run_classes_observed(
    config: &SimConfig,
    classes: &[TenantClass],
    policy: QueuePairPolicy,
    workers: usize,
    telemetry: TelemetrySpec,
) -> (MultiTenantReport, RunTelemetry) {
    run_classes_core(
        config,
        classes,
        policy,
        mode_for(workers),
        telemetry,
        ClassGranularity::Class { attribution: false },
    )
}

/// [`run_classes`] with thinned per-member attribution: each class's
/// [`TenantSummary::members`] carries one [`crate::report::MemberSummary`]
/// per synthetic member that completed a request. The report is otherwise
/// bit-identical to [`run_classes`]'s — attribution reads the thinning
/// stream, never the arrival stream.
pub fn run_classes_attributed(
    config: &SimConfig,
    classes: &[TenantClass],
    policy: QueuePairPolicy,
    workers: usize,
) -> MultiTenantReport {
    run_classes_core(
        config,
        classes,
        policy,
        mode_for(workers),
        TelemetrySpec::disabled(),
        ClassGranularity::Class { attribution: true },
    )
    .0
}

/// The equivalence oracle: runs the *same* merged streams as
/// [`run_classes`], but accounts each logical member as its own engine
/// tenant (one [`TenantSummary`] per member, in `(class, member)` order).
/// The overall report is bit-identical to [`run_classes`]'s, and each
/// member's latencies equal its [`run_classes_attributed`] histogram — the
/// property `tests/class_equivalence.rs` asserts.
///
/// O(total members) accounting: meant for small oracle runs, not the
/// million-tenant path.
///
/// # Panics
///
/// Panics on [`run_classes`]'s conditions, or if any class is closed-loop or
/// arms admission (the oracle covers open, uncontrolled streams).
pub fn run_class_members(
    config: &SimConfig,
    classes: &[TenantClass],
    policy: QueuePairPolicy,
    workers: usize,
) -> MultiTenantReport {
    run_classes_core(
        config,
        classes,
        policy,
        mode_for(workers),
        TelemetrySpec::disabled(),
        ClassGranularity::Member,
    )
    .0
}

fn mode_for(workers: usize) -> EngineMode {
    if workers <= 1 {
        EngineMode::Inline
    } else {
        EngineMode::Sharded(workers)
    }
}

fn run_classes_core(
    config: &SimConfig,
    classes: &[TenantClass],
    policy: QueuePairPolicy,
    mode: EngineMode,
    telemetry: TelemetrySpec,
    granularity: ClassGranularity,
) -> (MultiTenantReport, RunTelemetry) {
    assert!(!classes.is_empty(), "no classes to simulate");
    assert!(
        config.total_queue_pairs() > 0,
        "need at least one queue pair"
    );
    for (i, c) in classes.iter().enumerate() {
        assert!(
            classes[..i].iter().all(|u| u.id != c.id),
            "duplicate class id {}",
            c.id
        );
        assert!(c.members > 0, "class {} has no members", c.id);
        if c.admission.is_some() {
            assert!(
                c.slo.is_some(),
                "class {} arms admission without an SLO budget",
                c.id
            );
            assert!(
                c.offered_rate_per_s().is_some(),
                "class {} arms admission on a closed loop",
                c.id
            );
        }
        if matches!(granularity, ClassGranularity::Member) {
            assert!(
                c.admission.is_none()
                    && !matches!(c.member_arrival, ArrivalProcess::ClosedLoop { .. }),
                "the member oracle covers open, uncontrolled classes (class {})",
                c.id
            );
        }
    }

    let total_qps = config.total_queue_pairs();
    let weights: Vec<u32> = classes.iter().map(|c| c.weight).collect();
    let shares: Vec<u32> = match policy {
        QueuePairPolicy::Shared => vec![total_qps; classes.len()],
        QueuePairPolicy::WeightedFair => fair_shares(total_qps, &weights),
    };
    let mut share_base: Vec<u32> = Vec::with_capacity(classes.len());
    let mut acc = 0u32;
    for &s in &shares {
        share_base.push(acc);
        acc += s;
    }

    // Flat request table, routed exactly as a merged explicit tenant would
    // be: the class's own arrival counter drives the round-robin, so the
    // schedule is independent of accounting granularity.
    let mut bases: Vec<u64> = Vec::with_capacity(classes.len());
    let mut requests: Vec<RequestDesc> = Vec::new();
    let mut class_of: Vec<u32> = Vec::new();
    let mut qp_of: Vec<u32> = Vec::new();
    for (ci, c) in classes.iter().enumerate() {
        bases.push(requests.len() as u64);
        requests.extend(mixed_requests(config, c.requests, c.writes));
        for k in 0..c.requests {
            class_of.push(ci as u32);
            let k = k as u32;
            let qp = match policy {
                QueuePairPolicy::Shared => {
                    let device = k % config.num_ssds;
                    let local = (k / config.num_ssds) % config.queue_pairs_per_ssd;
                    device * config.queue_pairs_per_ssd + local
                }
                QueuePairPolicy::WeightedFair => share_base[ci] + (k % shares[ci]),
            };
            qp_of.push(qp);
        }
    }

    let (superposition, member_of) = Superposition::generate_classes(config.seed, classes, &bases);

    let mut issue: Vec<IssueState>;
    let tenant_of: Vec<u32>;
    let slo_windows: Vec<u64>;
    let mut admission: AdmissionState;
    let attribution = match granularity {
        ClassGranularity::Class { attribution } => {
            tenant_of = class_of;
            issue = classes
                .iter()
                .zip(&bases)
                .map(|(c, &base)| {
                    let merged = c.merged_arrival();
                    let refill = match merged {
                        ArrivalProcess::ClosedLoop { in_flight } => Some(in_flight),
                        _ => None,
                    };
                    IssueState::new(base, c.requests, merged.prescheduled(c.requests), refill)
                })
                .collect();
            slo_windows = classes
                .iter()
                .map(|c| c.slo.map_or(0, |s| s.window_ns))
                .collect();
            let ctls: Vec<Option<AdmissionCtl>> = classes
                .iter()
                .map(|c| {
                    c.admission.as_ref().map(|spec| {
                        AdmissionCtl::new(
                            spec,
                            c.offered_rate_per_s().expect("asserted open"),
                            c.slo.expect("asserted SLO").target_p99_us,
                        )
                    })
                })
                .collect();
            admission = AdmissionState::new(ctls, requests.len());
            attribution
        }
        ClassGranularity::Member => {
            // One accounting slot per logical member, in (class, member)
            // order. Issue state is vestigial (open streams never refill).
            let mut member_base: Vec<u32> = Vec::with_capacity(classes.len());
            let mut acc = 0u32;
            for c in classes {
                member_base.push(acc);
                acc += c.members;
            }
            tenant_of = class_of
                .iter()
                .zip(&member_of)
                .map(|(&ci, &m)| member_base[ci as usize] + m)
                .collect();
            issue = (0..acc).map(|_| IssueState::new(0, 0, 0, None)).collect();
            slo_windows = vec![0; acc as usize];
            admission = AdmissionState::none();
            false
        }
    };

    let plan = ObsPlan {
        telemetry,
        tenant_slo_windows: &slo_windows,
        member_of: attribution.then_some(member_of.as_slice()),
    };
    let mut outcome = execute(
        config,
        &requests,
        &tenant_of,
        &qp_of,
        &superposition.arrivals,
        &mut issue,
        &mut admission,
        None,
        mode,
        &plan,
    );
    let series = std::mem::replace(&mut outcome.series, WindowedSeries::new(0));
    let blame_rows = std::mem::take(&mut outcome.blame_rows);
    let run_telemetry =
        build_run_telemetry(series, blame_rows, &outcome.depth, telemetry.blame_top_k);

    let mut all_latencies: Vec<u64> = Vec::with_capacity(requests.len());
    let mut overall_stages = StageBreakdown::new();
    let mut summaries: Vec<TenantSummary> = Vec::new();
    match granularity {
        ClassGranularity::Class { .. } => {
            for (ci, ((c, acc), &share)) in
                classes.iter().zip(outcome.tenants).zip(&shares).enumerate()
            {
                all_latencies.extend_from_slice(&acc.latencies);
                overall_stages.merge(&acc.stages);
                let slo = c
                    .slo
                    .as_ref()
                    .map(|spec| evaluate_slo(&acc.slo_series, spec));
                let admission_report = c.admission.map(|_| {
                    let depth_limit = admission.ctls[ci]
                        .as_ref()
                        .map_or(0, AdmissionCtl::depth_limit);
                    crate::report::AdmissionReport {
                        offered: acc.offered,
                        admitted: acc.offered - acc.rejected,
                        deferrals: acc.deferrals,
                        rejected: acc.rejected,
                        depth_limit,
                    }
                });
                let members: Vec<crate::report::MemberSummary> = acc
                    .members
                    .into_iter()
                    .map(|(member, histo)| crate::report::MemberSummary {
                        member,
                        completed: histo.count(),
                        latency: crate::report::LatencySummary::from_histo(&histo),
                        histogram: histo,
                    })
                    .collect();
                let histo = bam_obs::LatencyHisto::from_samples(acc.latencies);
                let first_arrival = acc.first_arrival.unwrap_or(SimTime::ZERO);
                let span_s = (acc.last_completion - first_arrival) as f64 / 1e9;
                summaries.push(TenantSummary {
                    id: c.id,
                    name: c.name.clone(),
                    weight: c.weight,
                    queue_pairs: share,
                    latency: crate::report::LatencySummary::from_histo(&histo),
                    completed: histo.count(),
                    throughput_per_s: if span_s > 0.0 {
                        histo.count() as f64 / span_s
                    } else {
                        0.0
                    },
                    first_arrival_s: first_arrival.as_secs_f64(),
                    last_completion_s: acc.last_completion.as_secs_f64(),
                    stages: acc.stages,
                    slo,
                    admission: admission_report,
                    members,
                });
            }
        }
        ClassGranularity::Member => {
            let mut accs = outcome.tenants.into_iter();
            for (c, &share) in classes.iter().zip(&shares) {
                for m in 0..c.members {
                    let acc = accs.next().expect("one account per member");
                    all_latencies.extend_from_slice(&acc.latencies);
                    overall_stages.merge(&acc.stages);
                    let histo = bam_obs::LatencyHisto::from_samples(acc.latencies);
                    let first_arrival = acc.first_arrival.unwrap_or(SimTime::ZERO);
                    let span_s = (acc.last_completion - first_arrival) as f64 / 1e9;
                    summaries.push(TenantSummary {
                        id: m,
                        name: format!("{}#{m}", c.name),
                        weight: c.weight,
                        queue_pairs: share,
                        latency: crate::report::LatencySummary::from_histo(&histo),
                        completed: histo.count(),
                        throughput_per_s: if span_s > 0.0 {
                            histo.count() as f64 / span_s
                        } else {
                            0.0
                        },
                        first_arrival_s: first_arrival.as_secs_f64(),
                        last_completion_s: acc.last_completion.as_secs_f64(),
                        stages: acc.stages,
                        slo: None,
                        admission: None,
                        members: Vec::new(),
                    });
                }
            }
        }
    }
    let report = MultiTenantReport {
        overall: SimReport::build(
            all_latencies,
            outcome.read_latencies,
            outcome.write_latencies,
            outcome.depth,
            outcome.end,
            outcome.events,
            outcome.occupancy_mean,
            outcome.occupancy_max,
            overall_stages,
        ),
        tenants: summaries,
    };
    (report, run_telemetry)
}

/// Convenience: `n` identical round-robin reads of the pipeline's access
/// size.
pub fn uniform_reads(config: &SimConfig, n: u64) -> Vec<RequestDesc> {
    vec![RequestDesc::read(config.pipeline.access_bytes); n as usize]
}

/// Convenience: `n` round-robin requests of which an evenly interleaved
/// `writes` are writes (deterministic Bresenham spread).
pub fn mixed_requests(config: &SimConfig, n: u64, writes: u64) -> Vec<RequestDesc> {
    let writes = writes.min(n);
    (0..n)
        .map(|i| {
            let is_write = (i + 1) * writes / n != i * writes / n;
            if is_write {
                RequestDesc::write(config.pipeline.access_bytes)
            } else {
                RequestDesc::read(config.pipeline.access_bytes)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_nvme_sim::SsdSpec;
    use bam_pcie::LinkSpec;

    fn optane_config(num_ssds: u32, queue_pairs_per_ssd: u32, bytes: u64, seed: u64) -> SimConfig {
        SimConfig {
            seed,
            num_ssds,
            queue_pairs_per_ssd,
            pipeline: PipelineParams::from_specs(
                &SsdSpec::intel_optane_p5800x(),
                &LinkSpec::gen4_x4(),
                &LinkSpec::gen4_x16(),
                bytes,
            ),
        }
    }

    #[test]
    fn single_request_sees_unloaded_latency() {
        let cfg = optane_config(1, 8, 512, 1);
        let cfg = SimConfig {
            pipeline: cfg.pipeline.deterministic(),
            ..cfg
        };
        let reqs = uniform_reads(&cfg, 1);
        let report = run(&cfg, Workload::ClosedLoop { in_flight: 1 }, &reqs);
        assert_eq!(report.completed, 1);
        let expected = cfg.pipeline.unloaded_read_latency_us();
        assert!(
            (report.latency.mean_us / expected - 1.0).abs() < 0.01,
            "mean {} vs unloaded {expected}",
            report.latency.mean_us
        );
    }

    #[test]
    fn closed_loop_saturates_near_media_peak() {
        // 1 Optane SSD at 512B: media peak 5.1M IOPS. With ample outstanding
        // requests the simulated throughput should come within ~10%.
        let cfg = optane_config(1, 128, 512, 2);
        let reqs = uniform_reads(&cfg, 60_000);
        let report = run(&cfg, Workload::ClosedLoop { in_flight: 1024 }, &reqs);
        let miops = report.throughput_per_s / 1e6;
        assert!((4.6..5.7).contains(&miops), "throughput {miops} MIOPS");
    }

    #[test]
    fn few_outstanding_requests_cannot_saturate() {
        // The left edge of Fig 4: 16 in flight over ~11us is ~1.45M IOPS.
        let cfg = optane_config(1, 128, 512, 3);
        let reqs = uniform_reads(&cfg, 20_000);
        let low = run(&cfg, Workload::ClosedLoop { in_flight: 16 }, &reqs);
        let high = run(&cfg, Workload::ClosedLoop { in_flight: 1024 }, &reqs);
        assert!(
            low.throughput_per_s < high.throughput_per_s * 0.5,
            "low {} high {}",
            low.throughput_per_s,
            high.throughput_per_s
        );
    }

    #[test]
    fn queue_pair_starvation_reproduces_fig11_knee() {
        // 4 SSDs at 4KB: media-bound near 6M IOPS with plentiful queue
        // pairs; 8 total QPs serialize at ~150K each → ~1.2M.
        let plenty = optane_config(4, 32, 4096, 4);
        let starved = optane_config(4, 2, 4096, 4);
        let reqs = uniform_reads(&plenty, 40_000);
        let fast = run(&plenty, Workload::ClosedLoop { in_flight: 2048 }, &reqs);
        let slow = run(&starved, Workload::ClosedLoop { in_flight: 2048 }, &reqs);
        assert!(
            slow.throughput_per_s < fast.throughput_per_s * 0.4,
            "starved {} vs plenty {}",
            slow.throughput_per_s,
            fast.throughput_per_s
        );
        // The starved run's queue pairs are visibly backed up.
        assert!(slow.queue_occupancy_mean > fast.queue_occupancy_mean);
    }

    #[test]
    fn deterministic_across_runs_same_seed() {
        let cfg = optane_config(2, 16, 4096, 42);
        let reqs = mixed_requests(&cfg, 10_000, 1_000);
        let a = run(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        let b = run(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        assert_eq!(a, b);
        let c = run(
            &SimConfig {
                seed: 43,
                ..cfg.clone()
            },
            Workload::ClosedLoop { in_flight: 256 },
            &reqs,
        );
        assert_ne!(a.sorted_latencies_ns, c.sorted_latencies_ns);
    }

    #[test]
    fn open_loop_below_capacity_tracks_littles_law() {
        let cfg = optane_config(1, 64, 512, 5);
        let reqs = uniform_reads(&cfg, 50_000);
        // 2M/s against ~11us → ~22 in flight.
        let report = run(&cfg, Workload::OpenLoop { rate_per_s: 2.0e6 }, &reqs);
        let measured = report.depth.steady_state_mean();
        let littles = report.littles_in_flight();
        assert!(
            (measured / littles - 1.0).abs() < 0.1,
            "measured {measured} vs littles {littles}"
        );
    }

    #[test]
    fn mixed_requests_spread_writes_evenly() {
        let cfg = optane_config(1, 8, 512, 6);
        let reqs = mixed_requests(&cfg, 10, 3);
        assert_eq!(reqs.iter().filter(|r| r.write).count(), 3);
        // Not all bunched at one end.
        assert!(reqs[..5].iter().any(|r| r.write));
        assert!(reqs[5..].iter().any(|r| r.write));
    }

    fn steady(id: u32, rate_per_s: f64, requests: u64) -> TenantSpec {
        TenantSpec::new(
            id,
            &format!("steady-{id}"),
            ArrivalProcess::Poisson { rate_per_s },
            requests,
        )
    }

    #[test]
    fn run_tenants_is_deterministic_per_seed() {
        let cfg = optane_config(4, 2, 4096, 21);
        let tenants = [
            steady(0, 100.0e3, 4_000),
            TenantSpec::new(
                1,
                "burst",
                ArrivalProcess::Mmpp(crate::dist::Mmpp2 {
                    calm_rate_per_s: 50.0e3,
                    burst_rate_per_s: 1.6e6,
                    mean_calm_s: 4.0e-3,
                    mean_burst_s: 1.0e-3,
                }),
                8_000,
            ),
        ];
        for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
            let a = run_tenants(&cfg, &tenants, policy);
            let b = run_tenants(&cfg, &tenants, policy);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn superposed_fixed_streams_add_their_rates() {
        // Two 1M/s tenants behave like one 2M/s stream: overall throughput
        // matches the aggregate arrival rate (the array is unsaturated).
        let cfg = optane_config(1, 64, 512, 22);
        let tenants = [
            TenantSpec::new(
                0,
                "a",
                ArrivalProcess::FixedRate { rate_per_s: 1.0e6 },
                20_000,
            ),
            TenantSpec::new(
                1,
                "b",
                ArrivalProcess::FixedRate { rate_per_s: 1.0e6 },
                20_000,
            ),
        ];
        let report = run_tenants(&cfg, &tenants, QueuePairPolicy::Shared);
        assert_eq!(report.overall.completed, 40_000);
        assert!(
            (report.overall.throughput_per_s / 2.0e6 - 1.0).abs() < 0.02,
            "aggregate throughput {}",
            report.overall.throughput_per_s
        );
        for t in &report.tenants {
            assert!((t.throughput_per_s / 1.0e6 - 1.0).abs() < 0.02);
            assert!(t.latency.p50_us > 0.0);
        }
    }

    #[test]
    fn weighted_fair_shares_follow_weights() {
        let cfg = optane_config(4, 2, 4096, 23);
        let mut heavy = steady(0, 100.0e3, 2_000);
        heavy.weight = 3;
        let light = steady(1, 100.0e3, 2_000);
        let report = run_tenants(&cfg, &[heavy, light], QueuePairPolicy::WeightedFair);
        assert_eq!(report.tenants[0].queue_pairs, 6);
        assert_eq!(report.tenants[1].queue_pairs, 2);
        // Shared policy reports the whole array for everyone.
        let heavy = {
            let mut t = steady(0, 100.0e3, 2_000);
            t.weight = 3;
            t
        };
        let shared = run_tenants(
            &cfg,
            &[heavy, steady(1, 100.0e3, 2_000)],
            QueuePairPolicy::Shared,
        );
        assert!(shared.tenants.iter().all(|t| t.queue_pairs == 8));
    }

    #[test]
    fn closed_loop_tenant_coexists_with_open_stream() {
        let cfg = optane_config(1, 32, 512, 24);
        let tenants = [
            TenantSpec::new(
                0,
                "cl",
                ArrivalProcess::ClosedLoop { in_flight: 64 },
                20_000,
            ),
            steady(1, 200.0e3, 2_000),
        ];
        let report = run_tenants(&cfg, &tenants, QueuePairPolicy::Shared);
        assert_eq!(report.overall.completed, 22_000);
        let cl = report.tenant(0).unwrap();
        let open = report.tenant(1).unwrap();
        // The closed loop saturates its window; the Poisson tenant trickles.
        assert!(cl.throughput_per_s > open.throughput_per_s * 5.0);
        assert_eq!(cl.completed, 20_000);
        assert_eq!(open.completed, 2_000);
    }

    #[test]
    fn tenant_write_mix_is_bresenham_interleaved() {
        let cfg = optane_config(1, 8, 512, 25);
        let mut t = steady(0, 1.0e6, 10);
        t.writes = 3;
        let report = run_tenants(&cfg, &[t], QueuePairPolicy::Shared);
        assert_eq!(report.overall.completed, 10);
        // The run exercises the write path (slower media): latency spread
        // between p50 and max reflects the two service classes.
        assert!(report.overall.latency.max_us > report.overall.latency.p50_us);
    }

    #[test]
    #[should_panic(expected = "duplicate tenant id")]
    fn run_tenants_rejects_duplicate_ids() {
        let cfg = optane_config(1, 8, 512, 26);
        let tenants = [steady(0, 1.0e5, 10), steady(0, 1.0e5, 10)];
        run_tenants(&cfg, &tenants, QueuePairPolicy::Shared);
    }

    #[test]
    fn journal_flush_charges_writes_and_leaves_reads_alone() {
        // Pure-delay pipeline so the shift is exact: every write pays the
        // journal-flush bound on top of its service time, reads never do.
        let base = SimConfig::worked_example(10.0, 9);
        let journalled = SimConfig {
            pipeline: PipelineParams {
                journal_flush_ns: 5_000,
                ..base.pipeline.clone()
            },
            ..base.clone()
        };
        let reqs = mixed_requests(&base, 1_000, 250);
        let plain = run(&base, Workload::OpenLoop { rate_per_s: 1.0e6 }, &reqs);
        let durable = run(&journalled, Workload::OpenLoop { rate_per_s: 1.0e6 }, &reqs);
        assert_eq!(plain.read_latency.count, 750);
        assert_eq!(plain.write_latency.count, 250);
        assert_eq!(durable.read_latency, plain.read_latency);
        assert!(
            (durable.write_latency.mean_us - plain.write_latency.mean_us - 5.0).abs() < 1e-9,
            "write mean shifted by {} us",
            durable.write_latency.mean_us - plain.write_latency.mean_us
        );
    }

    #[test]
    fn zero_journal_flush_is_bit_identical_to_the_unjournalled_engine() {
        // `journal_flush_ns: 0` must add no events: the report — including
        // the event-order-sensitive depth timeline — is exactly what the
        // engine produced before the stage existed.
        let cfg = optane_config(2, 16, 4096, 11);
        let zeroed = SimConfig {
            pipeline: PipelineParams {
                journal_flush_ns: 0,
                ..cfg.pipeline.clone()
            },
            ..cfg.clone()
        };
        let reqs = mixed_requests(&cfg, 8_000, 2_000);
        let a = run(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        let b = run(&zeroed, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        assert_eq!(a, b);
    }

    #[test]
    fn stage_dwells_tile_every_request_latency() {
        // The breakdown must attribute (well over) 95% of each request's
        // end-to-end latency to named stages; by construction the dwell
        // times tile the request's life, so the sums agree exactly.
        let cfg = optane_config(2, 4, 4096, 31);
        let cfg = SimConfig {
            pipeline: cfg.pipeline.with_journal_flush(48),
            ..cfg
        };
        let reqs = mixed_requests(&cfg, 5_000, 1_500);
        let report = run(&cfg, Workload::ClosedLoop { in_flight: 128 }, &reqs);
        let total_latency_ns: u64 = report.sorted_latencies_ns.iter().sum();
        assert_eq!(report.stages.total_ns(), total_latency_ns);
        // Every pipeline stage saw every request; journal flush only writes.
        for stage in [
            Stage::QueuePair,
            Stage::CtrlFetch,
            Stage::Media,
            Stage::SsdLink,
            Stage::GpuLink,
            Stage::Completion,
        ] {
            assert_eq!(report.stages.histo(stage).count(), 5_000, "{stage:?}");
        }
        assert_eq!(report.stages.histo(Stage::JournalFlush).count(), 1_500);
        assert!(report.stages.histo(Stage::CacheProbe).is_empty());
    }

    #[test]
    fn tracing_changes_nothing_and_is_deterministic() {
        let cfg = optane_config(2, 8, 4096, 32);
        let reqs = mixed_requests(&cfg, 3_000, 600);
        let plain = run(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        let rec_a = SpanRecorder::with_capacity(1 << 20);
        let traced = run_traced(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs, &rec_a);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let rec_b = SpanRecorder::with_capacity(1 << 20);
        run_traced(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs, &rec_b);
        assert_eq!(
            rec_a.events(),
            rec_b.events(),
            "traces must be bit-identical"
        );
        assert_eq!(rec_a.dropped(), 0);
        // 6 pipeline stages per request (journalling is off in this config).
        assert_eq!(rec_a.len(), 3_000 * 6);
        assert_eq!(
            bam_obs::chrome_trace_json(&rec_a.events()),
            bam_obs::chrome_trace_json(&rec_b.events())
        );
    }

    #[test]
    fn zero_request_tenant_is_legal_and_zeroed() {
        let cfg = optane_config(4, 2, 4096, 33);
        let tenants = [steady(0, 100.0e3, 2_000), steady(1, 100.0e3, 0)];
        let report = run_tenants(&cfg, &tenants, QueuePairPolicy::Shared);
        assert_eq!(report.overall.completed, 2_000);
        let idle = report.tenant(1).unwrap();
        assert_eq!(idle.completed, 0);
        assert_eq!(idle.latency, crate::report::LatencySummary::default());
        assert_eq!(idle.throughput_per_s, 0.0);
        assert!(idle.stages.is_empty());
        // Its interference ratio is a NaN-free sentinel, not a panic.
        let ratio = crate::report::interference_ratio(idle.latency.p99_us, idle.latency.p99_us);
        assert_eq!(ratio, 1.0);
    }

    /// Drives `execute` directly so tests can read spine internals
    /// (peak heap occupancy) that reports deliberately omit.
    fn probe(
        cfg: &SimConfig,
        workload: Workload,
        requests: &[RequestDesc],
        mode: EngineMode,
    ) -> EngineOutput {
        let qp_of = legacy_qp_of(cfg, requests);
        let arrivals = workload_arrivals(workload, requests.len() as u64);
        let refill = match workload {
            Workload::ClosedLoop { in_flight } => Some(in_flight),
            Workload::OpenLoop { .. } => None,
        };
        let mut issue = [IssueState::new(
            0,
            requests.len() as u64,
            arrivals.len() as u64,
            refill,
        )];
        execute(
            cfg,
            requests,
            &vec![0; requests.len()],
            &qp_of,
            &arrivals,
            &mut issue,
            &mut AdmissionState::none(),
            None,
            mode,
            &ObsPlan {
                telemetry: TelemetrySpec::disabled(),
                tenant_slo_windows: &[0],
                member_of: None,
            },
        )
    }

    #[test]
    fn heap_reservation_covers_the_peak() {
        // Regression for the historical `with_capacity(arrivals.len())`
        // under-reservation: each request schedules ~6 runtime events beyond
        // its arrival, so the old reservation reallocated several times per
        // run. The engine now asserts peak ≤ reserved internally; this test
        // additionally pins the arithmetic at both workload shapes.
        let cfg = optane_config(4, 2, 4096, 51);
        let reqs = uniform_reads(&cfg, 20_000);
        for workload in [
            Workload::OpenLoop { rate_per_s: 6.0e6 },
            Workload::ClosedLoop { in_flight: 2048 },
        ] {
            let out = probe(&cfg, workload, &reqs, EngineMode::Inline);
            assert!(out.peak_queued > 0);
            let arrivals = match workload {
                Workload::OpenLoop { .. } => reqs.len(),
                Workload::ClosedLoop { in_flight } => in_flight as usize,
            };
            assert!(
                out.peak_queued <= heap_reservation(arrivals, reqs.len(), cfg.total_queue_pairs()),
                "peak {} vs reservation",
                out.peak_queued
            );
            // The old reservation really was too small for this workload.
            assert!(
                out.peak_queued > arrivals.min(2048),
                "peak {} should exceed the historical arrivals-only reservation",
                out.peak_queued
            );
        }
    }

    #[test]
    fn cursor_fed_spine_keeps_the_heap_small() {
        // The sharded spine feeds pre-scheduled arrivals from a sorted
        // cursor instead of heap-loading them: on an open-loop run the heap
        // holds only in-flight work, far below the inline engine's
        // arrivals-dominated peak — while producing the identical report.
        let cfg = optane_config(4, 4, 4096, 52);
        let reqs = uniform_reads(&cfg, 20_000);
        let open = Workload::OpenLoop { rate_per_s: 5.0e6 };
        let inline = probe(&cfg, open, &reqs, EngineMode::Inline);
        let sharded = probe(&cfg, open, &reqs, EngineMode::Sharded(2));
        assert_eq!(inline.events, sharded.events);
        assert!(
            sharded.peak_queued * 4 < inline.peak_queued,
            "cursor peak {} vs heap-fed peak {}",
            sharded.peak_queued,
            inline.peak_queued
        );
    }

    #[test]
    fn sharded_report_matches_inline_bit_for_bit() {
        // The full differential suite lives in tests/parallel_equivalence.rs;
        // this is the in-crate smoke check on a mixed closed-loop run.
        let cfg = optane_config(2, 16, 4096, 42);
        let reqs = mixed_requests(&cfg, 10_000, 1_000);
        let inline = run(&cfg, Workload::ClosedLoop { in_flight: 256 }, &reqs);
        for workers in [1, 2, 4] {
            let sharded = run_sharded(
                &cfg,
                Workload::ClosedLoop { in_flight: 256 },
                &reqs,
                workers,
            );
            assert_eq!(inline, sharded, "workers={workers}");
        }
    }

    #[test]
    fn writes_are_slower_than_reads_on_optane_512b() {
        // Optane 512B write IOPS (1M) is 5x below read (5.1M); a write-heavy
        // closed loop must take longer.
        let cfg = optane_config(1, 64, 512, 7);
        let reads = uniform_reads(&cfg, 30_000);
        let writes: Vec<RequestDesc> = reads
            .iter()
            .map(|r| RequestDesc { write: true, ..*r })
            .collect();
        let r = run(&cfg, Workload::ClosedLoop { in_flight: 1024 }, &reads);
        let w = run(&cfg, Workload::ClosedLoop { in_flight: 1024 }, &writes);
        assert!(
            w.sim_time_s > r.sim_time_s * 2.0,
            "writes {} reads {}",
            w.sim_time_s,
            r.sim_time_s
        );
    }
}
