//! Run results: latency percentiles, in-flight-depth timelines, queue
//! occupancy, per-stage dwell breakdowns, and the Little's-law cross-check.

use bam_obs::{
    BlameReport, BlameRow, LatencyHisto, PromWriter, SloReport, StageBreakdown, WindowedSeries,
};
use serde::{Deserialize, Serialize};

use crate::clock::SimTime;

/// Summary statistics over the per-request latency samples of a run.
///
/// Percentiles are answered from a [`LatencyHisto`] (log-linear buckets,
/// ≤ ~1.6% relative error); `count`, `mean_us` and `max_us` stay exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of completed requests.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median (p50) latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency in microseconds.
    pub p999_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarises a histogram of nanosecond samples. Empty histograms give
    /// the all-zero default — zero-request inputs are legal, not a panic.
    pub fn from_histo(histo: &LatencyHisto) -> Self {
        if histo.is_empty() {
            return Self::default();
        }
        Self {
            count: histo.count(),
            mean_us: histo.mean_ns() / 1e3,
            p50_us: histo.value_at_quantile(0.50) as f64 / 1e3,
            p95_us: histo.value_at_quantile(0.95) as f64 / 1e3,
            p99_us: histo.value_at_quantile(0.99) as f64 / 1e3,
            p999_us: histo.value_at_quantile(0.999) as f64 / 1e3,
            max_us: histo.max_ns() as f64 / 1e3,
        }
    }
}

/// The number of requests in flight over time, as a change list.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DepthTimeline {
    /// `(instant, depth-after-change)` points, in time order.
    points: Vec<(SimTime, u32)>,
    /// End of the observation interval.
    end: SimTime,
}

impl DepthTimeline {
    pub(crate) fn record(&mut self, at: SimTime, depth: u32) {
        self.points.push((at, depth));
    }

    pub(crate) fn close(&mut self, end: SimTime) {
        self.end = end;
    }

    /// Time-weighted mean depth over `[from, to]`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> f64 {
        let window = to - from;
        if window == 0 || self.points.is_empty() {
            return 0.0;
        }
        let mut integral = 0u128;
        let mut depth = 0u32;
        let mut cursor = from;
        for &(at, d) in &self.points {
            if at <= from {
                depth = d;
                continue;
            }
            if at >= to {
                break;
            }
            integral += u128::from(at - cursor) * u128::from(depth);
            cursor = at;
            depth = d;
        }
        integral += u128::from(to - cursor) * u128::from(depth);
        integral as f64 / window as f64
    }

    /// Mean depth over the middle half of the run (warm-up and drain
    /// excluded) — the engine's steady-state operating point.
    pub fn steady_state_mean(&self) -> f64 {
        let span = self.end - SimTime::ZERO;
        self.time_weighted_mean(
            SimTime::from_ns(span / 4),
            SimTime::from_ns(span - span / 4),
        )
    }

    /// Peak depth ever observed.
    pub fn max_depth(&self) -> u32 {
        self.points.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Folds every depth-change point into `series` as a depth sample. The
    /// timeline comes from the timing spine, which is identical for both
    /// engines, so the folded samples are too.
    pub(crate) fn fold_into(&self, series: &mut WindowedSeries) {
        for &(at, d) in &self.points {
            series.record_depth(at.as_ns(), d);
        }
    }

    /// At most `n` evenly spaced `(seconds, depth)` samples for plotting.
    pub fn sampled(&self, n: usize) -> Vec<(f64, u32)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let step = self.points.len().div_ceil(n);
        self.points
            .iter()
            .step_by(step)
            .map(|&(at, d)| (at.as_secs_f64(), d))
            .collect()
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Latency summary over completed requests.
    pub latency: LatencySummary,
    /// Requests completed.
    pub completed: u64,
    /// Discrete events the engine processed to produce this run — the unit
    /// the `engine` benchmark's events/s throughput is measured in.
    /// Identical for the inline and sharded engines on the same workload.
    pub events: u64,
    /// Total simulated duration in seconds.
    pub sim_time_s: f64,
    /// Completed requests per simulated second.
    pub throughput_per_s: f64,
    /// In-flight depth over time.
    pub depth: DepthTimeline,
    /// Mean queue-pair occupancy (waiting + in service), averaged over time
    /// and over queue pairs.
    pub queue_occupancy_mean: f64,
    /// Peak occupancy of any single queue pair.
    pub queue_occupancy_max: u64,
    /// Latency summary over the run's reads alone.
    pub read_latency: LatencySummary,
    /// Latency summary over the run's writes alone (includes the
    /// journal-flush stage when enabled — the durability cost lands here).
    pub write_latency: LatencySummary,
    /// Ascending per-request latencies in nanoseconds (for CDFs).
    pub sorted_latencies_ns: Vec<u64>,
    /// End-to-end latency histogram over all completed requests.
    pub histogram: LatencyHisto,
    /// Per-stage dwell-time histograms: where each request's latency went.
    pub stages: StageBreakdown,
}

impl SimReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        mut latencies_ns: Vec<u64>,
        read_latencies_ns: Vec<u64>,
        write_latencies_ns: Vec<u64>,
        mut depth: DepthTimeline,
        end: SimTime,
        events: u64,
        queue_occupancy_mean: f64,
        queue_occupancy_max: u64,
        stages: StageBreakdown,
    ) -> Self {
        latencies_ns.sort_unstable();
        depth.close(end);
        let sim_time_s = end.as_secs_f64();
        let completed = latencies_ns.len() as u64;
        let histogram = LatencyHisto::from_samples(latencies_ns.iter().copied());
        Self {
            latency: LatencySummary::from_histo(&histogram),
            completed,
            events,
            sim_time_s,
            throughput_per_s: if sim_time_s > 0.0 {
                completed as f64 / sim_time_s
            } else {
                0.0
            },
            depth,
            queue_occupancy_mean,
            queue_occupancy_max,
            read_latency: LatencySummary::from_histo(&LatencyHisto::from_samples(
                read_latencies_ns,
            )),
            write_latency: LatencySummary::from_histo(&LatencyHisto::from_samples(
                write_latencies_ns,
            )),
            sorted_latencies_ns: latencies_ns,
            histogram,
            stages,
        }
    }

    /// Latency at quantile `q` (`0 < q <= 1`) in microseconds, answered
    /// from the run's histogram (≤ ~1.6% relative bucket error).
    pub fn latency_percentile_us(&self, q: f64) -> f64 {
        self.histogram.value_at_quantile(q) as f64 / 1e3
    }

    /// The Little's-law reading of this run: `throughput × mean latency`,
    /// which must agree with the measured steady-state mean in-flight depth
    /// (`self.depth.steady_state_mean()`) — the same identity
    /// `bam_timing::littles::required_queue_depth` applies analytically.
    pub fn littles_in_flight(&self) -> f64 {
        self.throughput_per_s * self.latency.mean_us * 1e-6
    }
}

/// What a tenant class's admission controller did over one run (see
/// [`crate::TenantClass`] and [`crate::AdmissionSpec`]). All counters are in
/// requests; `offered` counts each request once regardless of how many times
/// it was re-offered after deferral, so
/// `offered == admitted + rejected`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Requests offered to the controller (first offers only).
    pub offered: u64,
    /// Requests that entered the pipeline (possibly after deferrals).
    pub admitted: u64,
    /// Deferral decisions (one request may defer several times).
    pub deferrals: u64,
    /// Requests dropped after exhausting their deferral budget.
    pub rejected: u64,
    /// The in-flight depth threshold the Little's-law control law derived
    /// from the class's SLO budget.
    pub depth_limit: u64,
}

/// One synthetic member's share of a tenant class, attributed by
/// deterministic thinning (see [`crate::TenantClass::member_of`]). Present
/// only on class runs that requested attribution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemberSummary {
    /// The member's index within its class (`0..members`).
    pub member: u32,
    /// Requests attributed to this member that completed.
    pub completed: u64,
    /// Latency summary over the member's completions.
    pub latency: LatencySummary,
    /// The member's full latency histogram; member histograms merge exactly
    /// to the class's aggregate.
    pub histogram: LatencyHisto,
}

/// Per-tenant accounting of one multi-tenant run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// The tenant's stable identifier.
    pub id: u32,
    /// The tenant's name.
    pub name: String,
    /// The tenant's queue-pair weight.
    pub weight: u32,
    /// Queue pairs the allocation policy granted this tenant.
    pub queue_pairs: u32,
    /// Latency summary over the tenant's own completed requests.
    pub latency: LatencySummary,
    /// Requests the tenant completed.
    pub completed: u64,
    /// Completions per second over the tenant's active span (first arrival
    /// to last completion).
    pub throughput_per_s: f64,
    /// When the tenant's first request arrived, in seconds.
    pub first_arrival_s: f64,
    /// When the tenant's last request completed, in seconds.
    pub last_completion_s: f64,
    /// Per-stage dwell-time histograms over the tenant's own requests.
    pub stages: StageBreakdown,
    /// The tenant's SLO evaluation, when its [`crate::TenantSpec`] carries
    /// a [`bam_obs::SloSpec`]. For class runs this is evaluated over the
    /// *achieved* completions, so with a controller armed it reads as the
    /// post-control burn rate.
    pub slo: Option<SloReport>,
    /// The class's admission-controller accounting, when this summary row is
    /// a [`crate::TenantClass`] with an [`crate::AdmissionSpec`] armed.
    pub admission: Option<AdmissionReport>,
    /// Thinned per-member attribution, when this summary row is a class run
    /// through [`crate::engine::run_classes_attributed`]. Sorted by member
    /// index; members with no completions are absent.
    pub members: Vec<MemberSummary>,
}

/// Everything a multi-tenant simulation run produces: the merged view plus
/// one [`TenantSummary`] per tenant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantReport {
    /// The run seen as one merged stream (overall percentiles, throughput,
    /// depth timeline, queue occupancy).
    pub overall: SimReport,
    /// Per-tenant accounting, in tenant declaration order.
    pub tenants: Vec<TenantSummary>,
}

impl MultiTenantReport {
    /// The summary for tenant `id`, if present.
    pub fn tenant(&self, id: u32) -> Option<&TenantSummary> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Renders the report as a Prometheus text exposition: overall counters,
    /// per-tenant latency/throughput families, and — for tenants carrying an
    /// SLO — the violation counters and burn-rate gauges an alerting rule
    /// would scrape. Deterministic: same report, same bytes.
    pub fn prom_export(&self) -> String {
        let mut w = PromWriter::new();
        w.counter(
            "bam_sim_completed",
            "Requests completed across all tenants.",
            self.overall.completed,
        );
        w.gauge(
            "bam_sim_throughput_per_s",
            "Completed requests per simulated second.",
            self.overall.throughput_per_s,
        );
        w.gauge(
            "bam_sim_p99_us",
            "Overall 99th-percentile latency in microseconds.",
            self.overall.latency.p99_us,
        );
        let names: Vec<&str> = self.tenants.iter().map(|t| t.name.as_str()).collect();
        let labels: Vec<[(&str, &str); 1]> = names.iter().map(|n| [("tenant", *n)]).collect();
        let completed: Vec<(&[(&str, &str)], u64)> = self
            .tenants
            .iter()
            .zip(&labels)
            .map(|(t, l)| (l.as_slice(), t.completed))
            .collect();
        w.counter_family(
            "bam_tenant_completed",
            "Requests completed per tenant.",
            &completed,
        );
        let p99: Vec<(&[(&str, &str)], f64)> = self
            .tenants
            .iter()
            .zip(&labels)
            .map(|(t, l)| (l.as_slice(), t.latency.p99_us))
            .collect();
        w.gauge_family(
            "bam_tenant_p99_us",
            "Per-tenant 99th-percentile latency in microseconds.",
            &p99,
        );
        let throughput: Vec<(&[(&str, &str)], f64)> = self
            .tenants
            .iter()
            .zip(&labels)
            .map(|(t, l)| (l.as_slice(), t.throughput_per_s))
            .collect();
        w.gauge_family(
            "bam_tenant_throughput_per_s",
            "Per-tenant completions per second over the tenant's span.",
            &throughput,
        );
        let slo: Vec<(&[(&str, &str)], SloReport)> = self
            .tenants
            .iter()
            .zip(&labels)
            .filter_map(|(t, l)| t.slo.map(|s| (l.as_slice(), s)))
            .collect();
        if !slo.is_empty() {
            let targets: Vec<(&[(&str, &str)], f64)> =
                slo.iter().map(|(l, s)| (*l, s.target_p99_us)).collect();
            w.gauge_family(
                "bam_slo_target_p99_us",
                "The tenant's p99 latency target in microseconds.",
                &targets,
            );
            let violations: Vec<(&[(&str, &str)], u64)> =
                slo.iter().map(|(l, s)| (*l, s.violations)).collect();
            w.counter_family(
                "bam_slo_window_violations",
                "Evaluation windows whose p99 exceeded the tenant's target.",
                &violations,
            );
            let over: Vec<(&[(&str, &str)], u64)> =
                slo.iter().map(|(l, s)| (*l, s.over_target)).collect();
            w.counter_family(
                "bam_slo_requests_over_target",
                "Completions whose latency exceeded the tenant's target.",
                &over,
            );
            let burn: Vec<(&[(&str, &str)], f64)> =
                slo.iter().map(|(l, s)| (*l, s.burn_rate)).collect();
            w.gauge_family(
                "bam_slo_burn_rate",
                "Tail-error-budget burn rate (1.0 = exactly on a 1% budget).",
                &burn,
            );
        }
        let admission: Vec<(&[(&str, &str)], AdmissionReport)> = self
            .tenants
            .iter()
            .zip(&labels)
            .filter_map(|(t, l)| t.admission.map(|a| (l.as_slice(), a)))
            .collect();
        if !admission.is_empty() {
            let offered: Vec<(&[(&str, &str)], u64)> =
                admission.iter().map(|(l, a)| (*l, a.offered)).collect();
            w.counter_family(
                "bam_admission_offered",
                "Requests offered to the class's admission controller.",
                &offered,
            );
            let admitted: Vec<(&[(&str, &str)], u64)> =
                admission.iter().map(|(l, a)| (*l, a.admitted)).collect();
            w.counter_family(
                "bam_admission_admitted",
                "Requests the controller let into the pipeline.",
                &admitted,
            );
            let deferrals: Vec<(&[(&str, &str)], u64)> =
                admission.iter().map(|(l, a)| (*l, a.deferrals)).collect();
            w.counter_family(
                "bam_admission_deferrals",
                "Deferral decisions (a request may defer more than once).",
                &deferrals,
            );
            let rejected: Vec<(&[(&str, &str)], u64)> =
                admission.iter().map(|(l, a)| (*l, a.rejected)).collect();
            w.counter_family(
                "bam_admission_rejected",
                "Requests dropped after exhausting their deferral budget.",
                &rejected,
            );
            let depth: Vec<(&[(&str, &str)], f64)> = admission
                .iter()
                .map(|(l, a)| (*l, a.depth_limit as f64))
                .collect();
            w.gauge_family(
                "bam_admission_depth_limit",
                "In-flight depth threshold derived from the class's SLO.",
                &depth,
            );
        }
        w.finish()
    }
}

/// Run-level telemetry of one observed run: the windowed series plus the
/// blame decomposition described by the run's
/// [`crate::engine::TelemetrySpec`]. Bit-identical between the inline and
/// sharded engines at any worker count — the property
/// `tests/parallel_equivalence.rs` asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTelemetry {
    /// Fixed-window counters and samples over virtual time.
    pub series: WindowedSeries,
    /// Per-resource service/wait decomposition with tail slice and
    /// exemplars.
    pub blame: BlameReport,
}

/// Assembles a [`RunTelemetry`] from the engine output: folds the (engine-
/// independent) depth timeline into the series and builds the canonical
/// blame report from the collected rows.
pub(crate) fn build_run_telemetry(
    mut series: WindowedSeries,
    rows: Vec<BlameRow>,
    depth: &DepthTimeline,
    top_k: usize,
) -> RunTelemetry {
    depth.fold_into(&mut series);
    RunTelemetry {
        series,
        blame: BlameReport::build(rows, top_k),
    }
}

/// The interference metric: how much a tenant's co-run p99 inflated over its
/// solo p99 under the same configuration and policy (1.0 = perfect
/// isolation; 2.0 = the neighbours doubled its tail).
///
/// Empty-sample inputs are guarded NaN-free: a tenant with no solo baseline
/// and no co-run tail (zero requests everywhere) reads as perfect isolation
/// (`1.0`); a tenant with co-run samples but no baseline reads as infinite
/// inflation (`f64::INFINITY`) so the anomaly stays visible in tables and
/// JSON instead of poisoning comparisons the way NaN does.
pub fn interference_ratio(corun_p99_us: f64, solo_p99_us: f64) -> f64 {
    if solo_p99_us <= 0.0 {
        return if corun_p99_us <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    corun_p99_us / solo_p99_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_ordered() {
        let ns: Vec<u64> = (1..=1000).map(|i| i * 1_000).collect();
        let s = LatencySummary::from_histo(&LatencyHisto::from_samples(ns));
        assert_eq!(s.count, 1000);
        // Histogram-backed percentiles are within the bucket error (~2%).
        assert!((s.p50_us / 500.0 - 1.0).abs() < 0.02, "{}", s.p50_us);
        assert!((s.p95_us / 950.0 - 1.0).abs() < 0.02, "{}", s.p95_us);
        assert!((s.p99_us / 990.0 - 1.0).abs() < 0.02, "{}", s.p99_us);
        assert!((s.p999_us / 999.0 - 1.0).abs() < 0.02, "{}", s.p999_us);
        // Max stays exact.
        assert_eq!(s.max_us, 1000.0);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.p999_us);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(
            LatencySummary::from_histo(&LatencyHisto::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn depth_time_weighted_mean_is_exact_on_a_step() {
        let mut t = DepthTimeline::default();
        // Depth 2 on [0, 100), depth 4 on [100, 200).
        t.record(SimTime::from_ns(0), 2);
        t.record(SimTime::from_ns(100), 4);
        t.close(SimTime::from_ns(200));
        let m = t.time_weighted_mean(SimTime::from_ns(0), SimTime::from_ns(200));
        assert!((m - 3.0).abs() < 1e-12, "{m}");
        // A window entirely in the second step sees depth 4.
        let m2 = t.time_weighted_mean(SimTime::from_ns(150), SimTime::from_ns(200));
        assert!((m2 - 4.0).abs() < 1e-12, "{m2}");
        assert_eq!(t.max_depth(), 4);
    }

    #[test]
    fn sampled_respects_the_cap() {
        let mut t = DepthTimeline::default();
        for i in 0..1999u64 {
            t.record(SimTime::from_ns(i), (i % 7) as u32);
        }
        t.close(SimTime::from_ns(2000));
        assert!(t.sampled(1000).len() <= 1000);
        assert_eq!(t.sampled(1999).len(), 1999);
        assert!(t.sampled(0).is_empty());
    }

    #[test]
    fn interference_is_a_p99_ratio_with_guarded_zero() {
        assert!((interference_ratio(22.0, 11.0) - 2.0).abs() < 1e-12);
        assert!((interference_ratio(11.0, 11.0) - 1.0).abs() < 1e-12);
        // Empty-sample guards are NaN-free: no baseline and no co-run tail
        // reads as perfect isolation; a co-run tail with no baseline is an
        // explicit infinity, never NaN.
        assert_eq!(interference_ratio(0.0, 0.0), 1.0);
        assert_eq!(interference_ratio(11.0, 0.0), f64::INFINITY);
        assert!(!interference_ratio(0.0, 11.0).is_nan());
    }

    #[test]
    fn report_build_computes_throughput_and_littles() {
        let mut depth = DepthTimeline::default();
        depth.record(SimTime::from_ns(0), 1);
        let r = SimReport::build(
            vec![10_000; 100],
            vec![10_000; 80],
            vec![10_000; 20],
            depth,
            SimTime::from_us(1000.0),
            700,
            1.0,
            2,
            StageBreakdown::new(),
        );
        assert_eq!(r.completed, 100);
        assert_eq!(r.events, 700);
        assert!((r.throughput_per_s - 100.0 / 1e-3).abs() < 1e-6);
        // 100k/s × 10us = 1 request in flight.
        assert!((r.littles_in_flight() - 1.0).abs() < 1e-9);
        assert_eq!(r.read_latency.count, 80);
        assert_eq!(r.write_latency.count, 20);
    }
}
