//! Seedable latency distributions.
//!
//! Service times in the engine are drawn from one of three families: `Fixed`
//! (deterministic pipelines, Little's-law validation), `Uniform` (bounded
//! jitter), and `LogNormal` (the heavy-tailed shape real SSD media exhibits —
//! NAND reads colliding with erases produce exactly the long right tail a
//! lognormal models). All sampling goes through the workspace `rand` shim's
//! SplitMix64 `StdRng`, so a run is fully determined by its seed.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A latency distribution over non-negative nanosecond durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDist {
    /// Always exactly `ns` nanoseconds.
    Fixed {
        /// The constant duration in nanoseconds.
        ns: u64,
    },
    /// Uniform on `[lo_ns, hi_ns]`.
    Uniform {
        /// Inclusive lower bound in nanoseconds.
        lo_ns: u64,
        /// Inclusive upper bound in nanoseconds.
        hi_ns: u64,
    },
    /// Lognormal: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
    LogNormal {
        /// Location parameter (`mu`), i.e. `ln(median_ns)`.
        mu: f64,
        /// Shape parameter (`sigma`); larger values mean heavier tails.
        sigma: f64,
    },
}

impl LatencyDist {
    /// A fixed duration of `us` microseconds.
    pub fn fixed_us(us: f64) -> Self {
        Self::Fixed {
            ns: (us * 1e3).round().max(0.0) as u64,
        }
    }

    /// Uniform between `lo_us` and `hi_us` microseconds.
    pub fn uniform_us(lo_us: f64, hi_us: f64) -> Self {
        assert!(lo_us <= hi_us, "uniform bounds out of order");
        Self::Uniform {
            lo_ns: (lo_us * 1e3).round().max(0.0) as u64,
            hi_ns: (hi_us * 1e3).round().max(0.0) as u64,
        }
    }

    /// A lognormal with the given *mean* (`mean_us` microseconds) and shape
    /// `sigma`. The location parameter is derived so that
    /// `E[X] = exp(mu + sigma^2 / 2) = mean`.
    pub fn lognormal_mean_us(mean_us: f64, sigma: f64) -> Self {
        assert!(mean_us > 0.0, "lognormal mean must be positive");
        assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        Self::LogNormal {
            mu: (mean_us * 1e3).ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// The distribution's mean, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        match *self {
            Self::Fixed { ns } => ns as f64,
            Self::Uniform { lo_ns, hi_ns } => (lo_ns + hi_ns) as f64 / 2.0,
            Self::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// Draws one duration in nanoseconds.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            Self::Fixed { ns } => ns,
            Self::Uniform { lo_ns, hi_ns } => {
                if lo_ns == hi_ns {
                    lo_ns
                } else {
                    rng.gen_range(lo_ns..hi_ns + 1)
                }
            }
            Self::LogNormal { mu, sigma } => {
                // Box-Muller; `1 - gen::<f64>()` maps [0,1) to (0,1] so the
                // logarithm is always finite.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp().round().max(0.0) as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(dist: LatencyDist, seed: u64, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let d = LatencyDist::fixed_us(11.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 11_000));
        assert_eq!(d.mean_ns(), 11_000.0);
    }

    #[test]
    fn uniform_stays_in_bounds_and_centers() {
        let d = LatencyDist::uniform_us(10.0, 20.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((10_000..=20_000).contains(&v));
        }
        let m = mean_of(d, 3, 20_000);
        assert!((m / 15_000.0 - 1.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn lognormal_hits_requested_mean_and_is_skewed() {
        let d = LatencyDist::lognormal_mean_us(324.0, 0.4);
        let m = mean_of(d, 4, 50_000);
        assert!((m / 324_000.0 - 1.0).abs() < 0.03, "mean {m}");
        // Right-skew: the median sits below the mean.
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_unstable();
        assert!((xs[25_000] as f64) < m);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LatencyDist::lognormal_mean_us(11.0, 0.1);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| d.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..64).map(|_| d.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
