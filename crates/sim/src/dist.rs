//! Seedable latency distributions.
//!
//! Service times in the engine are drawn from one of three families: `Fixed`
//! (deterministic pipelines, Little's-law validation), `Uniform` (bounded
//! jitter), and `LogNormal` (the heavy-tailed shape real SSD media exhibits —
//! NAND reads colliding with erases produce exactly the long right tail a
//! lognormal models). All sampling goes through the workspace `rand` shim's
//! SplitMix64 `StdRng`, so a run is fully determined by its seed.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A latency distribution over non-negative nanosecond durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDist {
    /// Always exactly `ns` nanoseconds.
    Fixed {
        /// The constant duration in nanoseconds.
        ns: u64,
    },
    /// Uniform on `[lo_ns, hi_ns]`.
    Uniform {
        /// Inclusive lower bound in nanoseconds.
        lo_ns: u64,
        /// Inclusive upper bound in nanoseconds.
        hi_ns: u64,
    },
    /// Lognormal: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
    LogNormal {
        /// Location parameter (`mu`), i.e. `ln(median_ns)`.
        mu: f64,
        /// Shape parameter (`sigma`); larger values mean heavier tails.
        sigma: f64,
    },
}

impl LatencyDist {
    /// A fixed duration of `us` microseconds.
    pub fn fixed_us(us: f64) -> Self {
        Self::Fixed {
            ns: (us * 1e3).round().max(0.0) as u64,
        }
    }

    /// Uniform between `lo_us` and `hi_us` microseconds.
    pub fn uniform_us(lo_us: f64, hi_us: f64) -> Self {
        assert!(lo_us <= hi_us, "uniform bounds out of order");
        Self::Uniform {
            lo_ns: (lo_us * 1e3).round().max(0.0) as u64,
            hi_ns: (hi_us * 1e3).round().max(0.0) as u64,
        }
    }

    /// A lognormal with the given *mean* (`mean_us` microseconds) and shape
    /// `sigma`. The location parameter is derived so that
    /// `E[X] = exp(mu + sigma^2 / 2) = mean`.
    pub fn lognormal_mean_us(mean_us: f64, sigma: f64) -> Self {
        assert!(mean_us > 0.0, "lognormal mean must be positive");
        assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        Self::LogNormal {
            mu: (mean_us * 1e3).ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// The distribution's mean, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        match *self {
            Self::Fixed { ns } => ns as f64,
            Self::Uniform { lo_ns, hi_ns } => (lo_ns + hi_ns) as f64 / 2.0,
            Self::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }

    /// Draws one duration in nanoseconds.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            Self::Fixed { ns } => ns,
            Self::Uniform { lo_ns, hi_ns } => {
                if lo_ns == hi_ns {
                    lo_ns
                } else {
                    rng.gen_range(lo_ns..hi_ns + 1)
                }
            }
            Self::LogNormal { mu, sigma } => {
                // Box-Muller; `1 - gen::<f64>()` maps [0,1) to (0,1] so the
                // logarithm is always finite.
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp().round().max(0.0) as u64
            }
        }
    }
}

/// Draws an exponential interarrival gap for a Poisson process of
/// `rate_per_s`, in (fractional) nanoseconds.
pub(crate) fn exp_gap_ns(rate_per_s: f64, rng: &mut StdRng) -> f64 {
    debug_assert!(rate_per_s > 0.0);
    // `1 - gen::<f64>()` maps [0,1) to (0,1] so the logarithm is finite.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate_per_s * 1e9
}

/// A 2-state Markov-modulated Poisson process: arrivals are Poisson at
/// `calm_rate_per_s` or `burst_rate_per_s` depending on a background
/// continuous-time Markov chain whose state dwell times are exponential with
/// means `mean_calm_s` and `mean_burst_s`. The canonical bursty-tenant model:
/// long quiet stretches punctuated by short, intense bursts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmpp2 {
    /// Arrival rate while calm, in requests per second.
    pub calm_rate_per_s: f64,
    /// Arrival rate while bursting, in requests per second.
    pub burst_rate_per_s: f64,
    /// Mean dwell time in the calm state, in seconds.
    pub mean_calm_s: f64,
    /// Mean dwell time in the burst state, in seconds.
    pub mean_burst_s: f64,
}

/// Completed-dwell statistics of one generated MMPP path, for validating the
/// modulating chain against its configured transition rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MmppDwellStats {
    /// Nanoseconds spent in completed calm dwells.
    pub calm_ns: u128,
    /// Nanoseconds spent in completed burst dwells.
    pub burst_ns: u128,
    /// Completed calm dwells.
    pub calm_visits: u64,
    /// Completed burst dwells.
    pub burst_visits: u64,
}

impl MmppDwellStats {
    /// Mean observed calm dwell, in seconds.
    pub fn mean_calm_s(&self) -> f64 {
        if self.calm_visits == 0 {
            return 0.0;
        }
        self.calm_ns as f64 / self.calm_visits as f64 / 1e9
    }

    /// Mean observed burst dwell, in seconds.
    pub fn mean_burst_s(&self) -> f64 {
        if self.burst_visits == 0 {
            return 0.0;
        }
        self.burst_ns as f64 / self.burst_visits as f64 / 1e9
    }
}

impl Mmpp2 {
    /// The long-run mean arrival rate: each state's rate weighted by the
    /// fraction of time the chain spends there.
    pub fn mean_rate_per_s(&self) -> f64 {
        let total = self.mean_calm_s + self.mean_burst_s;
        (self.calm_rate_per_s * self.mean_calm_s + self.burst_rate_per_s * self.mean_burst_s)
            / total
    }

    /// Generates the first `n` arrival instants (nanoseconds, non-decreasing)
    /// of one path starting in the calm state, plus the completed-dwell
    /// statistics of the modulating chain over the generated span.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are non-negative (at least one positive) and
    /// both mean dwells are positive.
    pub fn arrival_times(&self, n: u64, rng: &mut StdRng) -> (Vec<u64>, MmppDwellStats) {
        assert!(
            self.calm_rate_per_s >= 0.0
                && self.burst_rate_per_s >= 0.0
                && (self.calm_rate_per_s > 0.0 || self.burst_rate_per_s > 0.0),
            "MMPP needs a positive arrival rate in at least one state"
        );
        assert!(
            self.mean_calm_s > 0.0 && self.mean_burst_s > 0.0,
            "MMPP dwell means must be positive"
        );
        let mut arrivals = Vec::with_capacity(n as usize);
        let mut stats = MmppDwellStats::default();
        let mut burst = false;
        let mut t_ns = 0.0f64;
        let mut dwell_start = 0.0f64;
        let mut switch_at = exp_gap_ns(1.0 / self.mean_calm_s, rng);
        while (arrivals.len() as u64) < n {
            let rate = if burst {
                self.burst_rate_per_s
            } else {
                self.calm_rate_per_s
            };
            let next_arrival = if rate > 0.0 {
                t_ns + exp_gap_ns(rate, rng)
            } else {
                f64::INFINITY
            };
            if next_arrival < switch_at {
                t_ns = next_arrival;
                arrivals.push(next_arrival.round() as u64);
            } else {
                // The chain switches state before the candidate arrival; the
                // candidate is discarded (memorylessness makes a fresh draw
                // at the new rate equivalent).
                let dwell = ((switch_at - dwell_start).round().max(0.0)) as u128;
                if burst {
                    stats.burst_ns += dwell;
                    stats.burst_visits += 1;
                } else {
                    stats.calm_ns += dwell;
                    stats.calm_visits += 1;
                }
                t_ns = switch_at;
                dwell_start = switch_at;
                burst = !burst;
                let mean = if burst {
                    self.mean_burst_s
                } else {
                    self.mean_calm_s
                };
                switch_at = t_ns + exp_gap_ns(1.0 / mean, rng);
            }
        }
        // Rounding can produce equal neighbours but never out-of-order ones;
        // enforce monotonicity anyway so downstream code may rely on it.
        for i in 1..arrivals.len() {
            if arrivals[i] < arrivals[i - 1] {
                arrivals[i] = arrivals[i - 1];
            }
        }
        (arrivals, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(dist: LatencyDist, seed: u64, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn fixed_is_constant() {
        let d = LatencyDist::fixed_us(11.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 11_000));
        assert_eq!(d.mean_ns(), 11_000.0);
    }

    #[test]
    fn uniform_stays_in_bounds_and_centers() {
        let d = LatencyDist::uniform_us(10.0, 20.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((10_000..=20_000).contains(&v));
        }
        let m = mean_of(d, 3, 20_000);
        assert!((m / 15_000.0 - 1.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn lognormal_hits_requested_mean_and_is_skewed() {
        let d = LatencyDist::lognormal_mean_us(324.0, 0.4);
        let m = mean_of(d, 4, 50_000);
        assert!((m / 324_000.0 - 1.0).abs() < 0.03, "mean {m}");
        // Right-skew: the median sits below the mean.
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_unstable();
        assert!((xs[25_000] as f64) < m);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LatencyDist::lognormal_mean_us(11.0, 0.1);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| d.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..64).map(|_| d.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn exponential_gaps_average_to_the_reciprocal_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exp_gap_ns(1.0e6, &mut rng)).sum();
        // 1M/s → 1000ns mean gap.
        assert!((sum / n as f64 / 1000.0 - 1.0).abs() < 0.02);
    }

    #[test]
    fn mmpp_arrivals_are_monotone_and_deterministic() {
        let m = Mmpp2 {
            calm_rate_per_s: 50.0e3,
            burst_rate_per_s: 1.6e6,
            mean_calm_s: 4.0e-3,
            mean_burst_s: 1.0e-3,
        };
        let (a, _) = m.arrival_times(5_000, &mut StdRng::seed_from_u64(9));
        let (b, _) = m.arrival_times(5_000, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn mmpp_mean_rate_weights_states_by_dwell() {
        let m = Mmpp2 {
            calm_rate_per_s: 50.0e3,
            burst_rate_per_s: 1.6e6,
            mean_calm_s: 4.0e-3,
            mean_burst_s: 1.0e-3,
        };
        // (50K*4 + 1600K*1) / 5 = 360K.
        assert!((m.mean_rate_per_s() / 360.0e3 - 1.0).abs() < 1e-12);
        // The generated path's empirical rate agrees over a long horizon.
        let (a, _) = m.arrival_times(200_000, &mut StdRng::seed_from_u64(10));
        let span_s = *a.last().unwrap() as f64 / 1e9;
        let empirical = a.len() as f64 / span_s;
        assert!(
            (empirical / m.mean_rate_per_s() - 1.0).abs() < 0.05,
            "empirical rate {empirical}"
        );
    }

    #[test]
    fn mmpp_bursts_pack_arrivals_closer_than_calm() {
        let m = Mmpp2 {
            calm_rate_per_s: 10.0e3,
            burst_rate_per_s: 2.0e6,
            mean_calm_s: 2.0e-3,
            mean_burst_s: 0.5e-3,
        };
        let (a, stats) = m.arrival_times(50_000, &mut StdRng::seed_from_u64(11));
        assert!(stats.calm_visits > 10 && stats.burst_visits > 10);
        // Bimodal gaps: many tiny (burst) gaps, some large (calm) ones.
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let tiny = gaps.iter().filter(|&&g| g < 5_000).count();
        let large = gaps.iter().filter(|&&g| g > 20_000).count();
        assert!(tiny > gaps.len() / 2, "bursts dominate arrival counts");
        assert!(large > 100, "calm stretches exist");
    }
}
