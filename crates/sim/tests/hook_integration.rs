//! End-to-end: a functional `bam-core` run instrumented with a
//! [`TraceRecorder`], its trace replayed under the event engine.

use std::sync::Arc;

use bam_core::{BamConfig, BamSystem};
use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{PipelineParams, SimConfig, TraceRecorder, Workload};

fn run_workload(system: &BamSystem) -> u64 {
    let arr = system.create_array::<u64>(4096).expect("array");
    arr.preload(&(0..4096u64).collect::<Vec<_>>())
        .expect("preload");
    // Strided cold reads (one storage request per 512 B line), plus a few
    // writes that must also show up in the trace.
    for i in (0..4096u64).step_by(64) {
        assert_eq!(arr.read(i).expect("read"), i);
    }
    for i in (0..4096u64).step_by(512) {
        arr.write(i, i + 1).expect("write");
    }
    system.flush().expect("flush");
    system.metrics().total_requests()
}

#[test]
fn functional_trace_replays_through_the_engine() {
    let system = BamSystem::new(BamConfig::test_scale()).expect("system");
    let recorder = Arc::new(TraceRecorder::new());
    system.set_sim_hook(Some(recorder.clone()));
    let stack_requests = run_workload(&system);
    system.set_sim_hook(None);

    // The stack-level trace matches the metrics the stack itself counted...
    let trace = recorder.take_trace();
    assert_eq!(trace.len() as u64, stack_requests, "one event per command");
    assert!(trace.requests.iter().any(|r| r.write), "writes captured");
    assert!(trace.requests.iter().any(|r| !r.write), "reads captured");
    assert!(trace.requests.iter().all(|r| r.bytes == 512));
    // ...and the controllers observed the same commands end to end.
    assert_eq!(recorder.completions(), stack_requests);
    assert!(recorder.device_fetches() >= stack_requests);

    // Replay the measured stream on a 2-SSD Optane timing model.
    let config = SimConfig {
        seed: 7,
        num_ssds: 2,
        queue_pairs_per_ssd: 4,
        pipeline: PipelineParams::from_specs(
            &SsdSpec::intel_optane_p5800x(),
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            512,
        ),
    };
    let report = trace.replay(&config, Workload::ClosedLoop { in_flight: 32 });
    assert_eq!(report.completed, stack_requests);
    // Every request pays at least the unloaded pipeline latency.
    assert!(report.latency.p50_us >= config.pipeline.unloaded_read_latency_us() * 0.99);
    assert!(report.latency.p999_us >= report.latency.p50_us);

    // Replays are deterministic: same trace, same seed, same report.
    let again = trace.replay(&config, Workload::ClosedLoop { in_flight: 32 });
    assert_eq!(report, again);
}

#[test]
fn uninstrumented_runs_record_nothing() {
    let system = BamSystem::new(BamConfig::test_scale()).expect("system");
    let recorder = Arc::new(TraceRecorder::new());
    // Hook never installed: the functional path stays untouched and the
    // recorder stays empty.
    run_workload(&system);
    assert!(recorder.take_trace().is_empty());
    assert_eq!(recorder.completions(), 0);
}
