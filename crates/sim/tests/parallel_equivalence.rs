//! Differential suite: the sharded engine must be bit-identical to the
//! inline engine at every worker count.
//!
//! Every assertion is full-structure equality (`SimReport` /
//! `MultiTenantReport` derive `PartialEq` over every field, including depth
//! timelines, latency vectors, histograms, and stage breakdowns), plus
//! byte-equality of the exported Chrome traces — the contract is *bit*
//! identity, not statistical agreement. Worker counts past the device count
//! are legal (shards clamp to `num_ssds`) and must change nothing either.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{
    chrome_trace_json, engine, ArrivalProcess, Mmpp2, PipelineParams, QueuePairPolicy, SimConfig,
    SpanRecorder, TelemetrySpec, TenantSpec, Workload,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn optane_config(num_ssds: u32, queue_pairs_per_ssd: u32, bytes: u64, seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_ssds,
        queue_pairs_per_ssd,
        pipeline: PipelineParams::from_specs(
            &SsdSpec::intel_optane_p5800x(),
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            bytes,
        ),
    }
}

/// One single-tenant workload checked across every worker count, untraced
/// and traced.
fn check_single(name: &str, cfg: &SimConfig, workload: Workload, reqs: &[engine::RequestDesc]) {
    let inline = engine::run(cfg, workload, reqs);
    assert!(inline.completed == reqs.len() as u64, "{name}: sanity");
    let rec_inline = SpanRecorder::with_capacity(1 << 20);
    let traced = engine::run_traced(cfg, workload, reqs, &rec_inline);
    assert_eq!(inline, traced, "{name}: tracing must not perturb");
    for workers in WORKER_COUNTS {
        let sharded = engine::run_sharded(cfg, workload, reqs, workers);
        assert_eq!(inline, sharded, "{name}: report, workers={workers}");
        let rec_sharded = SpanRecorder::with_capacity(1 << 20);
        let sharded_traced = engine::run_sharded_traced(cfg, workload, reqs, workers, &rec_sharded);
        assert_eq!(
            inline, sharded_traced,
            "{name}: traced report, workers={workers}"
        );
        assert_eq!(
            rec_inline.events(),
            rec_sharded.events(),
            "{name}: span stream, workers={workers}"
        );
        assert_eq!(
            rec_inline.dropped(),
            rec_sharded.dropped(),
            "{name}: drop counts, workers={workers}"
        );
        assert_eq!(
            chrome_trace_json(&rec_inline.events()),
            chrome_trace_json(&rec_sharded.events()),
            "{name}: chrome trace, workers={workers}"
        );
    }
}

#[test]
fn fig11_queue_pair_starved_closed_loop_is_identical() {
    // The fig11 knee configuration: a 4-SSD array starved to 2 queue pairs
    // per device, saturated closed loop.
    let cfg = optane_config(4, 2, 4096, 4);
    let reqs = engine::uniform_reads(&cfg, 12_000);
    check_single(
        "fig11",
        &cfg,
        Workload::ClosedLoop { in_flight: 2048 },
        &reqs,
    );
}

#[test]
fn latency_cdf_depth_sweep_is_identical() {
    // The latency_cdf harness shape: Optane at its bandwidth-latency
    // product, plus an open-loop point (pre-scheduled arrival streams
    // exercise the cursor-fed spine hardest).
    let cfg = optane_config(4, 128, 4096, 9);
    let reqs = engine::uniform_reads(&cfg, 12_000);
    check_single(
        "latency_cdf/closed",
        &cfg,
        Workload::ClosedLoop { in_flight: 64 },
        &reqs,
    );
    check_single(
        "latency_cdf/open",
        &cfg,
        Workload::OpenLoop { rate_per_s: 3.0e6 },
        &reqs,
    );
}

#[test]
fn recovery_shaped_journalled_writes_are_identical() {
    // The recovery workload shape: journal flush enabled, write-heavy mix —
    // exercises the JournalFlushed event path and write-latency accounting.
    let base = optane_config(2, 4, 4096, 23);
    let cfg = SimConfig {
        pipeline: base.pipeline.with_journal_flush(48),
        ..base
    };
    let reqs = engine::mixed_requests(&cfg, 8_000, 3_000);
    check_single(
        "recovery",
        &cfg,
        Workload::ClosedLoop { in_flight: 128 },
        &reqs,
    );
}

#[test]
fn multi_tenant_antagonist_sweep_is_identical() {
    // The tenants harness shape: steady Poisson tenants with an MMPP
    // antagonist, under both queue-pair policies — per-tenant summaries,
    // stage histograms, and the merged overall report must all match.
    let cfg = optane_config(4, 2, 4096, 13);
    let mmpp = Mmpp2 {
        calm_rate_per_s: 50.0e3,
        burst_rate_per_s: 1.6e6,
        mean_calm_s: 4.0e-3,
        mean_burst_s: 1.0e-3,
    };
    let mut tenants: Vec<TenantSpec> = (0..6u32)
        .map(|i| {
            TenantSpec::new(
                i,
                &format!("steady-{i}"),
                ArrivalProcess::Poisson {
                    rate_per_s: 100.0e3,
                },
                1_500,
            )
        })
        .collect();
    tenants.push(TenantSpec::new(
        100,
        "antagonist",
        ArrivalProcess::Mmpp(mmpp),
        5_400,
    ));
    // A closed-loop tenant exercises cross-shard refill determinism.
    tenants.push(TenantSpec::new(
        200,
        "closed",
        ArrivalProcess::ClosedLoop { in_flight: 32 },
        3_000,
    ));
    for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
        let inline = engine::run_tenants(&cfg, &tenants, policy);
        let rec_inline = SpanRecorder::with_capacity(1 << 20);
        let traced = engine::run_tenants_traced(&cfg, &tenants, policy, &rec_inline);
        assert_eq!(inline, traced, "{policy:?}: tracing must not perturb");
        for workers in WORKER_COUNTS {
            let sharded = engine::run_tenants_sharded(&cfg, &tenants, policy, workers);
            assert_eq!(inline, sharded, "{policy:?}: workers={workers}");
            let rec_sharded = SpanRecorder::with_capacity(1 << 20);
            engine::run_tenants_sharded_traced(&cfg, &tenants, policy, workers, &rec_sharded);
            assert_eq!(
                chrome_trace_json(&rec_inline.events()),
                chrome_trace_json(&rec_sharded.events()),
                "{policy:?}: chrome trace, workers={workers}"
            );
        }
    }
}

#[test]
fn timeline_and_blame_are_identical_across_worker_counts() {
    // Full telemetry (windowed series + blame rows + exemplars) folded from
    // per-shard recorders must be bit-identical to the inline recorder's,
    // on both the single-tenant and journalled-write shapes.
    let spec = TelemetrySpec::full(50_000, 16);
    let cfg = optane_config(4, 2, 4096, 4);
    let reqs = engine::uniform_reads(&cfg, 12_000);
    let workload = Workload::ClosedLoop { in_flight: 2048 };
    let (inline, inline_tel) = engine::run_observed(&cfg, workload, &reqs, 1, spec);
    for workers in WORKER_COUNTS {
        let (sharded, sharded_tel) = engine::run_observed(&cfg, workload, &reqs, workers, spec);
        assert_eq!(inline, sharded, "report, workers={workers}");
        assert_eq!(inline_tel, sharded_tel, "telemetry, workers={workers}");
    }

    let base = optane_config(2, 4, 4096, 23);
    let jcfg = SimConfig {
        pipeline: base.pipeline.with_journal_flush(48),
        ..base
    };
    let jreqs = engine::mixed_requests(&jcfg, 8_000, 3_000);
    let jworkload = Workload::ClosedLoop { in_flight: 128 };
    let (jinline, jinline_tel) = engine::run_observed(&jcfg, jworkload, &jreqs, 1, spec);
    for workers in WORKER_COUNTS {
        let (sharded, sharded_tel) = engine::run_observed(&jcfg, jworkload, &jreqs, workers, spec);
        assert_eq!(jinline, sharded, "journalled report, workers={workers}");
        assert_eq!(
            jinline_tel, sharded_tel,
            "journalled telemetry, workers={workers}"
        );
    }
}

#[test]
fn tenant_slo_and_telemetry_are_identical_across_worker_counts() {
    // The antagonist sweep with SLOs attached: per-tenant SLO reports, the
    // merged timeline, and the blame decomposition must match the inline
    // engine bit for bit at every worker count and under both policies.
    let cfg = optane_config(4, 2, 4096, 13);
    let mmpp = Mmpp2 {
        calm_rate_per_s: 50.0e3,
        burst_rate_per_s: 1.6e6,
        mean_calm_s: 4.0e-3,
        mean_burst_s: 1.0e-3,
    };
    let mut tenants: Vec<TenantSpec> = (0..4u32)
        .map(|i| {
            TenantSpec::new(
                i,
                &format!("steady-{i}"),
                ArrivalProcess::Poisson {
                    rate_per_s: 100.0e3,
                },
                1_500,
            )
            .with_slo(30.0, 500_000)
        })
        .collect();
    tenants.push(TenantSpec::new(
        100,
        "antagonist",
        ArrivalProcess::Mmpp(mmpp),
        5_400,
    ));
    let spec = TelemetrySpec::full(100_000, 8);
    for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
        let (inline, inline_tel) = engine::run_tenants_observed(&cfg, &tenants, policy, 1, spec);
        assert!(
            inline.tenants[0].slo.is_some(),
            "SLO'd tenant must carry a report"
        );
        for workers in WORKER_COUNTS {
            let (sharded, sharded_tel) =
                engine::run_tenants_observed(&cfg, &tenants, policy, workers, spec);
            assert_eq!(inline, sharded, "{policy:?}: report, workers={workers}");
            assert_eq!(
                inline_tel, sharded_tel,
                "{policy:?}: telemetry, workers={workers}"
            );
            assert_eq!(
                inline.prom_export(),
                sharded.prom_export(),
                "{policy:?}: prom export, workers={workers}"
            );
        }
    }
}

#[test]
fn span_ring_overflow_drops_identically() {
    // A recorder smaller than the span stream: the sharded replay must wrap
    // the ring and count drops exactly like the inline engine.
    let cfg = optane_config(2, 8, 4096, 77);
    let reqs = engine::uniform_reads(&cfg, 2_000);
    let workload = Workload::ClosedLoop { in_flight: 64 };
    let rec_inline = SpanRecorder::with_capacity(1024);
    engine::run_traced(&cfg, workload, &reqs, &rec_inline);
    assert!(rec_inline.dropped() > 0, "stream must overflow the ring");
    for workers in WORKER_COUNTS {
        let rec_sharded = SpanRecorder::with_capacity(1024);
        engine::run_sharded_traced(&cfg, workload, &reqs, workers, &rec_sharded);
        assert_eq!(
            rec_inline.events(),
            rec_sharded.events(),
            "workers={workers}"
        );
        assert_eq!(
            rec_inline.dropped(),
            rec_sharded.dropped(),
            "workers={workers}"
        );
    }
}
