//! Cross-validation of the event engine against the analytic layer.
//!
//! Two independent methodologies must agree on the paper's §2.2 worked
//! examples: the closed-form `bam_timing::littles` queue-depth sizing and the
//! engine's *measured* steady-state in-flight population. The examples are
//! the ones the paper works through — Optane (11 µs) and 980 Pro (324 µs)
//! latencies against the ×16 link's 512 B (51 M IOPS) and 4 KB (6.35 M IOPS)
//! command rates.

use bam_sim::{engine, ArrivalProcess, Mmpp2, QueuePairPolicy, SimConfig, TenantSpec, Workload};
use bam_timing::{required_queue_depth, steady_state_in_flight};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one worked example open-loop and returns the measured steady-state
/// mean in-flight depth.
fn simulate(latency_us: f64, rate_per_s: f64) -> bam_sim::SimReport {
    // Long enough that warm-up/drain (one latency each) is a tiny fraction
    // of the middle-half measurement window even at 324 µs × 51 M/s.
    let expected = steady_state_in_flight(rate_per_s, latency_us);
    let requests = ((expected * 16.0) as u64).max(50_000);
    let config = SimConfig::worked_example(latency_us, 0xBA4);
    let reqs = engine::uniform_reads(&config, requests);
    engine::run(&config, Workload::OpenLoop { rate_per_s }, &reqs)
}

#[test]
fn paper_worked_examples_agree_with_littles_law() {
    // (latency_us, rate, the paper's quoted depth)
    let cases = [
        (11.0, 51.0e6, 561),
        (11.0, 6.35e6, 70),
        (324.0, 51.0e6, 16524),
        (324.0, 6.35e6, 2057),
    ];
    for (latency_us, rate, quoted) in cases {
        let analytic = required_queue_depth(rate, latency_us);
        assert_eq!(analytic, quoted, "analytic model drifted from the paper");
        let report = simulate(latency_us, rate);
        let measured = report.depth.steady_state_mean();
        let rel = (measured / analytic as f64 - 1.0).abs();
        assert!(
            rel < 0.05,
            "{latency_us}us @ {rate}: simulated {measured:.1} vs analytic {analytic} \
             ({:.2}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn littles_identity_holds_inside_the_engine() {
    // mean latency × throughput ≈ mean in-flight, measured entirely inside
    // one simulation run (the engine's internal consistency check).
    for (latency_us, rate) in [(11.0, 6.35e6), (324.0, 6.35e6)] {
        let report = simulate(latency_us, rate);
        let littles = report.littles_in_flight();
        let measured = report.depth.steady_state_mean();
        assert!(
            (measured / littles - 1.0).abs() < 0.05,
            "measured {measured:.1} vs T*L {littles:.1}"
        );
        // The pure-delay scenario adds no queueing: the simulated latency is
        // the configured one.
        assert!((report.latency.mean_us / latency_us - 1.0).abs() < 0.01);
    }
}

#[test]
fn mmpp_dwell_statistics_match_the_configured_transition_rates() {
    // The modulating chain's observed mean dwells must reproduce the
    // configured ones — the MMPP is only a valid burst model if its state
    // process has the right time constants.
    let m = Mmpp2 {
        calm_rate_per_s: 200.0e3,
        burst_rate_per_s: 2.0e6,
        mean_calm_s: 2.0e-3,
        mean_burst_s: 0.5e-3,
    };
    let mut rng = StdRng::seed_from_u64(0xD11);
    let (arrivals, stats) = m.arrival_times(600_000, &mut rng);
    assert_eq!(arrivals.len(), 600_000);
    assert!(
        stats.calm_visits > 300 && stats.burst_visits > 300,
        "need enough completed dwells for stable statistics \
         ({} calm, {} burst)",
        stats.calm_visits,
        stats.burst_visits
    );
    let calm_rel = (stats.mean_calm_s() / m.mean_calm_s - 1.0).abs();
    let burst_rel = (stats.mean_burst_s() / m.mean_burst_s - 1.0).abs();
    assert!(
        calm_rel < 0.10,
        "calm dwell {} vs configured {} ({:.1}% off)",
        stats.mean_calm_s(),
        m.mean_calm_s,
        calm_rel * 100.0
    );
    assert!(
        burst_rel < 0.10,
        "burst dwell {} vs configured {} ({:.1}% off)",
        stats.mean_burst_s(),
        m.mean_burst_s,
        burst_rel * 100.0
    );
}

#[test]
fn superposed_poisson_streams_agree_with_littles_law() {
    // Four independent Poisson tenants at 1.5M/s each against a pure 11us
    // delay: the merged stream is Poisson at 6M/s, so the measured
    // steady-state in-flight population must pin to T*L = 66 within 5% —
    // the same identity `bam_timing::littles` applies analytically.
    let per_tenant_rate = 1.5e6;
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|id| {
            TenantSpec::new(
                id,
                &format!("poisson-{id}"),
                ArrivalProcess::Poisson {
                    rate_per_s: per_tenant_rate,
                },
                60_000,
            )
        })
        .collect();
    let config = SimConfig::worked_example(11.0, 0xBA5);
    let report = engine::run_tenants(&config, &tenants, QueuePairPolicy::Shared);
    let aggregate = 4.0 * per_tenant_rate;
    let analytic = steady_state_in_flight(aggregate, 11.0);
    let measured = report.overall.depth.steady_state_mean();
    let rel = (measured / analytic - 1.0).abs();
    assert!(
        rel < 0.05,
        "superposed in-flight {measured:.1} vs analytic {analytic:.1} ({:.2}% off)",
        rel * 100.0
    );
    // Each tenant individually sustains its own rate and sees the same
    // unloaded latency (pure delay adds no cross-tenant queueing).
    for t in &report.tenants {
        assert!((t.throughput_per_s / per_tenant_rate - 1.0).abs() < 0.05);
        assert!((t.latency.mean_us / 11.0 - 1.0).abs() < 0.01);
    }
}

#[test]
fn depth_timeline_ramps_to_plateau() {
    let report = simulate(324.0, 6.35e6);
    let samples = report.depth.sampled(1000);
    assert!(!samples.is_empty());
    // Early depth is far below the plateau; the middle sits near 2057.
    let early = samples[1].1;
    let mid = samples[samples.len() / 2].1;
    assert!(u64::from(early) < 500, "early depth {early}");
    assert!((1800..2300).contains(&mid), "mid depth {mid}");
}
