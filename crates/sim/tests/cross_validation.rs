//! Cross-validation of the event engine against the analytic layer.
//!
//! Two independent methodologies must agree on the paper's §2.2 worked
//! examples: the closed-form `bam_timing::littles` queue-depth sizing and the
//! engine's *measured* steady-state in-flight population. The examples are
//! the ones the paper works through — Optane (11 µs) and 980 Pro (324 µs)
//! latencies against the ×16 link's 512 B (51 M IOPS) and 4 KB (6.35 M IOPS)
//! command rates.

use bam_sim::{engine, SimConfig, Workload};
use bam_timing::{required_queue_depth, steady_state_in_flight};

/// Runs one worked example open-loop and returns the measured steady-state
/// mean in-flight depth.
fn simulate(latency_us: f64, rate_per_s: f64) -> bam_sim::SimReport {
    // Long enough that warm-up/drain (one latency each) is a tiny fraction
    // of the middle-half measurement window even at 324 µs × 51 M/s.
    let expected = steady_state_in_flight(rate_per_s, latency_us);
    let requests = ((expected * 16.0) as u64).max(50_000);
    let config = SimConfig::worked_example(latency_us, 0xBA4);
    let reqs = engine::uniform_reads(&config, requests);
    engine::run(&config, Workload::OpenLoop { rate_per_s }, &reqs)
}

#[test]
fn paper_worked_examples_agree_with_littles_law() {
    // (latency_us, rate, the paper's quoted depth)
    let cases = [
        (11.0, 51.0e6, 561),
        (11.0, 6.35e6, 70),
        (324.0, 51.0e6, 16524),
        (324.0, 6.35e6, 2057),
    ];
    for (latency_us, rate, quoted) in cases {
        let analytic = required_queue_depth(rate, latency_us);
        assert_eq!(analytic, quoted, "analytic model drifted from the paper");
        let report = simulate(latency_us, rate);
        let measured = report.depth.steady_state_mean();
        let rel = (measured / analytic as f64 - 1.0).abs();
        assert!(
            rel < 0.05,
            "{latency_us}us @ {rate}: simulated {measured:.1} vs analytic {analytic} \
             ({:.2}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn littles_identity_holds_inside_the_engine() {
    // mean latency × throughput ≈ mean in-flight, measured entirely inside
    // one simulation run (the engine's internal consistency check).
    for (latency_us, rate) in [(11.0, 6.35e6), (324.0, 6.35e6)] {
        let report = simulate(latency_us, rate);
        let littles = report.littles_in_flight();
        let measured = report.depth.steady_state_mean();
        assert!(
            (measured / littles - 1.0).abs() < 0.05,
            "measured {measured:.1} vs T*L {littles:.1}"
        );
        // The pure-delay scenario adds no queueing: the simulated latency is
        // the configured one.
        assert!((report.latency.mean_us / latency_us - 1.0).abs() < 0.01);
    }
}

#[test]
fn depth_timeline_ramps_to_plateau() {
    let report = simulate(324.0, 6.35e6);
    let samples = report.depth.sampled(1000);
    assert!(!samples.is_empty());
    // Early depth is far below the plateau; the middle sits near 2057.
    let early = samples[1].1;
    let mid = samples[samples.len() / 2].1;
    assert!(u64::from(early) < 500, "early depth {early}");
    assert!((1800..2300).contains(&mid), "mid depth {mid}");
}
