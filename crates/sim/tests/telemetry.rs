//! Integration tests of the observed engine: telemetry must be a pure
//! observer (bit-identical reports with and without it), blame must
//! attribute 100% of every request's latency against the engine's own
//! latency population, windowed series must reconcile with the run
//! aggregates, and per-tenant SLO evaluation must follow the specs.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{
    engine, ArrivalProcess, PipelineParams, QueuePairPolicy, SimConfig, Stage, TelemetrySpec,
    TenantSpec, Workload,
};

const WINDOW_NS: u64 = 50_000;

fn optane_config(num_ssds: u32, queue_pairs_per_ssd: u32, seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_ssds,
        queue_pairs_per_ssd,
        pipeline: PipelineParams::from_specs(
            &SsdSpec::intel_optane_p5800x(),
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            4096,
        ),
    }
}

#[test]
fn observation_does_not_perturb_the_report() {
    let cfg = optane_config(4, 8, 11);
    let reqs = engine::uniform_reads(&cfg, 6_000);
    let workload = Workload::ClosedLoop { in_flight: 256 };
    let plain = engine::run(&cfg, workload, &reqs);
    for workers in [1, 4] {
        let (observed, telemetry) = engine::run_observed(
            &cfg,
            workload,
            &reqs,
            workers,
            TelemetrySpec::full(WINDOW_NS, 8),
        );
        assert_eq!(plain, observed, "telemetry must be a pure observer");
        assert!(!telemetry.series.is_empty(), "series must have recorded");
        assert_eq!(telemetry.blame.requests, plain.completed);
    }
}

#[test]
fn blame_attributes_every_request_latency_exactly() {
    // Journalled write-heavy mix so every pipeline stage (journal flush
    // included) appears in the decomposition; top_k covers the whole
    // population so each request's waterfall is checked individually.
    let base = optane_config(2, 4, 23);
    let cfg = SimConfig {
        pipeline: base.pipeline.with_journal_flush(48),
        ..base
    };
    let reqs = engine::mixed_requests(&cfg, 4_000, 1_500);
    let workload = Workload::ClosedLoop { in_flight: 128 };
    let (report, telemetry) = engine::run_observed(
        &cfg,
        workload,
        &reqs,
        1,
        TelemetrySpec::full(WINDOW_NS, reqs.len()),
    );

    // The decomposition's total equals the engine's own latency population
    // to the nanosecond: blame attributes 100% of every request.
    let total: u64 = report.sorted_latencies_ns.iter().sum();
    let blame = &telemetry.blame;
    assert_eq!(blame.requests, report.completed);
    assert_eq!(blame.overall.total_ns(), total, "blame must tile the run");

    // Every request's waterfall is gapless from arrival to completion and
    // its service + wait steps tile the latency exactly.
    assert_eq!(blame.exemplars.len(), reqs.len());
    for ex in &blame.exemplars {
        assert_eq!(ex.waterfall.first().unwrap().start_ns, ex.arrive_ns);
        let attributed: u64 = ex.waterfall.iter().map(|w| w.service_ns + w.wait_ns).sum();
        assert_eq!(attributed, ex.latency_ns, "request {} must tile", ex.id);
        for w in ex.waterfall.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "request {} has a gap", ex.id);
        }
    }

    // The tail slice sits strictly above the population p99 cut.
    let above: u64 = report
        .sorted_latencies_ns
        .iter()
        .filter(|&&l| l > blame.p99_cut_ns)
        .count() as u64;
    assert_eq!(blame.tail_requests, above);
    assert!(blame.tail_requests > 0, "a 4k-request run must have a tail");
    // Journalled writes must show up as journal-flush blame.
    assert!(blame.overall.service_ns(Stage::JournalFlush) > 0);
}

#[test]
fn windowed_series_reconciles_with_run_aggregates() {
    let cfg = optane_config(4, 8, 7);
    let reqs = engine::uniform_reads(&cfg, 5_000);
    let workload = Workload::OpenLoop { rate_per_s: 2.0e6 };
    let (report, telemetry) =
        engine::run_observed(&cfg, workload, &reqs, 1, TelemetrySpec::full(WINDOW_NS, 4));

    let mut arrivals = 0u64;
    let mut completions = 0u64;
    let mut stage_dwell = 0u64;
    let mut depth_max = 0u64;
    for (_, w) in telemetry.series.iter() {
        arrivals += w.arrivals;
        completions += w.completions;
        stage_dwell += w.stage_dwell_ns.iter().sum::<u64>();
        depth_max = depth_max.max(w.depth_max);
    }
    assert_eq!(arrivals, reqs.len() as u64);
    assert_eq!(completions, report.completed);
    // Stage dwells tile every request, so their sum equals the summed
    // end-to-end latency — the same population blame tiles.
    let total: u64 = report.sorted_latencies_ns.iter().sum();
    assert_eq!(stage_dwell, total);
    assert_eq!(depth_max, u64::from(report.depth.max_depth()));
    // Wait never exceeds dwell in any window.
    for (_, w) in telemetry.series.iter() {
        for (d, q) in w.stage_dwell_ns.iter().zip(&w.stage_wait_ns) {
            assert!(q <= d, "wait cannot exceed dwell");
        }
    }
}

#[test]
fn slo_reports_follow_tenant_specs() {
    let cfg = optane_config(4, 2, 13);
    // Three steady tenants: one with an unreachable (tight) target, one with
    // a generous target, one with no SLO at all.
    let arrival = ArrivalProcess::Poisson {
        rate_per_s: 150.0e3,
    };
    let tenants = vec![
        TenantSpec::new(0, "tight", arrival, 2_000).with_slo(1.0, 1_000_000),
        TenantSpec::new(1, "loose", arrival, 2_000).with_slo(100_000.0, 1_000_000),
        TenantSpec::new(2, "unbound", arrival, 2_000),
    ];
    let (report, _) = engine::run_tenants_observed(
        &cfg,
        &tenants,
        QueuePairPolicy::Shared,
        1,
        TelemetrySpec::disabled(),
    );

    let tight = report.tenants[0].slo.expect("tight tenant has an SLO");
    let loose = report.tenants[1].slo.expect("loose tenant has an SLO");
    assert!(report.tenants[2].slo.is_none(), "no spec, no report");

    assert_eq!(tight.completions, report.tenants[0].completed);
    assert_eq!(tight.target_p99_us, 1.0);
    // A 1us target against a ~10us+ pipeline: every window violates and the
    // burn rate is far past budget.
    assert_eq!(tight.violations, tight.windows);
    assert!(tight.windows > 0);
    assert!(tight.burn_rate > 1.0, "burn rate {}", tight.burn_rate);
    assert!(tight.worst_window_p99_us > 1.0);

    // A 100ms target is never violated and burns no budget.
    assert_eq!(loose.violations, 0);
    assert_eq!(loose.over_target, 0);
    assert_eq!(loose.burn_rate, 0.0);
}

#[test]
fn slo_evaluation_is_identical_inline_and_sharded() {
    let cfg = optane_config(4, 2, 29);
    let arrival = ArrivalProcess::Poisson {
        rate_per_s: 200.0e3,
    };
    let tenants = vec![
        TenantSpec::new(0, "a", arrival, 1_500).with_slo(20.0, 500_000),
        TenantSpec::new(1, "b", arrival, 1_500).with_slo(15.0, 250_000),
        TenantSpec::new(2, "c", arrival, 1_500),
    ];
    let (inline, inline_tel) = engine::run_tenants_observed(
        &cfg,
        &tenants,
        QueuePairPolicy::WeightedFair,
        1,
        TelemetrySpec::full(WINDOW_NS, 8),
    );
    for workers in [2, 4, 8] {
        let (sharded, sharded_tel) = engine::run_tenants_observed(
            &cfg,
            &tenants,
            QueuePairPolicy::WeightedFair,
            workers,
            TelemetrySpec::full(WINDOW_NS, 8),
        );
        assert_eq!(inline, sharded, "workers={workers}");
        assert_eq!(inline_tel, sharded_tel, "telemetry, workers={workers}");
    }
}

#[test]
fn prom_export_carries_slo_metrics_for_spec_tenants_only() {
    let cfg = optane_config(2, 2, 31);
    let arrival = ArrivalProcess::Poisson {
        rate_per_s: 100.0e3,
    };
    let tenants = vec![
        TenantSpec::new(0, "with-slo", arrival, 1_000).with_slo(25.0, 500_000),
        TenantSpec::new(1, "without", arrival, 1_000),
    ];
    let (report, _) = engine::run_tenants_observed(
        &cfg,
        &tenants,
        QueuePairPolicy::Shared,
        1,
        TelemetrySpec::disabled(),
    );
    let text = report.prom_export();
    assert!(text.ends_with('\n') && !text.ends_with("\n\n"));
    assert!(text.contains("bam_sim_completed_total"));
    assert!(text.contains("bam_tenant_completed_total{tenant=\"with-slo\"}"));
    assert!(text.contains("bam_slo_burn_rate{tenant=\"with-slo\"}"));
    assert!(!text.contains("bam_slo_burn_rate{tenant=\"without\"}"));
    // Every sample line belongs to a declared metric family and every
    // counter keeps its _total suffix.
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.split(['{', ' ']).next().unwrap();
        assert!(
            text.contains(&format!("# TYPE {name} ")),
            "undeclared metric {name}"
        );
    }
}

// ---------------------------------------------------------------------------
// Property: thinned member attribution is exact, for arbitrary class shapes.
// ---------------------------------------------------------------------------

mod attribution_properties {
    use super::optane_config;
    use bam_sim::{
        engine, ArrivalProcess, LatencyHisto, LatencySummary, QueuePairPolicy, TenantClass,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

        /// For any member count and seed, the thinned per-member accounts of
        /// `run_classes_attributed` sum exactly to the class aggregate: the
        /// completed counts add up, and merging the member latency histograms
        /// reproduces the class's latency summary bit for bit.
        #[test]
        fn thinned_attribution_sums_to_the_class_aggregate(
            members in 1u32..48,
            seed in any::<u64>(),
            requests in 300u64..900,
        ) {
            let cfg = optane_config(2, 2, seed);
            // Fixed aggregate rate: the class stream (and run length) stays
            // the same while the thinning fan-out varies.
            let class = TenantClass::new(
                0,
                "pool",
                members,
                ArrivalProcess::Poisson { rate_per_s: 4.0e5 / f64::from(members) },
                requests,
            );
            let report = engine::run_classes_attributed(
                &cfg,
                std::slice::from_ref(&class),
                QueuePairPolicy::Shared,
                1,
            );
            let class_row = &report.tenants[0];
            prop_assert_eq!(class_row.completed, requests);

            let mut merged = LatencyHisto::new();
            let mut total = 0u64;
            for m in &class_row.members {
                prop_assert!(m.member < members, "member id out of range");
                prop_assert!(m.completed > 0, "attributed member must have work");
                prop_assert_eq!(m.histogram.count(), m.completed);
                prop_assert_eq!(&LatencySummary::from_histo(&m.histogram), &m.latency);
                merged.merge(&m.histogram);
                total += m.completed;
            }
            prop_assert_eq!(total, class_row.completed, "member counts must sum to the class");
            prop_assert_eq!(merged.count(), class_row.completed);
            prop_assert_eq!(
                &LatencySummary::from_histo(&merged),
                &class_row.latency,
                "merged member histograms must reproduce the class aggregate"
            );

            // The thinning stream itself is a pure function of (class, seed):
            // recomputing it yields the same per-member counts the engine
            // attributed.
            let assignment = class.member_of(cfg.seed);
            prop_assert_eq!(assignment.len(), requests as usize);
            let mut counts = vec![0u64; members as usize];
            for &m in &assignment {
                prop_assert!(m < members);
                counts[m as usize] += 1;
            }
            for m in &class_row.members {
                prop_assert_eq!(counts[m.member as usize], m.completed);
            }
            prop_assert_eq!(
                counts.iter().sum::<u64>(),
                class_row.completed,
                "every request must be attributed to exactly one member"
            );
        }
    }
}
