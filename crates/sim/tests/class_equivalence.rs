//! Differential suite for tenant-class aggregation and SLO admission
//! control.
//!
//! Three contracts:
//!
//! 1. **Closed-form merge is exact.** A class's engine-level stream is the
//!    closed-form superposition of its members, so a class run must be
//!    bit-identical to the explicit runs it aggregates: a one-member class
//!    equals its `TenantSpec`, and an M-member class equals the member
//!    *oracle* (`run_class_members` — one accounting slot per logical
//!    member over the identical merged stream).
//! 2. **Thinned attribution is consistent.** Per-member histograms from
//!    `run_classes_attributed` must equal the oracle's per-member accounts
//!    and merge exactly back to the class aggregate.
//! 3. **Admission control is deterministic and actually works.** Reports
//!    are bit-identical at any worker count, and under sustained overload
//!    the controller holds the class's p99 burn rate under budget while the
//!    uncontrolled run blows through it.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use bam_sim::{
    engine, AdmissionSpec, ArrivalProcess, LatencyHisto, Mmpp2, PipelineParams, QueuePairPolicy,
    Stage, TelemetrySpec, TenantClass, TenantSpec,
};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn optane_config(
    num_ssds: u32,
    queue_pairs_per_ssd: u32,
    bytes: u64,
    seed: u64,
) -> bam_sim::SimConfig {
    bam_sim::SimConfig {
        seed,
        num_ssds,
        queue_pairs_per_ssd,
        pipeline: PipelineParams::from_specs(
            &SsdSpec::intel_optane_p5800x(),
            &LinkSpec::gen4_x4(),
            &LinkSpec::gen4_x16(),
            bytes,
        ),
    }
}

#[test]
fn single_member_class_is_bitwise_its_explicit_tenant_run() {
    let cfg = optane_config(4, 2, 4096, 17);
    let class = TenantClass::new(
        3,
        "solo",
        1,
        ArrivalProcess::Poisson { rate_per_s: 2.0e5 },
        3_000,
    )
    .with_slo(40.0, 500_000);
    let spec = TenantSpec::new(
        3,
        "solo",
        ArrivalProcess::Poisson { rate_per_s: 2.0e5 },
        3_000,
    )
    .with_slo(40.0, 500_000);
    for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
        let via_class = engine::run_classes(&cfg, std::slice::from_ref(&class), policy, 1);
        let via_spec = engine::run_tenants(&cfg, std::slice::from_ref(&spec), policy);
        assert_eq!(via_class, via_spec, "{policy:?}");
    }
}

#[test]
fn closed_loop_class_matches_the_merged_explicit_tenant() {
    // ClosedLoop(w) members merge to ClosedLoop(M·w): the class run must be
    // bitwise the explicit merged tenant's, refills included.
    let cfg = optane_config(4, 2, 4096, 29);
    let class = TenantClass::new(
        0,
        "cl",
        4,
        ArrivalProcess::ClosedLoop { in_flight: 8 },
        6_000,
    );
    let spec = TenantSpec::new(0, "cl", ArrivalProcess::ClosedLoop { in_flight: 32 }, 6_000);
    let via_class = engine::run_classes(&cfg, &[class], QueuePairPolicy::Shared, 1);
    let via_spec = engine::run_tenants(&cfg, &[spec], QueuePairPolicy::Shared);
    assert_eq!(via_class, via_spec);
}

/// The ISSUE's equivalence scenario: an 8-member class vs the explicit
/// per-member accounting of the same merged stream. One Poisson class plus
/// an MMPP flash-crowd class keep the oracle honest across process shapes.
fn oracle_classes() -> Vec<TenantClass> {
    vec![
        TenantClass::new(
            0,
            "pool",
            8,
            ArrivalProcess::Poisson { rate_per_s: 12.5e3 },
            4_000,
        ),
        TenantClass::new(
            9,
            "crowd",
            4,
            ArrivalProcess::Mmpp(Mmpp2 {
                calm_rate_per_s: 12.5e3,
                burst_rate_per_s: 400.0e3,
                mean_calm_s: 4.0e-3,
                mean_burst_s: 1.0e-3,
            }),
            3_000,
        ),
    ]
}

#[test]
fn eight_member_class_matches_the_member_oracle_bit_for_bit() {
    let cfg = optane_config(4, 2, 4096, 13);
    let classes = oracle_classes();
    for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
        let class_run = engine::run_classes(&cfg, &classes, policy, 1);
        let oracle = engine::run_class_members(&cfg, &classes, policy, 1);
        // Same merged stream, same routing, different accounting granularity
        // — the overall report must not budge by a bit.
        assert_eq!(class_run.overall, oracle.overall, "{policy:?}");
        // The oracle sees one tenant per member.
        assert_eq!(oracle.tenants.len(), 12, "{policy:?}");
        assert_eq!(
            class_run.tenants.iter().map(|t| t.completed).sum::<u64>(),
            oracle.tenants.iter().map(|t| t.completed).sum::<u64>(),
            "{policy:?}"
        );
    }
}

#[test]
fn thinned_member_attribution_equals_the_oracle_accounts() {
    let cfg = optane_config(4, 2, 4096, 13);
    let classes = oracle_classes();
    let attributed = engine::run_classes_attributed(&cfg, &classes, QueuePairPolicy::Shared, 1);
    let oracle = engine::run_class_members(&cfg, &classes, QueuePairPolicy::Shared, 1);
    // Attribution must not perturb the run itself.
    let plain = engine::run_classes(&cfg, &classes, QueuePairPolicy::Shared, 1);
    assert_eq!(attributed.overall, plain.overall);

    let mut oracle_rows = oracle.tenants.iter();
    for (class, summary) in classes.iter().zip(&attributed.tenants) {
        // Member histograms merge exactly back to the class aggregate.
        let mut merged = LatencyHisto::new();
        let mut total = 0u64;
        for m in &summary.members {
            merged.merge(&m.histogram);
            total += m.completed;
        }
        assert_eq!(total, summary.completed, "class {}", class.id);
        assert_eq!(
            bam_sim::LatencySummary::from_histo(&merged),
            summary.latency,
            "class {}",
            class.id
        );
        // Each member's attributed account equals its oracle tenant (the
        // oracle emits rows in (class, member) order, absent members and
        // all).
        let mut members = summary.members.iter().peekable();
        for m in 0..class.members {
            let row = oracle_rows.next().expect("oracle row per member");
            let (completed, latency) = match members.peek() {
                Some(ms) if ms.member == m => {
                    let ms = members.next().unwrap();
                    (ms.completed, ms.latency)
                }
                _ => (0, bam_sim::LatencySummary::default()),
            };
            assert_eq!(row.completed, completed, "class {} member {m}", class.id);
            assert_eq!(row.latency, latency, "class {} member {m}", class.id);
        }
        assert!(members.next().is_none(), "class {}", class.id);
    }
}

#[test]
fn class_runs_are_identical_across_worker_counts() {
    // Classes with SLOs and an armed controller: the report, telemetry, and
    // Prometheus exposition must be bit-identical at any worker count.
    let cfg = optane_config(4, 2, 4096, 21);
    let classes = vec![
        TenantClass::new(
            0,
            "steady",
            10_000,
            ArrivalProcess::Poisson { rate_per_s: 150.0 },
            20_000,
        )
        .with_slo(30.0, 1_000_000)
        .with_admission(AdmissionSpec {
            burst: 8,
            refill_per_s: 1_000.0,
            defer_ns: 200_000,
            max_defers: 2,
        }),
        TenantClass::new(
            5,
            "background",
            1_000,
            ArrivalProcess::Poisson { rate_per_s: 50.0 },
            2_000,
        )
        .with_slo(60.0, 1_000_000),
    ];
    let spec = TelemetrySpec::full(100_000, 8);
    for policy in [QueuePairPolicy::Shared, QueuePairPolicy::WeightedFair] {
        let (inline, inline_tel) = engine::run_classes_observed(&cfg, &classes, policy, 1, spec);
        let adm = inline.tenants[0]
            .admission
            .expect("armed class must report admission");
        assert_eq!(adm.offered, 20_000, "{policy:?}");
        assert_eq!(adm.admitted + adm.rejected, adm.offered, "{policy:?}");
        assert_eq!(inline.tenants[0].completed, adm.admitted, "{policy:?}");
        assert!(adm.deferrals > 0, "{policy:?}: overload must defer");
        // Admit-after-deferral surfaces as the admission stage.
        assert!(
            inline.tenants[0].stages.histo(Stage::Admission).count() > 0,
            "{policy:?}: deferred admissions must carry the admission stage"
        );
        assert!(inline.tenants[1].admission.is_none(), "{policy:?}");
        for workers in WORKER_COUNTS {
            let (sharded, sharded_tel) =
                engine::run_classes_observed(&cfg, &classes, policy, workers, spec);
            assert_eq!(inline, sharded, "{policy:?}: report, workers={workers}");
            assert_eq!(
                inline_tel, sharded_tel,
                "{policy:?}: telemetry, workers={workers}"
            );
            assert_eq!(
                inline.prom_export(),
                sharded.prom_export(),
                "{policy:?}: prom export, workers={workers}"
            );
        }
        // Attribution at every worker count matches workers=1 exactly.
        let attributed = engine::run_classes_attributed(&cfg, &classes, policy, 1);
        for workers in WORKER_COUNTS {
            assert_eq!(
                attributed,
                engine::run_classes_attributed(&cfg, &classes, policy, workers),
                "{policy:?}: attribution, workers={workers}"
            );
        }
    }
}

#[test]
fn admission_control_caps_the_burn_rate_under_overload() {
    // Sustained overload past the starved array's knee: uncontrolled, the
    // open-loop queue grows without bound and the class torches its error
    // budget; controlled, the Little's-law depth clamp keeps admitted
    // requests near unloaded latency at the cost of rejections.
    let cfg = optane_config(4, 2, 4096, 37);
    let uncontrolled = TenantClass::new(
        0,
        "steady",
        10_000,
        ArrivalProcess::Poisson { rate_per_s: 150.0 },
        40_000,
    )
    .with_slo(30.0, 1_000_000);
    let controlled = uncontrolled.clone().with_admission(AdmissionSpec {
        burst: 8,
        refill_per_s: 1_000.0,
        defer_ns: 200_000,
        max_defers: 0,
    });

    let base = engine::run_classes(&cfg, &[uncontrolled], QueuePairPolicy::Shared, 1);
    let capped = engine::run_classes(&cfg, &[controlled], QueuePairPolicy::Shared, 1);

    let burn_base = base.tenants[0].slo.expect("slo").burn_rate;
    let burn_capped = capped.tenants[0].slo.expect("slo").burn_rate;
    assert!(
        burn_base > 1.0,
        "uncontrolled overload must exceed budget (burn {burn_base})"
    );
    assert!(
        burn_capped < 1.0,
        "controller must hold the burn rate under budget (burn {burn_capped})"
    );
    assert!(
        capped.tenants[0].latency.p99_us < base.tenants[0].latency.p99_us / 2.0,
        "controlled p99 {} vs uncontrolled {}",
        capped.tenants[0].latency.p99_us,
        base.tenants[0].latency.p99_us
    );
    let adm = capped.tenants[0].admission.expect("admission report");
    assert!(adm.rejected > 0, "sustained overload must shed load");
    assert!(adm.depth_limit >= 1);
    assert_eq!(adm.offered, 40_000);
}
