//! Windowed telemetry: fixed virtual-time aggregation windows, the SLO
//! evaluation layer on top of them, and a shareable telemetry sink for the
//! functional stack.
//!
//! A [`WindowedSeries`] cuts virtual time into fixed windows of
//! `window_ns` nanoseconds and accumulates order-independent statistics per
//! window: arrival/completion counters, a completion-latency histogram,
//! per-stage dwell and wait sums, queue-depth and occupancy samples, cache
//! hit/miss counters, and the journal backlog high-water mark. Every field
//! is an integer add or max (the histogram is an element-wise counter sum),
//! so [`WindowedSeries::merge`] is commutative and associative — per-SSD
//! shards fold in any order and the result is bit-identical to a
//! single-threaded recording of the same events.
//!
//! [`SloSpec`] + [`evaluate_slo`] turn a series into an [`SloReport`]: how
//! many evaluation windows broke the tenant's p99 target, how many
//! individual completions exceeded it, and the burn rate — the rate the
//! tenant consumes its 1% tail error budget (1.0 = exactly on budget,
//! above 1.0 the budget depletes early).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde::{Deserialize, Serialize};

use crate::histo::LatencyHisto;
use crate::span::{Stage, STAGE_COUNT};

/// One window's worth of accumulated telemetry. Every field is either a sum
/// or a max of `u64`s (the histogram is an element-wise counter sum), so
/// merging two `WindowStats` is commutative and associative.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Requests that arrived in this window.
    pub arrivals: u64,
    /// Requests that completed in this window.
    pub completions: u64,
    /// End-to-end latencies of the window's completions.
    pub latency: LatencyHisto,
    /// Per-stage dwell nanoseconds closed in this window
    /// (indexed by [`Stage::index`]).
    pub stage_dwell_ns: Vec<u64>,
    /// Per-stage wait (dwell minus service) nanoseconds closed in this
    /// window (indexed by [`Stage::index`]).
    pub stage_wait_ns: Vec<u64>,
    /// Sum of sampled queue-pair occupancies.
    pub occupancy_sum: u64,
    /// Number of occupancy samples.
    pub occupancy_samples: u64,
    /// Largest sampled queue-pair occupancy.
    pub occupancy_max: u64,
    /// Sum of sampled in-flight depths.
    pub depth_sum: u64,
    /// Number of depth samples.
    pub depth_samples: u64,
    /// Largest sampled in-flight depth.
    pub depth_max: u64,
    /// Cache probe hits observed in this window.
    pub cache_hits: u64,
    /// Cache probe misses observed in this window.
    pub cache_misses: u64,
    /// Journal backlog (outstanding records) high-water mark.
    pub journal_backlog_max: u64,
    /// Admission-controller deferrals issued in this window (a request may
    /// be deferred more than once; each backoff counts).
    pub deferrals: u64,
    /// Requests the admission controller rejected in this window.
    pub rejections: u64,
}

impl Default for WindowStats {
    fn default() -> Self {
        Self {
            arrivals: 0,
            completions: 0,
            latency: LatencyHisto::new(),
            stage_dwell_ns: vec![0; STAGE_COUNT],
            stage_wait_ns: vec![0; STAGE_COUNT],
            occupancy_sum: 0,
            occupancy_samples: 0,
            occupancy_max: 0,
            depth_sum: 0,
            depth_samples: 0,
            depth_max: 0,
            cache_hits: 0,
            cache_misses: 0,
            journal_backlog_max: 0,
            deferrals: 0,
            rejections: 0,
        }
    }
}

impl WindowStats {
    fn merge(&mut self, other: &WindowStats) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.latency.merge(&other.latency);
        for (a, b) in self.stage_dwell_ns.iter_mut().zip(&other.stage_dwell_ns) {
            *a += b;
        }
        for (a, b) in self.stage_wait_ns.iter_mut().zip(&other.stage_wait_ns) {
            *a += b;
        }
        self.occupancy_sum += other.occupancy_sum;
        self.occupancy_samples += other.occupancy_samples;
        self.occupancy_max = self.occupancy_max.max(other.occupancy_max);
        self.depth_sum += other.depth_sum;
        self.depth_samples += other.depth_samples;
        self.depth_max = self.depth_max.max(other.depth_max);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.journal_backlog_max = self.journal_backlog_max.max(other.journal_backlog_max);
        self.deferrals += other.deferrals;
        self.rejections += other.rejections;
    }

    /// Cache hit rate over the window's probes (0.0 when no probes).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Mean sampled in-flight depth (0.0 when no samples).
    pub fn depth_mean(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Mean sampled queue-pair occupancy (0.0 when no samples).
    pub fn occupancy_mean(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }
}

/// Fixed-window virtual-time telemetry aggregator.
///
/// Windows are keyed by `timestamp / window_ns` in a sorted map, so only
/// windows that saw an event cost memory and iteration is in time order.
/// A `window_ns` of zero disables the series: every `record_*` call is a
/// no-op and the series stays empty (the engines use this for runs without
/// telemetry so the record path costs one branch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedSeries {
    window_ns: u64,
    windows: BTreeMap<u64, WindowStats>,
}

impl WindowedSeries {
    /// A series cutting time into `window_ns`-sized windows (0 disables).
    pub fn new(window_ns: u64) -> Self {
        Self {
            window_ns,
            windows: BTreeMap::new(),
        }
    }

    /// The configured window size in nanoseconds (0 = disabled).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// True when recording is disabled (`window_ns == 0`).
    pub fn is_disabled(&self) -> bool {
        self.window_ns == 0
    }

    /// Number of windows that saw at least one event.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when no window saw any event.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    #[inline]
    fn window(&mut self, at_ns: u64) -> Option<&mut WindowStats> {
        if self.window_ns == 0 {
            return None;
        }
        Some(self.windows.entry(at_ns / self.window_ns).or_default())
    }

    /// Records one request arrival at `at_ns`.
    pub fn record_arrival(&mut self, at_ns: u64) {
        if let Some(w) = self.window(at_ns) {
            w.arrivals += 1;
        }
    }

    /// Records one request completion at `at_ns` with its end-to-end
    /// latency.
    pub fn record_completion(&mut self, at_ns: u64, latency_ns: u64) {
        if let Some(w) = self.window(at_ns) {
            w.completions += 1;
            w.latency.record(latency_ns);
        }
    }

    /// Attributes one closed stage (dwell and its wait share) to the window
    /// of the stage's closing instant.
    pub fn record_stage(&mut self, at_ns: u64, stage: Stage, dwell_ns: u64, wait_ns: u64) {
        if let Some(w) = self.window(at_ns) {
            w.stage_dwell_ns[stage.index()] += dwell_ns;
            w.stage_wait_ns[stage.index()] += wait_ns;
        }
    }

    /// Records one queue-pair occupancy sample.
    pub fn record_occupancy(&mut self, at_ns: u64, occupancy: u64) {
        if let Some(w) = self.window(at_ns) {
            w.occupancy_sum += occupancy;
            w.occupancy_samples += 1;
            w.occupancy_max = w.occupancy_max.max(occupancy);
        }
    }

    /// Records one in-flight depth sample.
    pub fn record_depth(&mut self, at_ns: u64, depth: u32) {
        if let Some(w) = self.window(at_ns) {
            w.depth_sum += u64::from(depth);
            w.depth_samples += 1;
            w.depth_max = w.depth_max.max(u64::from(depth));
        }
    }

    /// Records one cache probe outcome.
    pub fn record_cache(&mut self, at_ns: u64, hit: bool) {
        if let Some(w) = self.window(at_ns) {
            if hit {
                w.cache_hits += 1;
            } else {
                w.cache_misses += 1;
            }
        }
    }

    /// Records the journal backlog (outstanding records) observed at
    /// `at_ns`; the window keeps the high-water mark.
    pub fn record_journal_backlog(&mut self, at_ns: u64, records: u64) {
        if let Some(w) = self.window(at_ns) {
            w.journal_backlog_max = w.journal_backlog_max.max(records);
        }
    }

    /// Records one admission-controller deferral at `at_ns`.
    pub fn record_deferral(&mut self, at_ns: u64) {
        if let Some(w) = self.window(at_ns) {
            w.deferrals += 1;
        }
    }

    /// Records one admission-controller rejection at `at_ns`.
    pub fn record_rejection(&mut self, at_ns: u64) {
        if let Some(w) = self.window(at_ns) {
            w.rejections += 1;
        }
    }

    /// Merges another series recorded with the same `window_ns`. The merge
    /// is commutative and associative: folding any partition of an event
    /// stream in any order reproduces the single-recorder series exactly.
    ///
    /// # Panics
    ///
    /// Panics when the window sizes differ — merging incompatible series
    /// is a logic error, not a recoverable state.
    pub fn merge(&mut self, other: &WindowedSeries) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window sizes"
        );
        for (idx, stats) in &other.windows {
            self.windows.entry(*idx).or_default().merge(stats);
        }
    }

    /// Iterates the populated windows in time order as
    /// `(window start ns, stats)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &WindowStats)> + '_ {
        self.windows
            .iter()
            .map(|(idx, w)| (idx * self.window_ns, w))
    }
}

/// A tenant's service-level objective: a p99 latency target checked over
/// fixed evaluation windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Target 99th-percentile latency in microseconds.
    pub target_p99_us: f64,
    /// Evaluation window in virtual nanoseconds.
    pub window_ns: u64,
}

/// The outcome of evaluating an [`SloSpec`] over a [`WindowedSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The evaluated target, echoed for reports.
    pub target_p99_us: f64,
    /// The evaluation window, echoed for reports.
    pub window_ns: u64,
    /// Windows that saw at least one completion.
    pub windows: u64,
    /// Windows whose p99 exceeded the target.
    pub violations: u64,
    /// Total completions across all windows.
    pub completions: u64,
    /// Completions whose latency exceeded the target (histogram-resolved:
    /// counted from buckets entirely above the target, so within the
    /// histogram's ≤ ~1.6% bucket error of the exact count).
    pub over_target: u64,
    /// Rate of tail-budget consumption against a 1% error budget:
    /// `(over_target / completions) / 0.01`. 1.0 means the tenant breaks
    /// its target on exactly 1% of requests; 2.0 burns the budget twice as
    /// fast. 0.0 when no requests completed.
    pub burn_rate: f64,
    /// The worst window's p99 in microseconds (0.0 when no windows).
    pub worst_window_p99_us: f64,
    /// Start of the worst window in nanoseconds (earliest on ties).
    pub worst_window_start_ns: u64,
}

/// The error budget the burn rate is measured against: a p99 target
/// tolerates 1% of requests over the line.
const SLO_ERROR_BUDGET: f64 = 0.01;

/// Evaluates `spec` over the completion telemetry of `series`.
///
/// A window counts as a violation when the p99 of its own completions
/// exceeds the target. The burn rate is population-based (per-request, not
/// per-window), so a single catastrophic window and a uniform trickle of
/// stragglers read on the same scale.
///
/// `series` must have been recorded with `spec.window_ns` (the engines
/// guarantee this by constructing the series from the spec).
pub fn evaluate_slo(series: &WindowedSeries, spec: &SloSpec) -> SloReport {
    let target_ns = (spec.target_p99_us * 1e3).round().max(0.0) as u64;
    let mut windows = 0u64;
    let mut violations = 0u64;
    let mut completions = 0u64;
    let mut over_target = 0u64;
    let mut worst_p99_ns = 0u64;
    let mut worst_start_ns = 0u64;
    let mut seen_any = false;
    for (start_ns, stats) in series.iter() {
        if stats.completions == 0 {
            continue;
        }
        windows += 1;
        completions += stats.completions;
        over_target += stats.latency.count_above(target_ns);
        let p99_ns = stats.latency.value_at_quantile(0.99);
        if p99_ns as f64 / 1e3 > spec.target_p99_us {
            violations += 1;
        }
        if !seen_any || p99_ns > worst_p99_ns {
            seen_any = true;
            worst_p99_ns = p99_ns;
            worst_start_ns = start_ns;
        }
    }
    SloReport {
        target_p99_us: spec.target_p99_us,
        window_ns: spec.window_ns,
        windows,
        violations,
        completions,
        over_target,
        burn_rate: if completions == 0 {
            0.0
        } else {
            (over_target as f64 / completions as f64) / SLO_ERROR_BUDGET
        },
        worst_window_p99_us: worst_p99_ns as f64 / 1e3,
        worst_window_start_ns: worst_start_ns,
    }
}

/// A [`TelemetryHub`] timestamps functional-layer telemetry with its own
/// step counter (the same virtual-time convention [`crate::SpanRecorder`]
/// uses) and accumulates it into a [`WindowedSeries`].
pub struct TelemetryHub {
    series: Mutex<WindowedSeries>,
    steps: AtomicU64,
}

impl TelemetryHub {
    /// A hub windowing its step clock into `window_steps`-sized windows.
    pub fn new(window_steps: u64) -> Self {
        Self {
            series: Mutex::new(WindowedSeries::new(window_steps)),
            steps: AtomicU64::new(0),
        }
    }

    /// Advances the virtual step clock and returns the new time.
    pub fn tick(&self) -> u64 {
        self.steps.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current virtual step time without advancing it.
    pub fn now(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Records one cache probe outcome at the next step instant.
    pub fn cache_access(&self, hit: bool) {
        let at = self.tick();
        self.series.lock().unwrap().record_cache(at, hit);
    }

    /// Records the journal backlog observed at the next step instant.
    pub fn journal_backlog(&self, records: u64) {
        let at = self.tick();
        self.series
            .lock()
            .unwrap()
            .record_journal_backlog(at, records);
    }

    /// A snapshot of the accumulated series.
    pub fn snapshot(&self) -> WindowedSeries {
        self.series.lock().unwrap().clone()
    }
}

#[derive(Default)]
struct TelemetrySinkInner {
    hub: RwLock<Option<Arc<TelemetryHub>>>,
    installed: AtomicBool,
}

/// A shareable, optionally-populated handle to a [`TelemetryHub`] —
/// the windowed-telemetry counterpart of [`crate::SpanSink`].
///
/// Hot paths check one relaxed atomic before touching the lock, so an
/// uninstalled sink costs a single predictable branch. Cloning shares the
/// same slot — install once on a system handle and every component holding
/// a clone starts reporting.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Arc<TelemetrySinkInner>,
}

impl TelemetrySink {
    /// An empty (uninstalled) sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a hub; subsequent [`with`](Self::with) calls see it.
    pub fn install(&self, hub: Arc<TelemetryHub>) {
        *self.inner.hub.write().unwrap() = Some(hub);
        self.inner.installed.store(true, Ordering::Release);
    }

    /// Removes the hub, returning the sink to its no-op state.
    pub fn uninstall(&self) {
        self.inner.installed.store(false, Ordering::Release);
        *self.inner.hub.write().unwrap() = None;
    }

    /// True when a hub is installed (single relaxed load).
    pub fn is_installed(&self) -> bool {
        self.inner.installed.load(Ordering::Relaxed)
    }

    /// Runs `f` against the hub when installed; no-op otherwise.
    pub fn with<R>(&self, f: impl FnOnce(&TelemetryHub) -> R) -> Option<R> {
        if !self.is_installed() {
            return None;
        }
        let guard = self.inner.hub.read().unwrap();
        guard.as_ref().map(|h| f(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> WindowedSeries {
        let mut s = WindowedSeries::new(1_000);
        s.record_arrival(100);
        s.record_arrival(1_100);
        s.record_completion(900, 800);
        s.record_completion(1_900, 1_600);
        s.record_stage(900, Stage::Media, 500, 100);
        s.record_stage(1_900, Stage::Media, 700, 300);
        s.record_occupancy(100, 3);
        s.record_occupancy(150, 5);
        s.record_depth(100, 2);
        s.record_cache(100, true);
        s.record_cache(120, false);
        s.record_journal_backlog(1_500, 7);
        s
    }

    #[test]
    fn windows_are_keyed_by_fixed_boundaries() {
        let s = sample_series();
        let windows: Vec<(u64, &WindowStats)> = s.iter().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].0, 0);
        assert_eq!(windows[1].0, 1_000);
        assert_eq!(windows[0].1.arrivals, 1);
        assert_eq!(windows[0].1.completions, 1);
        assert_eq!(windows[0].1.stage_dwell_ns[Stage::Media.index()], 500);
        assert_eq!(windows[0].1.stage_wait_ns[Stage::Media.index()], 100);
        assert_eq!(windows[0].1.occupancy_max, 5);
        assert_eq!(windows[0].1.occupancy_sum, 8);
        assert_eq!(windows[0].1.cache_hits, 1);
        assert_eq!(windows[0].1.cache_misses, 1);
        assert!((windows[0].1.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(windows[1].1.journal_backlog_max, 7);
    }

    #[test]
    fn merge_is_commutative_and_matches_single_recorder() {
        let full = sample_series();
        // Split the same events across two series.
        let mut a = WindowedSeries::new(1_000);
        a.record_arrival(100);
        a.record_completion(1_900, 1_600);
        a.record_stage(900, Stage::Media, 500, 100);
        a.record_occupancy(150, 5);
        a.record_cache(120, false);
        let mut b = WindowedSeries::new(1_000);
        b.record_arrival(1_100);
        b.record_completion(900, 800);
        b.record_stage(1_900, Stage::Media, 700, 300);
        b.record_occupancy(100, 3);
        b.record_depth(100, 2);
        b.record_cache(100, true);
        b.record_journal_backlog(1_500, 7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, full, "merge must equal the single-recorder series");
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_windows() {
        let mut a = WindowedSeries::new(1_000);
        let b = WindowedSeries::new(2_000);
        a.merge(&b);
    }

    #[test]
    fn zero_window_disables_recording() {
        let mut s = WindowedSeries::new(0);
        assert!(s.is_disabled());
        s.record_arrival(100);
        s.record_completion(200, 100);
        s.record_depth(100, 4);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn slo_counts_violating_windows_and_burn_rate() {
        let mut s = WindowedSeries::new(1_000_000);
        // Window 0: 99 fast + 1 slow → p99 at the fast value, one request
        // over target.
        for i in 0..99u64 {
            s.record_completion(i * 1_000, 50_000);
        }
        s.record_completion(200_000, 400_000);
        // Window 1: all slow → violating window.
        for i in 0..100u64 {
            s.record_completion(1_000_000 + i * 1_000, 300_000);
        }
        let spec = SloSpec {
            target_p99_us: 100.0,
            window_ns: 1_000_000,
        };
        let report = evaluate_slo(&s, &spec);
        assert_eq!(report.windows, 2);
        assert_eq!(report.violations, 1);
        assert_eq!(report.completions, 200);
        assert_eq!(report.over_target, 101);
        // 101 of 200 over target against a 1% budget.
        assert!((report.burn_rate - (101.0 / 200.0) / 0.01).abs() < 1e-9);
        assert!(report.worst_window_p99_us > 100.0);
        assert_eq!(report.worst_window_start_ns, 1_000_000);
    }

    #[test]
    fn slo_on_empty_series_is_zeroed_and_nan_free() {
        let spec = SloSpec {
            target_p99_us: 100.0,
            window_ns: 1_000_000,
        };
        let report = evaluate_slo(&WindowedSeries::new(1_000_000), &spec);
        assert_eq!(report.windows, 0);
        assert_eq!(report.violations, 0);
        assert_eq!(report.completions, 0);
        assert_eq!(report.burn_rate, 0.0);
        assert_eq!(report.worst_window_p99_us, 0.0);
        assert!(!report.burn_rate.is_nan());
    }

    #[test]
    fn telemetry_sink_is_noop_until_installed() {
        let sink = TelemetrySink::new();
        assert!(!sink.is_installed());
        assert_eq!(sink.with(|_| 1), None);
        let hub = Arc::new(TelemetryHub::new(16));
        sink.install(hub.clone());
        let shared = sink.clone();
        shared.with(|h| h.cache_access(true));
        shared.with(|h| h.cache_access(false));
        shared.with(|h| h.journal_backlog(5));
        assert_eq!(hub.now(), 3);
        let snap = hub.snapshot();
        let (_, w) = snap.iter().next().unwrap();
        assert_eq!(w.cache_hits, 1);
        assert_eq!(w.cache_misses, 1);
        assert_eq!(w.journal_backlog_max, 5);
        sink.uninstall();
        assert_eq!(shared.with(|_| 1), None);
    }
}
