//! Trace and metrics exporters.
//!
//! Both exporters render with pure integer math (no float formatting of
//! computed values beyond `Debug`), so for a fixed event/metric set the
//! output is byte-identical across runs — the property the CI determinism
//! diff leans on.

use crate::histo::LatencyHisto;
use crate::span::SpanEvent;

/// Formats virtual nanoseconds as the microsecond decimal Chrome expects,
/// without going through floating point: `12345` ns → `"12.345"`.
fn us_decimal(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders span events as Chrome trace-event JSON (the "JSON Array Format"
/// with complete `"ph":"X"` events), loadable in Perfetto or
/// `chrome://tracing`. Events keep recording order; `track` becomes the
/// thread id so each queue pair / device gets its own row.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"span\":{},\"arg\":{}}}}}",
            e.stage.label(),
            us_decimal(e.start_ns),
            us_decimal(e.end_ns.saturating_sub(e.start_ns)),
            e.track,
            e.span.0,
            e.arg,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Escapes a HELP string per the Prometheus text format: backslash,
/// double quote, and newline become `\\`, `\"`, and `\n`.
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a label value (same escape set as [`escape_help`]).
fn escape_label(value: &str) -> String {
    escape_help(value)
}

/// Renders a label set as `{k="v",...}` (empty string for no labels).
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The conventional counter suffix; appended when a counter name lacks it.
fn counter_name(name: &str) -> String {
    if name.ends_with("_total") {
        name.to_string()
    } else {
        format!("{name}_total")
    }
}

/// Incremental Prometheus text-exposition writer.
///
/// The caller decides the metric families; this type guarantees the
/// format: HELP strings escape `\`, `"`, and newlines; counters carry the
/// conventional `_total` suffix (appended when missing, never doubled);
/// label values escape the same set; histogram families emit cumulative
/// `le` buckets with a closing `+Inf`; and [`finish`](Self::finish) ends
/// the exposition with exactly one trailing newline. Values render via
/// `Debug`, matching the repo's JSON convention that integral floats keep
/// their `.0`.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} {kind}\n",
            escape_help(help)
        ));
    }

    /// A monotone counter sample. The name gains a `_total` suffix when it
    /// does not already carry one.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = counter_name(name);
        self.header(&name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// A counter family with one labelled sample per entry (`_total`
    /// suffix applied as in [`counter`](Self::counter)).
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], u64)]) {
        let name = counter_name(name);
        self.header(&name, help, "counter");
        for (labels, value) in samples {
            self.out
                .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
        }
    }

    /// A gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value:?}\n"));
    }

    /// A gauge family with one labelled sample per entry.
    pub fn gauge_family(&mut self, name: &str, help: &str, samples: &[(&[(&str, &str)], f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in samples {
            self.out
                .push_str(&format!("{name}{} {value:?}\n", render_labels(labels)));
        }
    }

    /// A histogram family from a [`LatencyHisto`]: one `_bucket` series per
    /// non-empty bucket (upper bounds in nanoseconds), plus `+Inf`, `_sum`
    /// and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, histo: &LatencyHisto) {
        self.header(name, help, "histogram");
        for (upper, cum) in histo.cumulative_buckets() {
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
        }
        self.out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            histo.count(),
            histo.sum_ns(),
            histo.count(),
        ));
    }

    /// The accumulated exposition text, guaranteed to end with exactly one
    /// trailing newline.
    pub fn finish(self) -> String {
        let mut out = self.out;
        while out.ends_with("\n\n") {
            out.pop();
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, Stage};

    #[test]
    fn chrome_trace_renders_complete_events() {
        let events = vec![
            SpanEvent {
                span: SpanId(7),
                stage: Stage::Media,
                start_ns: 1_500,
                end_ns: 12_345,
                track: 3,
                arg: 42,
            },
            SpanEvent {
                span: SpanId(7),
                stage: Stage::Completion,
                start_ns: 12_345,
                end_ns: 12_400,
                track: 3,
                arg: 0,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"media\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":10.845"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"span\":7"));
        // Deterministic: same events, same bytes.
        assert_eq!(json, chrome_trace_json(&events));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut w = PromWriter::new();
        w.counter("bam_cache_hits_total", "Cache hits.", 12);
        w.gauge("bam_hit_rate", "Hit rate.", 0.75);
        let histo = LatencyHisto::from_samples([10u64, 10, 2_000]);
        w.histogram("bam_fetch_latency_ns", "Fetch latency.", &histo);
        let text = w.finish();
        assert!(text.contains("# TYPE bam_cache_hits_total counter"));
        assert!(text.contains("bam_cache_hits_total 12\n"));
        assert!(text.contains("bam_hit_rate 0.75\n"));
        assert!(text.contains("bam_fetch_latency_ns_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("bam_fetch_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("bam_fetch_latency_ns_sum 2020\n"));
        assert!(text.contains("bam_fetch_latency_ns_count 3\n"));
    }

    #[test]
    fn counters_gain_the_total_suffix_exactly_once() {
        let mut w = PromWriter::new();
        w.counter("bam_reads", "Reads.", 3);
        w.counter("bam_writes_total", "Writes.", 4);
        let text = w.finish();
        assert!(text.contains("# TYPE bam_reads_total counter"));
        assert!(text.contains("bam_reads_total 3\n"));
        // Already-suffixed names are untouched, never doubled.
        assert!(text.contains("bam_writes_total 4\n"));
        assert!(!text.contains("bam_writes_total_total"));
    }

    #[test]
    fn help_strings_escape_backslash_quote_and_newline() {
        let mut w = PromWriter::new();
        w.gauge("bam_g", "line one\nline \"two\" with \\ slash", 1.0);
        let text = w.finish();
        assert!(
            text.contains("# HELP bam_g line one\\nline \\\"two\\\" with \\\\ slash\n"),
            "{text:?}"
        );
        // No raw newline survives inside the HELP line.
        let help_line = text.lines().next().unwrap();
        assert!(help_line.starts_with("# HELP bam_g "));
        assert!(!help_line.contains('\"') || help_line.contains("\\\""));
    }

    #[test]
    fn labelled_families_render_escaped_label_values() {
        let mut w = PromWriter::new();
        let steady: &[(&str, &str)] = &[("tenant", "steady-0"), ("policy", "shared")];
        let odd: &[(&str, &str)] = &[("tenant", "we\"ird\\name")];
        w.gauge_family(
            "bam_slo_burn_rate",
            "Burn rate.",
            &[(steady, 1.5), (odd, 0.0)],
        );
        w.counter_family("bam_slo_violations", "Violations.", &[(steady, 2)]);
        let text = w.finish();
        assert!(text.contains("bam_slo_burn_rate{tenant=\"steady-0\",policy=\"shared\"} 1.5\n"));
        assert!(text.contains("bam_slo_burn_rate{tenant=\"we\\\"ird\\\\name\"} 0.0\n"));
        assert!(
            text.contains("bam_slo_violations_total{tenant=\"steady-0\",policy=\"shared\"} 2\n")
        );
        // One header per family, not per sample.
        assert_eq!(text.matches("# TYPE bam_slo_burn_rate gauge").count(), 1);
    }

    #[test]
    fn finish_guarantees_exactly_one_trailing_newline() {
        assert_eq!(PromWriter::new().finish(), "\n");
        let mut w = PromWriter::new();
        w.counter("bam_x", "X.", 1);
        let text = w.finish();
        assert!(text.ends_with('\n'));
        assert!(!text.ends_with("\n\n"));
    }
}
