//! Trace and metrics exporters.
//!
//! Both exporters render with pure integer math (no float formatting of
//! computed values beyond `Debug`), so for a fixed event/metric set the
//! output is byte-identical across runs — the property the CI determinism
//! diff leans on.

use crate::histo::LatencyHisto;
use crate::span::SpanEvent;

/// Formats virtual nanoseconds as the microsecond decimal Chrome expects,
/// without going through floating point: `12345` ns → `"12.345"`.
fn us_decimal(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders span events as Chrome trace-event JSON (the "JSON Array Format"
/// with complete `"ph":"X"` events), loadable in Perfetto or
/// `chrome://tracing`. Events keep recording order; `track` becomes the
/// thread id so each queue pair / device gets its own row.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"span\":{},\"arg\":{}}}}}",
            e.stage.label(),
            us_decimal(e.start_ns),
            us_decimal(e.end_ns.saturating_sub(e.start_ns)),
            e.track,
            e.span.0,
            e.arg,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Incremental Prometheus text-exposition writer.
///
/// The caller decides the metric families; this type only guarantees the
/// format (HELP/TYPE headers, label rendering, cumulative `le` buckets with
/// a closing `+Inf`). Values render via `Debug`, matching the repo's JSON
/// convention that integral floats keep their `.0`.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out
            .push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// A monotone counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// A gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value:?}\n"));
    }

    /// A histogram family from a [`LatencyHisto`]: one `_bucket` series per
    /// non-empty bucket (upper bounds in nanoseconds), plus `+Inf`, `_sum`
    /// and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, histo: &LatencyHisto) {
        self.header(name, help, "histogram");
        for (upper, cum) in histo.cumulative_buckets() {
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
        }
        self.out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            histo.count(),
            histo.sum_ns(),
            histo.count(),
        ));
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, Stage};

    #[test]
    fn chrome_trace_renders_complete_events() {
        let events = vec![
            SpanEvent {
                span: SpanId(7),
                stage: Stage::Media,
                start_ns: 1_500,
                end_ns: 12_345,
                track: 3,
                arg: 42,
            },
            SpanEvent {
                span: SpanId(7),
                stage: Stage::Completion,
                start_ns: 12_345,
                end_ns: 12_400,
                track: 3,
                arg: 0,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"media\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":10.845"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"span\":7"));
        // Deterministic: same events, same bytes.
        assert_eq!(json, chrome_trace_json(&events));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n"
        );
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut w = PromWriter::new();
        w.counter("bam_cache_hits_total", "Cache hits.", 12);
        w.gauge("bam_hit_rate", "Hit rate.", 0.75);
        let histo = LatencyHisto::from_samples([10u64, 10, 2_000]);
        w.histogram("bam_fetch_latency_ns", "Fetch latency.", &histo);
        let text = w.finish();
        assert!(text.contains("# TYPE bam_cache_hits_total counter"));
        assert!(text.contains("bam_cache_hits_total 12\n"));
        assert!(text.contains("bam_hit_rate 0.75\n"));
        assert!(text.contains("bam_fetch_latency_ns_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("bam_fetch_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("bam_fetch_latency_ns_sum 2020\n"));
        assert!(text.contains("bam_fetch_latency_ns_count 3\n"));
    }
}
