//! Log-linear latency histogram.
//!
//! Values below `LINEAR_MAX` are recorded exactly (one bucket per value);
//! above it each power-of-two octave is split into [`SUBBUCKETS`] linear
//! sub-buckets, bounding the relative quantisation error of any recorded
//! value by `1 / SUBBUCKETS` (≈ 1.6%) and the error of the reported bucket
//! midpoint by half that. The layout is the classic HdrHistogram scheme
//! specialised to `u64` nanoseconds with no dynamic resizing: every
//! histogram owns the same [`HISTO_BUCKETS`] counters, so merging is a
//! plain element-wise sum and equality is structural.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two octave.
const SUBBUCKETS: u64 = 64;
/// Values strictly below this are exact (identity-bucketed).
const LINEAR_MAX: u64 = SUBBUCKETS;
/// Total bucket count: 64 exact buckets + 58 octaves × 64 sub-buckets.
pub const HISTO_BUCKETS: usize = (SUBBUCKETS + (63 - 6) * SUBBUCKETS + SUBBUCKETS) as usize;

/// Bucket index for a value. Exact below `LINEAR_MAX`; log-linear above.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // Highest set bit h >= 6; the octave [2^h, 2^(h+1)) is cut into 64
    // sub-buckets of width 2^(h-6).
    let h = 63 - v.leading_zeros() as u64;
    let sub = (v >> (h - 6)) - SUBBUCKETS;
    ((h - 5) * SUBBUCKETS + sub) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBBUCKETS {
        return idx;
    }
    let h = (idx >> 6) + 5;
    let sub = idx & 63;
    (1u64 << h) + sub * (1u64 << (h - 6))
}

/// Width of a bucket (1 for the exact region).
fn bucket_width(idx: usize) -> u64 {
    if (idx as u64) < 2 * SUBBUCKETS {
        1
    } else {
        1u64 << ((idx as u64 >> 6) + 5 - 6)
    }
}

/// A mergeable, constant-size latency histogram over `u64` nanoseconds.
///
/// `count`, `sum`, `min` and `max` are tracked exactly; quantiles are
/// answered from the bucket midpoint (clamped to the observed `[min, max]`
/// range), so `value_at_quantile` is within ~0.8% of the exact
/// nearest-rank answer.
#[derive(Clone, Serialize, Deserialize)]
pub struct LatencyHisto {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for LatencyHisto {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts == other.counts
    }
}

impl Eq for LatencyHisto {}

impl std::fmt::Debug for LatencyHisto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHisto")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("min_ns", &self.min_ns())
            .field("max_ns", &self.max_ns())
            .field("p50_ns", &self.value_at_quantile(0.50))
            .field("p99_ns", &self.value_at_quantile(0.99))
            .finish()
    }
}

impl LatencyHisto {
    /// An empty histogram with all [`HISTO_BUCKETS`] counters zeroed.
    pub fn new() -> Self {
        Self {
            counts: vec![0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Builds a histogram from an iterator of nanosecond samples.
    pub fn from_samples<I: IntoIterator<Item = u64>>(samples: I) -> Self {
        let mut h = Self::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Element-wise merge: afterwards `self` equals the histogram of the
    /// concatenated sample streams.
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Exact mean in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), answered from the bucket
    /// midpoint and clamped to the observed `[min, max]`. Returns 0 on an
    /// empty histogram rather than panicking — zero-sample inputs are a
    /// legitimate state (e.g. a tenant that issued no requests).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_lower(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Number of recorded samples above `ns`, answered from the buckets:
    /// every bucket whose lower bound exceeds `ns` counts in full, the
    /// bucket containing `ns` does not. Exact in the linear region (values
    /// below `LINEAR_MAX`); above it the boundary bucket introduces at
    /// most the histogram's ≤ ~1.6% relative quantisation error. The answer
    /// is a pure function of the bucket counts, so merged histograms agree
    /// with single-recorder ones bit for bit.
    pub fn count_above(&self, ns: u64) -> u64 {
        if self.count == 0 || ns >= self.max {
            return 0;
        }
        let first = bucket_index(ns) + 1;
        self.counts[first..].iter().sum()
    }

    /// Iterates the non-empty buckets as `(inclusive_upper_bound_ns,
    /// cumulative_count)` pairs, the shape Prometheus histogram series want.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.counts.iter().enumerate().filter_map(move |(idx, &c)| {
            if c == 0 {
                return None;
            }
            cum += c;
            Some((bucket_lower(idx) + (bucket_width(idx) - 1), cum))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHisto::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        for v in 0..LINEAR_MAX {
            let q = (v + 1) as f64 / LINEAR_MAX as f64;
            assert_eq!(h.value_at_quantile(q), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 3] {
                probes.push((1u64 << exp).saturating_add(off << exp.saturating_sub(7)));
            }
        }
        probes.sort_unstable();
        let mut last = 0usize;
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < HISTO_BUCKETS, "idx {idx} out of range for {v}");
            assert!(idx >= last, "index must not decrease ({v})");
            assert!(bucket_lower(idx) <= v);
            assert!(v - bucket_lower(idx) < bucket_width(idx), "v {v} idx {idx}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), HISTO_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        let samples: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 9_999_991 + 1).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let h = LatencyHisto::from_samples(samples.iter().copied());
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = h.value_at_quantile(q) as f64;
            assert!(
                (approx - exact).abs() <= exact / SUBBUCKETS as f64 + 1.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let a: Vec<u64> = (0..500u64).map(|i| i * 37 + 5).collect();
        let b: Vec<u64> = (0..700u64).map(|i| i * 101 + 60_000).collect();
        let mut ha = LatencyHisto::from_samples(a.iter().copied());
        let hb = LatencyHisto::from_samples(b.iter().copied());
        ha.merge(&hb);
        let hc = LatencyHisto::from_samples(a.into_iter().chain(b));
        assert_eq!(ha, hc);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHisto::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.cumulative_buckets().count(), 0);
    }

    #[test]
    fn count_above_is_exact_in_the_linear_region() {
        let h = LatencyHisto::from_samples(0..LINEAR_MAX);
        for t in 0..LINEAR_MAX {
            assert_eq!(h.count_above(t), LINEAR_MAX - t - 1, "threshold {t}");
        }
        assert_eq!(h.count_above(LINEAR_MAX), 0);
        assert_eq!(LatencyHisto::new().count_above(0), 0);
    }

    #[test]
    fn count_above_tracks_exact_within_bucket_error() {
        let samples: Vec<u64> = (0..10_000u64).map(|i| (i * i) % 9_999_991 + 1).collect();
        let h = LatencyHisto::from_samples(samples.iter().copied());
        for t in [100u64, 10_000, 1_000_000, 8_000_000] {
            let exact = samples.iter().filter(|&&s| s > t).count() as u64;
            let approx = h.count_above(t);
            // The only disagreement is samples sharing the threshold's
            // bucket, bounded by that single bucket's population.
            let slack = samples
                .iter()
                .filter(|&&s| super::bucket_index(s) == super::bucket_index(t))
                .count() as u64;
            assert!(
                approx <= exact && exact - approx <= slack,
                "t={t}: approx {approx} exact {exact} slack {slack}"
            );
        }
        assert_eq!(h.count_above(u64::MAX), 0);
        assert_eq!(h.count_above(0), 10_000);
    }

    #[test]
    fn cumulative_buckets_end_at_total_count() {
        let h = LatencyHisto::from_samples([1u64, 100, 10_000, 1_000_000]);
        let buckets: Vec<_> = h.cumulative_buckets().collect();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.last().unwrap().1, 4);
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }
}
