//! Observability layer for the BaM reproduction.
//!
//! Three pieces, shared by the functional stack (`bam-core`) and the
//! discrete-event simulator (`bam-sim`):
//!
//! * [`LatencyHisto`] — a log-linear HDR-style histogram with ≤ ~1.6%
//!   relative bucket error, constant size, mergeable, and cheap to record
//!   into. It replaces exact sample vectors wherever only percentiles are
//!   needed.
//! * [`SpanRecorder`] / [`SpanEvent`] — a bounded ring buffer of typed
//!   per-request stage spans. Timestamps are virtual (sim nanoseconds or
//!   functional-layer step counters), so traces are bit-identical per seed.
//! * Exporters — Prometheus text exposition ([`PromWriter`]) and Chrome
//!   trace-event JSON ([`chrome_trace_json`], loadable in Perfetto or
//!   `chrome://tracing`).
//! * [`WindowedSeries`] — fixed virtual-time telemetry windows with a
//!   commutative merge, plus the SLO layer on top ([`SloSpec`],
//!   [`evaluate_slo`]) and the functional stack's [`TelemetrySink`].
//! * [`BlameReport`] — per-resource service/wait decomposition of every
//!   request's latency, tail-slice breakdowns, and deterministic slowest-
//!   request exemplars.
//!
//! The crate deliberately depends on nothing but the serde markers: both
//! stack layers and the bench harness can pull it in without cycles.

mod blame;
mod export;
mod histo;
mod span;
mod timeseries;

pub use blame::{BlameBreakdown, BlameMark, BlameReport, BlameRow, Exemplar, WaterfallStep};
pub use export::{chrome_trace_json, PromWriter};
pub use histo::{LatencyHisto, HISTO_BUCKETS};
pub use span::{
    merge_indexed_spans, SpanEvent, SpanId, SpanRecorder, SpanSink, Stage, StageBreakdown,
    STAGE_COUNT,
};
pub use timeseries::{
    evaluate_slo, SloReport, SloSpec, TelemetryHub, TelemetrySink, WindowStats, WindowedSeries,
};
