//! Per-resource blame decomposition: which resource's queueing produced
//! the tail.
//!
//! The engines stamp every request with one [`BlameMark`] per closed
//! pipeline stage: the closing instant plus the stage's *service*
//! nanoseconds — the time the resource actively worked on the request
//! (the drawn media sample, the link occupancy, the fixed forwarding
//! cost). Everything else in the stage's dwell is *wait*: time queued
//! behind the resource. Because consecutive marks tile a request's life
//! exactly (the same invariant the stage breakdown asserts), service plus
//! wait across all stages reproduces the end-to-end latency to the
//! nanosecond — blame attributes 100% of every request.
//!
//! [`BlameReport::build`] aggregates rows into per-stage service/wait
//! histograms for the whole population and separately for the tail slice
//! (requests above the population p99), and keeps a deterministic top-k
//! exemplar list of the slowest requests with their full span waterfalls.
//! All outputs are canonical: rows sort by request id before aggregation,
//! so shard-concatenated inputs produce bit-identical reports.

use serde::{Deserialize, Serialize};

use crate::histo::LatencyHisto;
use crate::span::{Stage, STAGE_COUNT};

/// One closed stage of one request: when it closed and how much of its
/// dwell was active service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameMark {
    /// The stage that closed.
    pub stage: Stage,
    /// Closing instant in virtual nanoseconds.
    pub end_ns: u64,
    /// Active service nanoseconds inside the stage's dwell; the remainder
    /// is wait (queueing behind the resource).
    pub service_ns: u64,
}

/// One request's complete blame record: arrival plus every stage mark in
/// pipeline order. The marks tile `[arrive_ns, last mark]` exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameRow {
    /// Global request index.
    pub id: u64,
    /// Arrival instant in virtual nanoseconds.
    pub arrive_ns: u64,
    /// Stage marks in closing order.
    pub marks: Vec<BlameMark>,
}

impl BlameRow {
    /// End-to-end latency: last stage close minus arrival (0 with no
    /// marks).
    pub fn latency_ns(&self) -> u64 {
        self.marks
            .last()
            .map_or(0, |m| m.end_ns.saturating_sub(self.arrive_ns))
    }
}

/// Per-stage service and wait histograms: where requests spent their time,
/// split by whether the resource was working or they were queued.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameBreakdown {
    service: Vec<LatencyHisto>,
    wait: Vec<LatencyHisto>,
}

impl Default for BlameBreakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl BlameBreakdown {
    /// A breakdown with one empty service and wait histogram per stage.
    pub fn new() -> Self {
        Self {
            service: (0..STAGE_COUNT).map(|_| LatencyHisto::new()).collect(),
            wait: (0..STAGE_COUNT).map(|_| LatencyHisto::new()).collect(),
        }
    }

    /// Records one closed stage's service/wait split.
    pub fn record(&mut self, stage: Stage, service_ns: u64, wait_ns: u64) {
        self.service[stage.index()].record(service_ns);
        self.wait[stage.index()].record(wait_ns);
    }

    /// Merges another breakdown stage-by-stage.
    pub fn merge(&mut self, other: &BlameBreakdown) {
        for (a, b) in self.service.iter_mut().zip(&other.service) {
            a.merge(b);
        }
        for (a, b) in self.wait.iter_mut().zip(&other.wait) {
            a.merge(b);
        }
    }

    /// The service-time histogram of one stage.
    pub fn service_histo(&self, stage: Stage) -> &LatencyHisto {
        &self.service[stage.index()]
    }

    /// The wait-time histogram of one stage.
    pub fn wait_histo(&self, stage: Stage) -> &LatencyHisto {
        &self.wait[stage.index()]
    }

    /// Total service nanoseconds attributed to one stage.
    pub fn service_ns(&self, stage: Stage) -> u64 {
        self.service[stage.index()].sum_ns()
    }

    /// Total wait nanoseconds attributed to one stage.
    pub fn wait_ns(&self, stage: Stage) -> u64 {
        self.wait[stage.index()].sum_ns()
    }

    /// Total wait nanoseconds across all stages.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait.iter().map(|h| h.sum_ns()).sum()
    }

    /// Total attributed nanoseconds (service + wait) across all stages —
    /// equals the summed end-to-end latency of the recorded requests.
    pub fn total_ns(&self) -> u64 {
        self.service.iter().map(|h| h.sum_ns()).sum::<u64>() + self.total_wait_ns()
    }

    /// True when no stage has any samples.
    pub fn is_empty(&self) -> bool {
        self.service.iter().all(|h| h.is_empty())
    }

    /// Stages that recorded at least one sample, in pipeline order.
    pub fn active_stages(&self) -> impl Iterator<Item = Stage> + '_ {
        Stage::ALL
            .into_iter()
            .filter(|s| !self.service[s.index()].is_empty())
    }
}

/// One step of an exemplar's span waterfall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaterfallStep {
    /// The stage.
    pub stage: Stage,
    /// Stage start (previous boundary) in nanoseconds.
    pub start_ns: u64,
    /// Stage end in nanoseconds.
    pub end_ns: u64,
    /// Active service inside the stage.
    pub service_ns: u64,
    /// Queueing wait inside the stage.
    pub wait_ns: u64,
}

/// One of the slowest requests, with its full per-stage waterfall.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Global request index.
    pub id: u64,
    /// Arrival instant in nanoseconds.
    pub arrive_ns: u64,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: u64,
    /// The request's stages in closing order; steps tile
    /// `[arrive_ns, arrive_ns + latency_ns]` exactly.
    pub waterfall: Vec<WaterfallStep>,
}

/// The aggregated blame decomposition of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Requests decomposed.
    pub requests: u64,
    /// The population p99 latency the tail slice is cut at.
    pub p99_cut_ns: u64,
    /// Requests strictly above the p99 cut.
    pub tail_requests: u64,
    /// Service/wait breakdown over every request.
    pub overall: BlameBreakdown,
    /// Service/wait breakdown over the tail slice alone.
    pub tail: BlameBreakdown,
    /// The slowest requests (latency descending, id ascending on ties),
    /// at most the builder's `top_k`.
    pub exemplars: Vec<Exemplar>,
}

impl BlameReport {
    /// Builds the canonical report from per-request rows.
    ///
    /// Rows may arrive in any order (the sharded engine concatenates
    /// per-shard slices): they are sorted by request id first, so the
    /// output is a pure function of the row *set*. Each row's dwell is
    /// measured boundary-to-boundary, service is clamped to the dwell, and
    /// the remainder is wait — service + wait tiles the row's latency
    /// exactly.
    pub fn build(mut rows: Vec<BlameRow>, top_k: usize) -> Self {
        rows.sort_unstable_by_key(|r| r.id);
        let histo = LatencyHisto::from_samples(rows.iter().map(BlameRow::latency_ns));
        let p99_cut_ns = histo.value_at_quantile(0.99);

        let mut overall = BlameBreakdown::new();
        let mut tail = BlameBreakdown::new();
        let mut tail_requests = 0u64;
        for row in &rows {
            let in_tail = row.latency_ns() > p99_cut_ns;
            if in_tail {
                tail_requests += 1;
            }
            let mut prev = row.arrive_ns;
            for mark in &row.marks {
                let dwell = mark.end_ns.saturating_sub(prev);
                let service = mark.service_ns.min(dwell);
                let wait = dwell - service;
                overall.record(mark.stage, service, wait);
                if in_tail {
                    tail.record(mark.stage, service, wait);
                }
                prev = mark.end_ns;
            }
        }

        // Top-k slowest: latency descending, id ascending on ties — a total
        // order, so the exemplar list is deterministic for any input order.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            rows[b]
                .latency_ns()
                .cmp(&rows[a].latency_ns())
                .then(rows[a].id.cmp(&rows[b].id))
        });
        let exemplars = order
            .into_iter()
            .take(top_k)
            .map(|i| {
                let row = &rows[i];
                let mut prev = row.arrive_ns;
                let waterfall = row
                    .marks
                    .iter()
                    .map(|mark| {
                        let dwell = mark.end_ns.saturating_sub(prev);
                        let service = mark.service_ns.min(dwell);
                        let step = WaterfallStep {
                            stage: mark.stage,
                            start_ns: prev,
                            end_ns: mark.end_ns,
                            service_ns: service,
                            wait_ns: dwell - service,
                        };
                        prev = mark.end_ns;
                        step
                    })
                    .collect();
                Exemplar {
                    id: row.id,
                    arrive_ns: row.arrive_ns,
                    latency_ns: row.latency_ns(),
                    waterfall,
                }
            })
            .collect();

        Self {
            requests: rows.len() as u64,
            p99_cut_ns,
            tail_requests,
            overall,
            tail,
            exemplars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, arrive: u64, marks: &[(Stage, u64, u64)]) -> BlameRow {
        BlameRow {
            id,
            arrive_ns: arrive,
            marks: marks
                .iter()
                .map(|&(stage, end_ns, service_ns)| BlameMark {
                    stage,
                    end_ns,
                    service_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn service_plus_wait_tiles_latency_exactly() {
        let r = row(
            0,
            100,
            &[
                (Stage::QueuePair, 400, 50),
                (Stage::Media, 1_400, 700),
                (Stage::Completion, 1_450, 50),
            ],
        );
        assert_eq!(r.latency_ns(), 1_350);
        let report = BlameReport::build(vec![r], 4);
        assert_eq!(report.overall.total_ns(), 1_350);
        assert_eq!(report.overall.service_ns(Stage::QueuePair), 50);
        assert_eq!(report.overall.wait_ns(Stage::QueuePair), 250);
        assert_eq!(report.overall.service_ns(Stage::Media), 700);
        assert_eq!(report.overall.wait_ns(Stage::Media), 300);
        assert_eq!(report.overall.wait_ns(Stage::Completion), 0);
        // The exemplar waterfall tiles the same interval.
        let ex = &report.exemplars[0];
        assert_eq!(ex.latency_ns, 1_350);
        assert_eq!(ex.waterfall[0].start_ns, 100);
        assert_eq!(ex.waterfall.last().unwrap().end_ns, 1_450);
        for w in ex.waterfall.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns);
        }
    }

    #[test]
    fn service_clamps_to_dwell() {
        // A declared service larger than the dwell cannot go negative.
        let r = row(0, 0, &[(Stage::Media, 100, 500)]);
        let report = BlameReport::build(vec![r], 1);
        assert_eq!(report.overall.service_ns(Stage::Media), 100);
        assert_eq!(report.overall.wait_ns(Stage::Media), 0);
        assert_eq!(report.overall.total_ns(), 100);
    }

    #[test]
    fn build_is_invariant_under_row_order() {
        let rows: Vec<BlameRow> = (0..50u64)
            .map(|i| {
                row(
                    i,
                    i * 10,
                    &[
                        (Stage::QueuePair, i * 10 + 100 + i, 40),
                        (Stage::Media, i * 10 + 1_000 + 7 * i, 600),
                    ],
                )
            })
            .collect();
        let forward = BlameReport::build(rows.clone(), 8);
        let mut reversed = rows.clone();
        reversed.reverse();
        assert_eq!(forward, BlameReport::build(reversed, 8));
        // An interleaved two-way split, concatenated backwards.
        let (even, odd): (Vec<_>, Vec<_>) = rows.into_iter().partition(|r| r.id % 2 == 0);
        let concat: Vec<BlameRow> = odd.into_iter().chain(even).collect();
        assert_eq!(forward, BlameReport::build(concat, 8));
    }

    #[test]
    fn tail_slice_cuts_at_the_population_p99() {
        // 99 fast requests and one slow one: the slow request alone is the
        // tail, and its wait dominates the tail breakdown.
        let mut rows: Vec<BlameRow> = (0..99u64)
            .map(|i| row(i, 0, &[(Stage::Media, 1_000, 900)]))
            .collect();
        rows.push(row(99, 0, &[(Stage::Media, 50_000, 900)]));
        let report = BlameReport::build(rows, 2);
        assert_eq!(report.requests, 100);
        assert_eq!(report.tail_requests, 1);
        assert_eq!(report.tail.wait_ns(Stage::Media), 49_100);
        assert_eq!(report.exemplars[0].id, 99);
        assert_eq!(report.exemplars[0].latency_ns, 50_000);
        assert_eq!(report.exemplars.len(), 2);
        assert_eq!(report.exemplars[1].latency_ns, 1_000);
    }

    #[test]
    fn exemplar_ties_break_by_ascending_id() {
        let rows: Vec<BlameRow> = (0..10u64)
            .map(|i| row(9 - i, 0, &[(Stage::Media, 1_000, 1_000)]))
            .collect();
        let report = BlameReport::build(rows, 3);
        let ids: Vec<u64> = report.exemplars.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_builds_an_empty_report() {
        let report = BlameReport::build(Vec::new(), 4);
        assert_eq!(report.requests, 0);
        assert_eq!(report.tail_requests, 0);
        assert_eq!(report.p99_cut_ns, 0);
        assert!(report.overall.is_empty());
        assert!(report.tail.is_empty());
        assert!(report.exemplars.is_empty());
    }
}
