//! Request spans: typed stage events, a bounded deterministic recorder,
//! and per-stage dwell-time breakdowns.

use crate::histo::LatencyHisto;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Identifies one request across all of its stage events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// A pipeline or functional-stack stage a request dwells in.
///
/// The first five stages are emitted by the functional layer (timestamps are
/// [`SpanRecorder`] step counts); the rest by the discrete-event simulator
/// (timestamps are virtual nanoseconds). `SsdLink` and `GpuLink` together
/// are the DMA portion of a request's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Cache line state probe (hit or start of a miss).
    CacheProbe,
    /// Miss servicing: fetching a line from backing storage.
    MissFetch,
    /// Appending a write record to the cache journal.
    JournalAppend,
    /// NVMe submission-queue doorbell ring and completion wait.
    Doorbell,
    /// Replaying one journalled line during crash recovery.
    RecoveryReplay,
    /// Held at the admission controller: the gap between a request's first
    /// offer and the instant a tenant-class token-bucket controller finally
    /// admitted it (service is always zero — the whole dwell is wait).
    /// Emitted only for requests that were actually deferred, so
    /// uncontrolled runs carry no admission stage at all.
    Admission,
    /// Waiting for the journal flush ahead of a durable write.
    JournalFlush,
    /// Queue-pair forwarding (includes time queued behind the QP).
    QueuePair,
    /// Controller command fetch over PCIe.
    CtrlFetch,
    /// Media (flash / Optane) access.
    Media,
    /// SSD-side DMA link transfer.
    SsdLink,
    /// GPU-side DMA link transfer (shared across devices).
    GpuLink,
    /// Completion posting and doorbell update.
    Completion,
}

/// Number of distinct stages.
pub const STAGE_COUNT: usize = 13;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::CacheProbe,
        Stage::MissFetch,
        Stage::JournalAppend,
        Stage::Doorbell,
        Stage::RecoveryReplay,
        Stage::Admission,
        Stage::JournalFlush,
        Stage::QueuePair,
        Stage::CtrlFetch,
        Stage::Media,
        Stage::SsdLink,
        Stage::GpuLink,
        Stage::Completion,
    ];

    /// Dense index of this stage within [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CacheProbe => "cache_probe",
            Stage::MissFetch => "miss_fetch",
            Stage::JournalAppend => "journal_append",
            Stage::Doorbell => "doorbell",
            Stage::RecoveryReplay => "recovery_replay",
            Stage::Admission => "admission",
            Stage::JournalFlush => "journal_flush",
            Stage::QueuePair => "queue_pair",
            Stage::CtrlFetch => "ctrl_fetch",
            Stage::Media => "media",
            Stage::SsdLink => "ssd_link",
            Stage::GpuLink => "gpu_link",
            Stage::Completion => "completion",
        }
    }
}

/// One closed stage interval of one request.
///
/// `track` groups events into trace rows (queue-pair index in the sim,
/// device index in the functional layer); `arg` carries a stage-specific
/// detail (cache line, LBA, or byte count) into the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    pub span: SpanId,
    pub stage: Stage,
    pub start_ns: u64,
    pub end_ns: u64,
    pub track: u32,
    pub arg: u64,
}

/// Default event capacity of a [`SpanRecorder`].
const DEFAULT_CAPACITY: usize = 1 << 16;

struct RecorderInner {
    events: Vec<SpanEvent>,
    /// Next overwrite position once `events` is full.
    head: usize,
    dropped: u64,
}

/// A bounded ring buffer of [`SpanEvent`]s plus the deterministic id and
/// virtual-time sources the functional layer needs.
///
/// When full, the oldest events are overwritten and counted in
/// [`dropped`](Self::dropped) — recording never blocks or reallocates after
/// the buffer fills, so instrumentation cost is flat. All state advances
/// only through the owning workload's own calls, so for a seeded run the
/// recorded trace is bit-identical across repeats.
pub struct SpanRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
    steps: AtomicU64,
    next_span: AtomicU64,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SpanRecorder {
    /// A recorder with the default capacity (65 536 events).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RecorderInner {
                events: Vec::new(),
                head: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
            steps: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates the next request span id (0, 1, 2, ...).
    pub fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Advances the virtual step clock and returns the new time. The
    /// functional layer uses these steps as span timestamps; the sim passes
    /// its own virtual nanoseconds instead and never calls this.
    pub fn tick(&self) -> u64 {
        self.steps.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current virtual step time without advancing it.
    pub fn now(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Appends an event, overwriting the oldest once at capacity.
    pub fn record(&self, event: SpanEvent) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            let head = inner.head;
            inner.events[head] = event;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// Snapshot of the retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<SpanEvent> {
        let inner = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(inner.events.len());
        out.extend_from_slice(&inner.events[inner.head..]);
        out.extend_from_slice(&inner.events[..inner.head]);
        out
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events lost to ring-buffer overwrite.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Discards all retained events (span ids and step clock keep running).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.events.clear();
        inner.head = 0;
        inner.dropped = 0;
    }
}

/// Merges per-shard span buffers back into one stream ordered by global
/// emission index.
///
/// A parallel engine hands each shard an index-tagged slice of the span
/// stream; because every index is assigned once by the sequential spine,
/// sorting the concatenation by index reconstructs the exact sequence a
/// single-threaded run would have recorded — replaying it through
/// [`SpanRecorder::record`] reproduces ring-buffer wrap and drop counts bit
/// for bit. Each shard's buffer is already index-sorted, so the sort is a
/// near-linear merge of sorted runs.
pub fn merge_indexed_spans(parts: Vec<Vec<(u64, SpanEvent)>>) -> Vec<SpanEvent> {
    let mut all: Vec<(u64, SpanEvent)> = parts.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(idx, _)| idx);
    all.into_iter().map(|(_, event)| event).collect()
}

#[derive(Default)]
struct SinkInner {
    recorder: RwLock<Option<Arc<SpanRecorder>>>,
    installed: AtomicBool,
}

/// A shareable, optionally-populated handle to a [`SpanRecorder`].
///
/// Hot paths check one relaxed atomic before touching the lock, so an
/// uninstalled sink costs a single predictable branch. Cloning shares the
/// same slot — install once on a system handle and every component holding
/// a clone starts emitting.
#[derive(Clone, Default)]
pub struct SpanSink {
    inner: Arc<SinkInner>,
}

impl SpanSink {
    /// An empty (uninstalled) sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a recorder; subsequent [`with`](Self::with) calls see it.
    pub fn install(&self, recorder: Arc<SpanRecorder>) {
        *self.inner.recorder.write().unwrap() = Some(recorder);
        self.inner.installed.store(true, Ordering::Release);
    }

    /// Removes the recorder, returning the sink to its no-op state.
    pub fn uninstall(&self) {
        self.inner.installed.store(false, Ordering::Release);
        *self.inner.recorder.write().unwrap() = None;
    }

    /// True when a recorder is installed (single relaxed load).
    pub fn is_installed(&self) -> bool {
        self.inner.installed.load(Ordering::Relaxed)
    }

    /// Runs `f` against the recorder when installed; no-op otherwise.
    pub fn with<R>(&self, f: impl FnOnce(&SpanRecorder) -> R) -> Option<R> {
        if !self.is_installed() {
            return None;
        }
        let guard = self.inner.recorder.read().unwrap();
        guard.as_ref().map(|r| f(r))
    }
}

/// Per-stage dwell-time histograms: which stage the latency went to.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    histos: Vec<LatencyHisto>,
}

impl Default for StageBreakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StageBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("StageBreakdown");
        for stage in Stage::ALL {
            let h = self.histo(stage);
            if !h.is_empty() {
                d.field(stage.label(), &h.sum_ns());
            }
        }
        d.finish()
    }
}

impl StageBreakdown {
    /// A breakdown with one empty histogram per stage.
    pub fn new() -> Self {
        Self {
            histos: (0..STAGE_COUNT).map(|_| LatencyHisto::new()).collect(),
        }
    }

    /// Records one dwell time for a stage.
    pub fn record(&mut self, stage: Stage, dwell_ns: u64) {
        self.histos[stage.index()].record(dwell_ns);
    }

    /// Merges another breakdown stage-by-stage.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (a, b) in self.histos.iter_mut().zip(&other.histos) {
            a.merge(b);
        }
    }

    /// The dwell-time histogram of one stage.
    pub fn histo(&self, stage: Stage) -> &LatencyHisto {
        &self.histos[stage.index()]
    }

    /// Total nanoseconds attributed to one stage.
    pub fn sum_ns(&self, stage: Stage) -> u64 {
        self.histos[stage.index()].sum_ns()
    }

    /// Total nanoseconds attributed across all stages.
    pub fn total_ns(&self) -> u64 {
        self.histos.iter().map(|h| h.sum_ns()).sum()
    }

    /// True when no stage has any samples.
    pub fn is_empty(&self) -> bool {
        self.histos.iter().all(|h| h.is_empty())
    }

    /// Stages that recorded at least one sample, in pipeline order.
    pub fn active_stages(&self) -> impl Iterator<Item = Stage> + '_ {
        Stage::ALL
            .into_iter()
            .filter(|s| !self.histo(*s).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(span: u64, stage: Stage, start: u64, end: u64) -> SpanEvent {
        SpanEvent {
            span: SpanId(span),
            stage,
            start_ns: start,
            end_ns: end,
            track: 0,
            arg: 0,
        }
    }

    #[test]
    fn recorder_retains_in_order_and_counts_drops() {
        let rec = SpanRecorder::with_capacity(4);
        for i in 0..6u64 {
            rec.record(ev(i, Stage::Media, i * 10, i * 10 + 5));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 2);
        let spans: Vec<u64> = rec.events().iter().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![2, 3, 4, 5]);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn span_ids_and_steps_are_sequential() {
        let rec = SpanRecorder::new();
        assert_eq!(rec.next_span_id(), SpanId(0));
        assert_eq!(rec.next_span_id(), SpanId(1));
        assert_eq!(rec.now(), 0);
        assert_eq!(rec.tick(), 1);
        assert_eq!(rec.tick(), 2);
        assert_eq!(rec.now(), 2);
    }

    #[test]
    fn sink_is_noop_until_installed() {
        let sink = SpanSink::new();
        assert!(!sink.is_installed());
        assert_eq!(sink.with(|_| 1), None);
        let rec = Arc::new(SpanRecorder::new());
        sink.install(rec.clone());
        let shared = sink.clone();
        assert_eq!(shared.with(|r| r.tick()), Some(1));
        assert_eq!(rec.now(), 1);
        sink.uninstall();
        assert_eq!(shared.with(|_| 1), None);
    }

    #[test]
    fn breakdown_attributes_and_merges() {
        let mut a = StageBreakdown::new();
        a.record(Stage::Media, 100);
        a.record(Stage::Media, 300);
        a.record(Stage::JournalFlush, 50);
        let mut b = StageBreakdown::new();
        b.record(Stage::Media, 600);
        a.merge(&b);
        assert_eq!(a.sum_ns(Stage::Media), 1000);
        assert_eq!(a.total_ns(), 1050);
        assert_eq!(a.histo(Stage::Media).count(), 3);
        let active: Vec<Stage> = a.active_stages().collect();
        assert_eq!(active, vec![Stage::JournalFlush, Stage::Media]);
    }

    #[test]
    fn merge_indexed_spans_restores_global_order() {
        // Three shards each hold an index-sorted slice of one global stream.
        let shard_a = vec![
            (0u64, ev(0, Stage::Media, 0, 5)),
            (3, ev(3, Stage::Media, 30, 35)),
        ];
        let shard_b = vec![(1u64, ev(1, Stage::SsdLink, 10, 15))];
        let shard_c = vec![(2u64, ev(2, Stage::GpuLink, 20, 25))];
        let merged = merge_indexed_spans(vec![shard_a, shard_b, shard_c]);
        let spans: Vec<u64> = merged.iter().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![0, 1, 2, 3]);
        // Replaying the merged stream into a small ring reproduces the
        // sequential recorder's wrap behavior (oldest overwritten).
        let rec = SpanRecorder::with_capacity(2);
        for e in &merged {
            rec.record(*e);
        }
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<u64> = rec.events().iter().map(|e| e.span.0).collect();
        assert_eq!(kept, vec![2, 3]);
        assert!(merge_indexed_spans(Vec::new()).is_empty());
    }

    #[test]
    fn stage_labels_are_unique() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), STAGE_COUNT);
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }
}
