//! Property tests of the telemetry invariants the parallel engine leans
//! on: windowed-series merging must equal single-recorder concatenation
//! for any split and any fold order, and blame decomposition must tile
//! every request's latency exactly regardless of input order.

use proptest::prelude::*;

use bam_obs::{BlameMark, BlameReport, BlameRow, Stage, WindowedSeries, STAGE_COUNT};

const WINDOW_NS: u64 = 1_000;
const SHARDS: usize = 4;

/// One recorded telemetry event, driven by a `(kind, at, value)` sample.
fn apply(series: &mut WindowedSeries, ev: &(u8, u64, u64)) {
    let (kind, at, v) = *ev;
    match kind % 7 {
        0 => series.record_arrival(at),
        1 => series.record_completion(at, v),
        2 => series.record_stage(at, Stage::ALL[(v % STAGE_COUNT as u64) as usize], v, v / 3),
        3 => series.record_occupancy(at, v % 1_000),
        4 => series.record_depth(at, (v % 10_000) as u32),
        5 => series.record_cache(at, v % 2 == 0),
        _ => series.record_journal_backlog(at, v % 100_000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Splitting an event stream across shards and folding the shard
    /// series in any order reproduces the single-recorder series exactly
    /// — the property the sharded engine's timeline merge rests on.
    #[test]
    fn windowed_merge_equals_concatenation(
        events in prop::collection::vec(
            (any::<u8>(), 0u64..100_000, 0u64..1_000_000_000),
            0usize..200,
        ),
        splits in prop::collection::vec(0usize..SHARDS, 1usize..200),
        order_seed in any::<u64>(),
    ) {
        let mut reference = WindowedSeries::new(WINDOW_NS);
        for ev in &events {
            apply(&mut reference, ev);
        }

        // Deal the same events across shards by the sampled assignment.
        let mut shards: Vec<WindowedSeries> =
            (0..SHARDS).map(|_| WindowedSeries::new(WINDOW_NS)).collect();
        for (i, ev) in events.iter().enumerate() {
            apply(&mut shards[splits[i % splits.len()]], ev);
        }

        // Fold in a seed-derived permutation of the shard order.
        let mut order: Vec<usize> = (0..SHARDS).collect();
        for i in (1..SHARDS).rev() {
            let j = ((order_seed >> (i * 8)) as usize) % (i + 1);
            order.swap(i, j);
        }
        let mut merged = WindowedSeries::new(WINDOW_NS);
        for &s in &order {
            merged.merge(&shards[s]);
        }
        prop_assert_eq!(&merged, &reference);
    }

    /// Blame decomposition attributes 100% of every request's latency:
    /// per-stage service + wait sums equal the end-to-end total exactly,
    /// and the report is a pure function of the row set (any input order).
    #[test]
    fn blame_decomposition_tiles_each_request_exactly(
        raw in prop::collection::vec(
            (
                0u64..1_000_000,
                prop::collection::vec(
                    (0u64..50_000, 0u64..60_000, 0u64..STAGE_COUNT as u64),
                    1usize..8,
                ),
            ),
            1usize..40,
        ),
        order_seed in any::<u64>(),
    ) {
        // Materialize rows with monotone mark instants; service values may
        // exceed the dwell (the builder clamps).
        let rows: Vec<BlameRow> = raw
            .iter()
            .enumerate()
            .map(|(i, (arrive, steps))| {
                let mut end = *arrive;
                let marks = steps
                    .iter()
                    .map(|&(dwell, service, stage)| {
                        end += dwell;
                        BlameMark {
                            stage: Stage::ALL[stage as usize],
                            end_ns: end,
                            service_ns: service,
                        }
                    })
                    .collect();
                BlameRow {
                    id: i as u64,
                    arrive_ns: *arrive,
                    marks,
                }
            })
            .collect();

        let total: u64 = rows.iter().map(BlameRow::latency_ns).sum();
        let report = BlameReport::build(rows.clone(), 5);
        prop_assert_eq!(report.requests, rows.len() as u64);
        prop_assert_eq!(report.overall.total_ns(), total, "overall must tile the population");

        // The tail slice tiles its own latencies exactly too.
        let tail_total: u64 = rows
            .iter()
            .filter(|r| r.latency_ns() > report.p99_cut_ns)
            .map(BlameRow::latency_ns)
            .sum();
        prop_assert_eq!(report.tail.total_ns(), tail_total, "tail must tile its slice");

        // Every exemplar's waterfall tiles its request's life exactly.
        for ex in &report.exemplars {
            let attributed: u64 = ex.waterfall.iter().map(|w| w.service_ns + w.wait_ns).sum();
            prop_assert_eq!(attributed, ex.latency_ns);
            for w in ex.waterfall.windows(2) {
                prop_assert_eq!(w[0].end_ns, w[1].start_ns, "waterfall must be gapless");
            }
        }

        // Order invariance: a seed-derived shuffle builds the same report.
        let mut shuffled = rows;
        for i in (1..shuffled.len()).rev() {
            let j = (order_seed.rotate_left(i as u32) as usize) % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(BlameReport::build(shuffled, 5), report);
    }
}
