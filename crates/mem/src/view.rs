//! Typed views over a [`ByteRegion`].
//!
//! The BaM API exposes storage-backed data as `bam::array<T>`. The simulated
//! equivalent needs to read and write `T` values out of raw device memory;
//! [`TypedSlice`] provides that, restricted to plain-old-data element types
//! via the [`Pod`] trait.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::{ByteRegion, DevAddr};

/// Marker trait for element types that can be stored in device memory as raw
/// little-endian bytes.
///
/// This is a sealed-style trait implemented only for the fixed-width integer
/// and float primitives; workloads in the reproduction use these element
/// types exclusively (the paper's workloads use 4- and 8-byte elements).
pub trait Pod: Copy + Send + Sync + 'static {
    /// Size of the element in bytes.
    const SIZE: usize;
    /// Encodes the value into `out` (little-endian). `out.len() == SIZE`.
    fn to_bytes(&self, out: &mut [u8]);
    /// Decodes a value from `bytes` (little-endian). `bytes.len() == SIZE`.
    fn from_bytes(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl Pod for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                fn to_bytes(&self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }
                fn from_bytes(bytes: &[u8]) -> Self {
                    let mut b = [0u8; std::mem::size_of::<$t>()];
                    b.copy_from_slice(bytes);
                    <$t>::from_le_bytes(b)
                }
            }
        )*
    };
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// A typed window of `len` elements of `T` starting at `base` in a region.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bam_mem::{ByteRegion, TypedSlice};
/// let region = Arc::new(ByteRegion::new(1024));
/// let s: TypedSlice<u32> = TypedSlice::new(region, 0, 16);
/// s.set(3, 42);
/// assert_eq!(s.get(3), 42);
/// ```
#[derive(Clone)]
pub struct TypedSlice<T: Pod> {
    region: Arc<ByteRegion>,
    base: DevAddr,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> std::fmt::Debug for TypedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedSlice")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("elem_size", &T::SIZE)
            .finish()
    }
}

impl<T: Pod> TypedSlice<T> {
    /// Creates a typed view of `len` elements starting at byte address `base`.
    ///
    /// # Panics
    ///
    /// Panics if the view does not fit inside the region.
    pub fn new(region: Arc<ByteRegion>, base: DevAddr, len: usize) -> Self {
        let bytes = len * T::SIZE;
        assert!(
            base as usize + bytes <= region.len(),
            "typed slice out of bounds: base={base} len={len} elem={} region={}",
            T::SIZE,
            region.len()
        );
        Self {
            region,
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the view has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn addr_of(&self, idx: usize) -> DevAddr {
        assert!(
            idx < self.len,
            "index {idx} out of bounds for length {}",
            self.len
        );
        self.base + (idx * T::SIZE) as u64
    }

    /// Reads element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn get(&self, idx: usize) -> T {
        let mut buf = vec![0u8; T::SIZE];
        self.region.read_bytes(self.addr_of(idx), &mut buf);
        T::from_bytes(&buf)
    }

    /// Writes element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn set(&self, idx: usize, value: T) {
        let mut buf = vec![0u8; T::SIZE];
        value.to_bytes(&mut buf);
        self.region.write_bytes(self.addr_of(idx), &buf);
    }

    /// Copies the whole view into a `Vec<T>`.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Fills the view from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn copy_from_slice(&self, values: &[T]) {
        assert_eq!(values.len(), self.len, "length mismatch");
        for (i, v) in values.iter().enumerate() {
            self.set(i, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_f64() {
        let region = Arc::new(ByteRegion::new(4096));
        let s: TypedSlice<f64> = TypedSlice::new(region, 8, 64);
        for i in 0..64 {
            s.set(i, i as f64 * 1.5);
        }
        for i in 0..64 {
            assert_eq!(s.get(i), i as f64 * 1.5);
        }
    }

    #[test]
    fn typed_roundtrip_u32_unaligned_base() {
        let region = Arc::new(ByteRegion::new(4096));
        let s: TypedSlice<u32> = TypedSlice::new(region, 3, 10);
        s.copy_from_slice(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(s.to_vec(), vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_view_panics() {
        let region = Arc::new(ByteRegion::new(64));
        let _s: TypedSlice<u64> = TypedSlice::new(region, 0, 9);
    }

    #[test]
    #[should_panic(expected = "index")]
    fn index_oob_panics() {
        let region = Arc::new(ByteRegion::new(64));
        let s: TypedSlice<u8> = TypedSlice::new(region, 0, 4);
        s.get(4);
    }
}
