//! A bump allocator over a device address space.
//!
//! The BaM paper pre-allocates all virtual and physical memory needed by the
//! software cache, queues, and I/O buffers at application start (§3.4), which
//! is what lets it avoid OS-style allocation critical sections at run time.
//! The simulation mirrors that: a monotonic bump allocator hands out device
//! address ranges once at setup, and nothing is ever freed until the whole
//! region is dropped.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::DevAddr;

/// Error returned when an allocation does not fit in the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes requested (after alignment padding).
    pub requested: u64,
    /// Bytes remaining in the region at the time of the request.
    pub remaining: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device allocation of {} bytes failed, only {} bytes remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for AllocError {}

/// A monotonic (never-freeing) allocator over a device address space.
///
/// Thread-safe: concurrent allocations are serialized with a single atomic
/// `fetch_update`, mirroring how a setup-time allocator would behave.
///
/// # Examples
///
/// ```
/// use bam_mem::BumpAllocator;
/// let alloc = BumpAllocator::new(1 << 20);
/// let a = alloc.alloc(100, 64).unwrap();
/// assert_eq!(a % 64, 0);
/// ```
#[derive(Debug)]
pub struct BumpAllocator {
    capacity: u64,
    cursor: AtomicU64,
}

impl BumpAllocator {
    /// Creates an allocator over `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            cursor: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes already allocated (including alignment padding).
    pub fn used(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed).min(self.capacity)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocates `size` bytes aligned to `align` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the allocation does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&self, size: u64, align: u64) -> Result<DevAddr, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut result = 0u64;
        let outcome = self
            .cursor
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                let aligned = cur.next_multiple_of(align);
                let end = aligned.checked_add(size)?;
                if end > self.capacity {
                    return None;
                }
                result = aligned;
                Some(end)
            });
        match outcome {
            Ok(_) => Ok(result),
            Err(cur) => Err(AllocError {
                requested: size,
                remaining: self.capacity.saturating_sub(cur),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn alignment_respected() {
        let a = BumpAllocator::new(4096);
        let x = a.alloc(3, 1).unwrap();
        let y = a.alloc(8, 256).unwrap();
        assert_eq!(y % 256, 0);
        assert!(y >= x + 3);
    }

    #[test]
    fn exhaustion_reports_error() {
        let a = BumpAllocator::new(128);
        a.alloc(100, 8).unwrap();
        let err = a.alloc(64, 8).unwrap_err();
        assert_eq!(err.requested, 64);
        assert!(err.remaining < 64);
        assert!(err.to_string().contains("failed"));
    }

    #[test]
    fn concurrent_allocations_do_not_overlap() {
        let a = Arc::new(BumpAllocator::new(1 << 20));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(thread::spawn(move || {
                let mut mine = Vec::new();
                for _ in 0..100 {
                    mine.push(a.alloc(64, 64).unwrap());
                }
                mine
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for addr in h.join().unwrap() {
                assert!(all.insert(addr), "duplicate allocation at {addr}");
                assert_eq!(addr % 64, 0);
            }
        }
        assert_eq!(all.len(), 800);
    }

    #[test]
    fn accounting() {
        let a = BumpAllocator::new(1000);
        assert_eq!(a.capacity(), 1000);
        assert_eq!(a.remaining(), 1000);
        a.alloc(100, 1).unwrap();
        assert_eq!(a.used(), 100);
        assert_eq!(a.remaining(), 900);
    }
}
