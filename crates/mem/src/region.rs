//! A concurrently accessible byte region used to model device memory.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::DevAddr;

/// A fixed-size, thread-safe byte region.
///
/// `ByteRegion` models a slab of device memory (GPU HBM, host DRAM pinned for
/// DMA, or an SSD's BAR space). Any number of threads may read and write any
/// byte range concurrently without locks; racy accesses yield unspecified but
/// memory-safe byte values, the same guarantee device memory gives racing
/// agents. Higher-level protocols are responsible for ordering.
///
/// Internally the region is an array of `AtomicU64` words; sub-word accesses
/// are performed with read-modify-write loops on the containing word.
///
/// # Examples
///
/// ```
/// use bam_mem::ByteRegion;
/// let r = ByteRegion::new(1024);
/// r.write_u64(0, 0xDEAD_BEEF);
/// assert_eq!(r.read_u64(0), 0xDEAD_BEEF);
/// ```
pub struct ByteRegion {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl std::fmt::Debug for ByteRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteRegion")
            .field("len", &self.len)
            .finish()
    }
}

impl ByteRegion {
    /// Creates a zero-initialized region of `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "ByteRegion length must be non-zero");
        let nwords = len.div_ceil(8);
        let mut v = Vec::with_capacity(nwords);
        v.resize_with(nwords, || AtomicU64::new(0));
        Self {
            words: v.into_boxed_slice(),
            len,
        }
    }

    /// Returns the capacity of the region in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the region has zero capacity (never true in practice,
    /// as construction requires a non-zero length).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, addr: DevAddr, len: usize) {
        let end = addr as usize + len;
        assert!(
            end <= self.len,
            "out-of-bounds device access: addr={addr:#x} len={len} capacity={}",
            self.len
        );
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range `[addr, addr + buf.len())` is out of bounds.
    pub fn read_bytes(&self, addr: DevAddr, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut pos = addr as usize;
        let mut out = 0usize;
        while out < buf.len() {
            let word_idx = pos / 8;
            let byte_in_word = pos % 8;
            let avail = (8 - byte_in_word).min(buf.len() - out);
            let word = self.words[word_idx].load(Ordering::Relaxed);
            let bytes = word.to_le_bytes();
            buf[out..out + avail].copy_from_slice(&bytes[byte_in_word..byte_in_word + avail]);
            pos += avail;
            out += avail;
        }
    }

    /// Writes `data` into the region starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range `[addr, addr + data.len())` is out of bounds.
    pub fn write_bytes(&self, addr: DevAddr, data: &[u8]) {
        self.check(addr, data.len());
        let mut pos = addr as usize;
        let mut consumed = 0usize;
        while consumed < data.len() {
            let word_idx = pos / 8;
            let byte_in_word = pos % 8;
            let avail = (8 - byte_in_word).min(data.len() - consumed);
            if avail == 8 {
                // Fast path: whole aligned word.
                let mut b = [0u8; 8];
                b.copy_from_slice(&data[consumed..consumed + 8]);
                self.words[word_idx].store(u64::from_le_bytes(b), Ordering::Relaxed);
            } else {
                // Partial word: read-modify-write loop on the containing word.
                let mask_bytes: u64 = if avail == 8 {
                    u64::MAX
                } else {
                    ((1u64 << (avail * 8)) - 1) << (byte_in_word * 8)
                };
                let mut new_bytes = [0u8; 8];
                new_bytes[byte_in_word..byte_in_word + avail]
                    .copy_from_slice(&data[consumed..consumed + avail]);
                let new_val = u64::from_le_bytes(new_bytes) & mask_bytes;
                let mut cur = self.words[word_idx].load(Ordering::Relaxed);
                loop {
                    let next = (cur & !mask_bytes) | new_val;
                    match self.words[word_idx].compare_exchange_weak(
                        cur,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            }
            pos += avail;
            consumed += avail;
        }
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn fill(&self, addr: DevAddr, len: usize, value: u8) {
        // Chunked to avoid one giant temporary buffer.
        const CHUNK: usize = 64 * 1024;
        let chunk = vec![value; len.min(CHUNK)];
        let mut done = 0usize;
        while done < len {
            let n = (len - done).min(CHUNK);
            self.write_bytes(addr + done as u64, &chunk[..n]);
            done += n;
        }
    }

    /// Reads a little-endian `u64` at byte address `addr` (need not be aligned).
    pub fn read_u64(&self, addr: DevAddr) -> u64 {
        if addr.is_multiple_of(8) {
            self.check(addr, 8);
            return self.words[addr as usize / 8].load(Ordering::Relaxed);
        }
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at byte address `addr` (need not be aligned).
    pub fn write_u64(&self, addr: DevAddr, value: u64) {
        if addr.is_multiple_of(8) {
            self.check(addr, 8);
            self.words[addr as usize / 8].store(value, Ordering::Relaxed);
            return;
        }
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: DevAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&self, addr: DevAddr, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Atomically adds `delta` to the aligned `u64` word at `addr` and returns
    /// the previous value. Models a device-memory atomic (e.g. `atomicAdd`).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned or out of bounds.
    pub fn fetch_add_u64(&self, addr: DevAddr, delta: u64) -> u64 {
        assert!(
            addr.is_multiple_of(8),
            "atomic access must be 8-byte aligned"
        );
        self.check(addr, 8);
        self.words[addr as usize / 8].fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomic compare-and-swap on the aligned `u64` word at `addr`.
    /// Returns `Ok(previous)` on success and `Err(actual)` on failure.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned or out of bounds.
    pub fn compare_exchange_u64(&self, addr: DevAddr, expected: u64, new: u64) -> Result<u64, u64> {
        assert!(
            addr.is_multiple_of(8),
            "atomic access must be 8-byte aligned"
        );
        self.check(addr, 8);
        self.words[addr as usize / 8].compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    /// Copies `len` bytes within this region from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds.
    pub fn copy_within(&self, src: DevAddr, dst: DevAddr, len: usize) {
        const CHUNK: usize = 64 * 1024;
        let mut buf = vec![0u8; len.min(CHUNK)];
        let mut done = 0usize;
        while done < len {
            let n = (len - done).min(CHUNK);
            self.read_bytes(src + done as u64, &mut buf[..n]);
            self.write_bytes(dst + done as u64, &buf[..n]);
            done += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn roundtrip_unaligned() {
        let r = ByteRegion::new(64);
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        r.write_bytes(3, &data);
        let mut out = [0u8; 11];
        r.read_bytes(3, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn unaligned_write_does_not_clobber_neighbours() {
        let r = ByteRegion::new(32);
        r.write_bytes(0, &[0xFF; 32]);
        r.write_bytes(5, &[0u8; 3]);
        let mut out = [0u8; 32];
        r.read_bytes(0, &mut out);
        for (i, b) in out.iter().enumerate() {
            if (5..8).contains(&i) {
                assert_eq!(*b, 0, "byte {i}");
            } else {
                assert_eq!(*b, 0xFF, "byte {i}");
            }
        }
    }

    #[test]
    fn u64_and_u32_roundtrip() {
        let r = ByteRegion::new(128);
        r.write_u64(8, u64::MAX - 1);
        assert_eq!(r.read_u64(8), u64::MAX - 1);
        r.write_u64(13, 0x0123_4567_89AB_CDEF);
        assert_eq!(r.read_u64(13), 0x0123_4567_89AB_CDEF);
        r.write_u32(50, 0xCAFE_BABE);
        assert_eq!(r.read_u32(50), 0xCAFE_BABE);
    }

    #[test]
    fn fill_and_copy_within() {
        let r = ByteRegion::new(4096);
        r.fill(100, 200, 0x5A);
        let mut out = vec![0u8; 200];
        r.read_bytes(100, &mut out);
        assert!(out.iter().all(|&b| b == 0x5A));
        r.copy_within(100, 1000, 200);
        r.read_bytes(1000, &mut out);
        assert!(out.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn atomics_are_atomic_across_threads() {
        let r = Arc::new(ByteRegion::new(64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    r.fetch_add_u64(0, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.read_u64(0), 80_000);
    }

    #[test]
    fn cas_success_and_failure() {
        let r = ByteRegion::new(64);
        r.write_u64(16, 7);
        assert_eq!(r.compare_exchange_u64(16, 7, 9), Ok(7));
        assert_eq!(r.compare_exchange_u64(16, 7, 11), Err(9));
        assert_eq!(r.read_u64(16), 9);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn out_of_bounds_read_panics() {
        let r = ByteRegion::new(16);
        let mut b = [0u8; 8];
        r.read_bytes(12, &mut b);
    }

    #[test]
    fn concurrent_disjoint_writes_preserved() {
        let r = Arc::new(ByteRegion::new(8 * 1024));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let r = r.clone();
            handles.push(thread::spawn(move || {
                let base = t as u64 * 1024;
                let data = vec![t + 1; 1024];
                for _ in 0..100 {
                    r.write_bytes(base, &data);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u8 {
            let mut buf = vec![0u8; 1024];
            r.read_bytes(t as u64 * 1024, &mut buf);
            assert!(buf.iter().all(|&b| b == t + 1), "lane {t}");
        }
    }
}
