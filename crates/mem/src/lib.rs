//! # bam-mem — shared memory substrate for the BaM reproduction
//!
//! The BaM prototype places NVMe queues, I/O buffers, and the software cache
//! in *GPU memory* that is concurrently accessed by thousands of GPU threads
//! and, via GPUDirect RDMA, by the SSD controllers performing DMA. This crate
//! provides the equivalent substrate for the simulation: a thread-safe
//! byte region ([`ByteRegion`]) that simulated GPU threads and simulated SSD
//! controller threads can read and write concurrently, plus a simple bump
//! allocator ([`BumpAllocator`]) used to carve that region into device
//! allocations the way `cudaMalloc` would.
//!
//! The region is backed by `AtomicU64` words and accessed with relaxed
//! ordering: exactly like real device memory, it provides no synchronization
//! by itself. Synchronization (ordering of DMA writes vs. completion-queue
//! polling, cache line state transitions, ...) is the job of the higher-level
//! protocols in `bam-core`, mirroring the paper's discussion of GPUDirect
//! RDMA I/O consistency (§4.4).
//!
//! ```
//! use bam_mem::ByteRegion;
//! let region = ByteRegion::new(4096);
//! region.write_bytes(128, &[1, 2, 3, 4]);
//! let mut buf = [0u8; 4];
//! region.read_bytes(128, &mut buf);
//! assert_eq!(buf, [1, 2, 3, 4]);
//! ```

pub mod alloc;
pub mod region;
pub mod view;

pub use alloc::{AllocError, BumpAllocator};
pub use region::ByteRegion;
pub use view::{Pod, TypedSlice};

/// A device address: a byte offset into a [`ByteRegion`].
///
/// Addresses are plain offsets rather than raw pointers so that the simulated
/// GPU memory, host memory, and SSD BAR space can all be modelled as distinct
/// regions with their own address spaces, and so that out-of-bounds accesses
/// panic deterministically instead of corrupting the host process.
pub type DevAddr = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn region_and_allocator_compose() {
        let region = Arc::new(ByteRegion::new(1 << 16));
        let alloc = BumpAllocator::new(region.len() as u64);
        let a = alloc.alloc(100, 8).unwrap();
        let b = alloc.alloc(100, 8).unwrap();
        assert!(b >= a + 100);
        region.write_bytes(a, &[0xAB; 100]);
        region.write_bytes(b, &[0xCD; 100]);
        let mut buf = [0u8; 100];
        region.read_bytes(a, &mut buf);
        assert!(buf.iter().all(|&x| x == 0xAB));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ByteRegion>();
        assert_send_sync::<BumpAllocator>();
    }
}
