//! # bam-workloads — the applications of the BaM evaluation
//!
//! Every workload the paper evaluates, in two forms where applicable: a host
//! reference implementation (ground truth for correctness and compute-cost
//! accounting) and a BaM-backed implementation whose data lives on the
//! simulated SSDs and is accessed on demand by simulated GPU threads.
//!
//! * [`graph`] — Table 3 dataset generators, CSR, BFS, and connected
//!   components (§5.2).
//! * [`analytics`] — the NYC-Taxi-style columnar table and queries Q0–Q5
//!   (§5.3).
//! * [`vectoradd`] — the write-intensive vectorAdd workload (§5.4).
//! * [`micro`] — raw random/sequential throughput microbenchmarks
//!   (§4.3, §5.1).

pub mod analytics;
pub mod graph;
pub mod micro;
pub mod vectoradd;

pub use analytics::{query_bam, query_reference, BamTaxiTable, QueryOutput, TaxiColumn, TaxiTable};
pub use graph::{
    bfs_bam, bfs_reference, cc_bam, cc_reference, graph_demand, upload_edge_list, BfsResult,
    CcResult, CsrGraph, DatasetDescriptor, DatasetKind,
};
pub use micro::{build_raw_system, random_read, random_write, sequential_read, MicroRunResult};
pub use vectoradd::{setup as vectoradd_setup, vectoradd_bam, vectoradd_demand, VectorAddResult};
