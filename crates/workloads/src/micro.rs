//! Microbenchmarks: raw random-access throughput (Fig 4, §4.3) and the
//! sequential-granularity sweep BaM side of Fig 5.
//!
//! These run *functionally* against the full BaM stack (queues, doorbells,
//! simulated controllers) with the cache disabled, so every access is a
//! storage command; the harnesses in `bam-bench` then convert the observed
//! command counts into IOPS with the calibrated storage envelope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bam_core::{BamArray, BamConfig, BamError, BamSystem, MetricsSnapshot};
use bam_gpu_sim::{GpuExecutor, GpuSpec};
use bam_nvme_sim::SsdSpec;

/// Outcome of a microbenchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicroRunResult {
    /// Requests the GPU threads issued.
    pub requests: u64,
    /// Storage commands observed by the controllers.
    pub commands: u64,
    /// SQ doorbell MMIO writes.
    pub doorbell_writes: u64,
    /// BaM software metrics snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
}

/// Builds an uncached BaM system for raw-throughput runs: `num_ssds` devices
/// of `spec`, `queue_pairs` × `queue_depth` queues, `access_bytes` lines.
///
/// # Errors
///
/// Propagates configuration and allocation errors.
pub fn build_raw_system(
    spec: SsdSpec,
    num_ssds: usize,
    queue_pairs: u32,
    queue_depth: u32,
    access_bytes: u64,
    capacity_bytes: u64,
) -> Result<BamSystem, BamError> {
    let config = BamConfig {
        cache_line_bytes: access_bytes,
        cache_bytes: access_bytes, // unused (cache off), keep validation happy
        num_ssds,
        ssd_spec: spec,
        ssd_capacity_bytes: capacity_bytes,
        queue_pairs_per_ssd: queue_pairs,
        queue_depth,
        use_cache: false,
        gpu_memory_bytes: (capacity_bytes / 2).max(8 << 20),
        ..BamConfig::default()
    };
    BamSystem::new(config)
}

/// Issues `num_requests` random single-element reads spread over `array`
/// from `num_threads` GPU threads (Fig 4 read benchmark).
///
/// # Errors
///
/// Propagates the first storage error hit by any thread.
pub fn random_read(
    system: &BamSystem,
    array: &BamArray<u64>,
    num_requests: u64,
    num_threads: usize,
    workers: usize,
    seed: u64,
) -> Result<MicroRunResult, BamError> {
    run_random(
        system,
        array,
        num_requests,
        num_threads,
        workers,
        seed,
        false,
    )
}

/// Issues `num_requests` random single-line writes (Fig 4 write benchmark).
///
/// # Errors
///
/// Propagates the first storage error hit by any thread.
pub fn random_write(
    system: &BamSystem,
    array: &BamArray<u64>,
    num_requests: u64,
    num_threads: usize,
    workers: usize,
    seed: u64,
) -> Result<MicroRunResult, BamError> {
    run_random(
        system,
        array,
        num_requests,
        num_threads,
        workers,
        seed,
        true,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_random(
    system: &BamSystem,
    array: &BamArray<u64>,
    num_requests: u64,
    num_threads: usize,
    workers: usize,
    seed: u64,
    write: bool,
) -> Result<MicroRunResult, BamError> {
    let elems_per_line = system.config().cache_line_bytes / 8;
    let lines = array.len() / elems_per_line;
    assert!(lines > 0, "array smaller than one line");
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), workers);
    let issued = AtomicU64::new(0);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);
    let per_thread = num_requests.div_ceil(num_threads as u64);
    exec.launch(num_threads, |warp| {
        for (_lane, tid) in warp.lanes() {
            let mut rng = StdRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9E37_79B9));
            for _ in 0..per_thread {
                if issued.fetch_add(1, Ordering::Relaxed) >= num_requests {
                    return;
                }
                let line = rng.gen_range(0..lines);
                let result = if write {
                    // Full-line write: one storage command.
                    let values = vec![tid as u64; elems_per_line as usize];
                    array.write_run(line * elems_per_line, &values)
                } else {
                    array
                        .read(line * elems_per_line + rng.gen_range(0..elems_per_line))
                        .map(|_| ())
                };
                if let Err(e) = result {
                    first_error.lock().expect("poisoned").get_or_insert(e);
                    return;
                }
            }
        }
    });
    if let Some(e) = first_error.lock().expect("poisoned").take() {
        return Err(e);
    }
    let metrics = system.metrics();
    Ok(MicroRunResult {
        requests: num_requests.min(issued.load(Ordering::Relaxed)),
        commands: system.total_submissions(),
        doorbell_writes: system.total_doorbell_writes(),
        metrics,
    })
}

/// Sequential transfer through BaM at the given line (I/O) granularity: every
/// warp reads consecutive cache lines, the BaM side of Fig 5.
///
/// # Errors
///
/// Propagates the first storage error hit by any thread.
pub fn sequential_read(
    system: &BamSystem,
    array: &BamArray<u64>,
    total_bytes: u64,
    workers: usize,
) -> Result<MicroRunResult, BamError> {
    let line_bytes = system.config().cache_line_bytes;
    let elems_per_line = line_bytes / 8;
    let lines = (total_bytes / line_bytes).min(array.len() / elems_per_line);
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), workers);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);
    exec.launch(lines as usize, |warp| {
        for (_lane, tid) in warp.lanes() {
            let start = tid as u64 * elems_per_line;
            if let Err(e) = array.read_run(start, elems_per_line) {
                first_error.lock().expect("poisoned").get_or_insert(e);
            }
        }
    });
    if let Some(e) = first_error.lock().expect("poisoned").take() {
        return Err(e);
    }
    Ok(MicroRunResult {
        requests: lines,
        commands: system.total_submissions(),
        doorbell_writes: system.total_doorbell_writes(),
        metrics: system.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> (BamSystem, BamArray<u64>) {
        let sys = build_raw_system(SsdSpec::intel_optane_p5800x(), 2, 4, 64, 512, 4 << 20)
            .expect("system");
        let n = (2 << 20) / 8;
        let arr = sys.create_array::<u64>(n).unwrap();
        arr.preload(&(0..n).collect::<Vec<_>>()).unwrap();
        (sys, arr)
    }

    #[test]
    fn random_reads_issue_one_command_per_request() {
        let (sys, arr) = small_system();
        let r = random_read(&sys, &arr, 500, 128, 4, 1).unwrap();
        assert_eq!(r.requests, 500);
        assert_eq!(
            r.commands, 500,
            "uncached 512B reads map 1:1 to NVMe commands"
        );
        assert!(r.doorbell_writes <= r.commands);
        assert_eq!(r.metrics.cache_hits, 0);
    }

    #[test]
    fn random_writes_issue_one_command_per_request_per_replica() {
        let (sys, arr) = small_system();
        let r = random_write(&sys, &arr, 200, 64, 4, 2).unwrap();
        assert_eq!(r.requests, 200);
        // Replicated across 2 SSDs: each logical write becomes 2 commands.
        assert_eq!(r.commands, 400);
    }

    #[test]
    fn sequential_read_covers_requested_bytes() {
        let (sys, arr) = small_system();
        let r = sequential_read(&sys, &arr, 256 * 1024, 4).unwrap();
        assert_eq!(r.requests, 512); // 256 KiB / 512 B
        assert_eq!(r.metrics.read_requests, 512);
    }
}
