//! Enterprise data-analytics workload (paper §5.3): the NYC-Taxi-style
//! columnar table and queries Q0–Q5.
//!
//! The real dataset (1.7 B trip records) cannot be shipped, so a generator
//! produces a table with the same column schema and the same selectivity
//! (≈0.03 % of trips are at least 30 miles), which is what determines the
//! I/O-amplification behaviour the experiment measures. Queries run either
//! against host vectors (reference / RAPIDS input) or against BaM-backed
//! column arrays with on-demand, data-dependent accesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use bam_baselines::rapids::RapidsQuery;
use bam_core::{BamArray, BamError, BamSystem};
use bam_gpu_sim::GpuExecutor;

/// The distance threshold of the paper's query family, in miles.
pub const MIN_DISTANCE_MILES: f64 = 30.0;

/// Column identifiers of the taxi-trip table, in the order queries add them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaxiColumn {
    /// Trip distance in miles (the filter column, scanned by every query).
    Distance,
    /// Total fare amount (added by Q1).
    TotalAmount,
    /// Surcharges (added by Q2).
    Surcharge,
    /// Hail fee (added by Q3).
    HailFee,
    /// Tolls (added by Q4).
    Tolls,
    /// Taxes (added by Q5).
    Taxes,
}

impl TaxiColumn {
    /// The columns a query `Q<n>` touches: the distance column plus the first
    /// `n` dependent metrics.
    pub fn for_query(q: usize) -> Vec<TaxiColumn> {
        use TaxiColumn::*;
        let all = [Distance, TotalAmount, Surcharge, HailFee, Tolls, Taxes];
        all[..=q.min(5)].to_vec()
    }
}

/// The host-resident taxi table (ground truth and RAPIDS input).
#[derive(Debug, Clone)]
pub struct TaxiTable {
    /// Trip distance column.
    pub distance: Vec<f64>,
    /// Dependent metric columns, indexed by `TaxiColumn` order (total,
    /// surcharge, hail fee, tolls, taxes).
    pub metrics: [Vec<f64>; 5],
}

impl TaxiTable {
    /// Generates `rows` trips with roughly `selectivity` of them at least 30
    /// miles long (the paper's dataset has ≈511 K of 1.7 B ≈ 0.03 %).
    pub fn generate(rows: usize, selectivity: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut distance = Vec::with_capacity(rows);
        let mut metrics: [Vec<f64>; 5] = Default::default();
        for m in &mut metrics {
            m.reserve(rows);
        }
        for _ in 0..rows {
            let long_trip = rng.gen_bool(selectivity.clamp(0.0, 1.0));
            let d = if long_trip {
                MIN_DISTANCE_MILES + rng.gen_range(0.0..70.0)
            } else {
                rng.gen_range(0.1..MIN_DISTANCE_MILES - 0.01)
            };
            distance.push(d);
            let base_fare = 2.5 + d * rng.gen_range(1.5..3.5);
            metrics[0].push(base_fare);
            metrics[1].push(rng.gen_range(0.0..5.0));
            metrics[2].push(if rng.gen_bool(0.05) { 2.75 } else { 0.0 });
            metrics[3].push(if rng.gen_bool(0.2) {
                rng.gen_range(1.0..20.0)
            } else {
                0.0
            });
            metrics[4].push(base_fare * 0.08875);
        }
        Self { distance, metrics }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.distance.len()
    }

    /// Bytes per column (8-byte values, as in the paper).
    pub fn column_bytes(&self) -> u64 {
        self.rows() as u64 * 8
    }

    /// Rows with distance ≥ 30 miles.
    pub fn selected_rows(&self) -> u64 {
        self.distance
            .iter()
            .filter(|&&d| d >= MIN_DISTANCE_MILES)
            .count() as u64
    }

    /// The [`RapidsQuery`] demand `Q<q>` places on the RAPIDS baseline.
    pub fn rapids_query(&self, q: usize) -> RapidsQuery {
        RapidsQuery {
            rows: self.rows() as u64,
            value_bytes: 8,
            columns: (q + 1) as u64,
            selected_rows: self.selected_rows(),
        }
    }
}

/// Output of one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOutput {
    /// Sum over selected rows of the dependent metrics (for Q0: count of
    /// selected rows as a float).
    pub aggregate: f64,
    /// Number of rows selected by the distance filter.
    pub selected_rows: u64,
    /// Number of element accesses the query performed.
    pub accesses: u64,
}

/// Host reference execution of `Q<q>`.
pub fn query_reference(table: &TaxiTable, q: usize) -> QueryOutput {
    let mut aggregate = 0.0f64;
    let mut selected = 0u64;
    let mut accesses = 0u64;
    for i in 0..table.rows() {
        accesses += 1;
        if table.distance[i] >= MIN_DISTANCE_MILES {
            selected += 1;
            if q == 0 {
                aggregate += 1.0;
            } else {
                for col in 0..q.min(5) {
                    accesses += 1;
                    aggregate += table.metrics[col][i];
                }
            }
        }
    }
    QueryOutput {
        aggregate,
        selected_rows: selected,
        accesses,
    }
}

/// BaM-backed column arrays for the taxi table.
#[derive(Debug, Clone)]
pub struct BamTaxiTable {
    /// Distance column on storage.
    pub distance: BamArray<f64>,
    /// Dependent metric columns on storage.
    pub metrics: Vec<BamArray<f64>>,
    rows: u64,
}

impl BamTaxiTable {
    /// Uploads every column of `table` onto the simulated SSDs.
    ///
    /// # Errors
    ///
    /// Propagates storage-capacity and media errors.
    pub fn upload(system: &BamSystem, table: &TaxiTable) -> Result<Self, BamError> {
        let distance = system.create_array::<f64>(table.rows() as u64)?;
        distance.preload(&table.distance)?;
        let mut metrics = Vec::with_capacity(5);
        for col in &table.metrics {
            let arr = system.create_array::<f64>(table.rows() as u64)?;
            arr.preload(col)?;
            metrics.push(arr);
        }
        Ok(Self {
            distance,
            metrics,
            rows: table.rows() as u64,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

/// Executes `Q<q>` on the GPU with on-demand BaM accesses: the distance
/// column is scanned sequentially (with cache-line reuse), and the dependent
/// columns are only touched for rows that pass the filter — the source of
/// BaM's I/O-amplification advantage over RAPIDS (§5.3).
///
/// # Errors
///
/// Propagates the first storage/cache error hit by any thread.
pub fn query_bam(
    table: &BamTaxiTable,
    q: usize,
    exec: &GpuExecutor,
) -> Result<QueryOutput, BamError> {
    /// Rows each GPU thread scans (one cache line of 8-byte values per 512 B
    /// line at test scale; any multiple works).
    const ROWS_PER_THREAD: u64 = 64;
    let rows = table.rows();
    let threads = rows.div_ceil(ROWS_PER_THREAD) as usize;
    let aggregate_bits = AtomicU64::new(0f64.to_bits());
    let selected = AtomicU64::new(0);
    let accesses = AtomicU64::new(0);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);

    let add_to_aggregate = |value: f64| {
        let mut cur = aggregate_bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match aggregate_bits.compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    };

    exec.launch(threads, |warp| {
        for (_lane, tid) in warp.lanes() {
            let start = tid as u64 * ROWS_PER_THREAD;
            if start >= rows {
                continue;
            }
            let count = ROWS_PER_THREAD.min(rows - start);
            let distances = match table.distance.read_run(start, count) {
                Ok(d) => d,
                Err(e) => {
                    first_error.lock().expect("poisoned").get_or_insert(e);
                    continue;
                }
            };
            accesses.fetch_add(count, Ordering::Relaxed);
            let mut local_sum = 0.0f64;
            let mut local_selected = 0u64;
            for (i, d) in distances.iter().enumerate() {
                if *d >= MIN_DISTANCE_MILES {
                    local_selected += 1;
                    if q == 0 {
                        local_sum += 1.0;
                    } else {
                        let row = start + i as u64;
                        for col in table.metrics.iter().take(q.min(5)) {
                            match col.read(row) {
                                Ok(v) => {
                                    local_sum += v;
                                    accesses.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    first_error.lock().expect("poisoned").get_or_insert(e);
                                }
                            }
                        }
                    }
                }
            }
            if local_selected > 0 {
                selected.fetch_add(local_selected, Ordering::Relaxed);
                add_to_aggregate(local_sum);
            }
        }
    });
    if let Some(e) = first_error.lock().expect("poisoned").take() {
        return Err(e);
    }
    Ok(QueryOutput {
        aggregate: f64::from_bits(aggregate_bits.into_inner()),
        selected_rows: selected.into_inner(),
        accesses: accesses.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_core::BamConfig;
    use bam_gpu_sim::GpuSpec;

    #[test]
    fn generator_hits_requested_selectivity() {
        let t = TaxiTable::generate(20_000, 0.01, 7);
        let frac = t.selected_rows() as f64 / t.rows() as f64;
        assert!((0.005..0.02).contains(&frac), "selectivity {frac}");
        assert_eq!(t.column_bytes(), 160_000);
    }

    #[test]
    fn reference_query_accesses_grow_with_columns() {
        let t = TaxiTable::generate(5_000, 0.05, 1);
        let q0 = query_reference(&t, 0);
        let q5 = query_reference(&t, 5);
        assert_eq!(q0.selected_rows, q5.selected_rows);
        assert!(q5.accesses > q0.accesses);
        assert!(q5.aggregate > 0.0);
        assert!((q0.aggregate - q0.selected_rows as f64).abs() < 1e-9);
    }

    #[test]
    fn rapids_demand_matches_table() {
        let t = TaxiTable::generate(2_000, 0.05, 3);
        let q3 = t.rapids_query(3);
        assert_eq!(q3.rows, 2_000);
        assert_eq!(q3.columns, 4);
        assert_eq!(q3.selected_rows, t.selected_rows());
    }

    #[test]
    fn bam_queries_match_reference() {
        let table = TaxiTable::generate(4_096, 0.03, 11);
        let mut cfg = BamConfig::test_scale();
        cfg.ssd_capacity_bytes = 16 << 20;
        let sys = BamSystem::new(cfg).unwrap();
        let bam_table = BamTaxiTable::upload(&sys, &table).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
        for q in [0usize, 2, 5] {
            let reference = query_reference(&table, q);
            let bam = query_bam(&bam_table, q, &exec).unwrap();
            assert_eq!(bam.selected_rows, reference.selected_rows, "Q{q}");
            assert!(
                (bam.aggregate - reference.aggregate).abs()
                    < 1e-6 * reference.aggregate.abs().max(1.0),
                "Q{q}: {} vs {}",
                bam.aggregate,
                reference.aggregate
            );
        }
        // Data-dependent access keeps I/O amplification near 1 for BaM.
        let m = sys.metrics();
        assert!(m.bytes_read > 0);
    }
}
