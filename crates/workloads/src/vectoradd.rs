//! The write-intensive vectorAdd workload (paper §5.4).
//!
//! Two input arrays live on storage and the output array must be written
//! back to storage. The BaM version assigns each warp a cache line of the
//! output vector; the baseline is proactive tiling with double buffering
//! (modelled in `bam-baselines`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bam_baselines::AccessDemand;
use bam_core::{BamArray, BamError, BamSystem};
use bam_gpu_sim::GpuExecutor;

/// Result of a vectorAdd run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorAddResult {
    /// Elements computed.
    pub elements: u64,
    /// Element reads performed (2 per element).
    pub reads: u64,
    /// Element writes performed (1 per element).
    pub writes: u64,
}

/// The three storage-backed operand arrays of vectorAdd: `(a, b, out)`.
pub type VectorAddArrays = (BamArray<f64>, BamArray<f64>, BamArray<f64>);

/// Creates and preloads the two input arrays (`a[i] = i`, `b[i] = 2i`) and an
/// output array of `n` elements.
///
/// # Errors
///
/// Propagates storage-capacity and media errors.
pub fn setup(system: &BamSystem, n: u64) -> Result<VectorAddArrays, BamError> {
    let a = system.create_array::<f64>(n)?;
    let b = system.create_array::<f64>(n)?;
    let out = system.create_array::<f64>(n)?;
    a.preload(&(0..n).map(|i| i as f64).collect::<Vec<_>>())?;
    b.preload(&(0..n).map(|i| 2.0 * i as f64).collect::<Vec<_>>())?;
    out.preload(&vec![0.0f64; n as usize])?;
    Ok((a, b, out))
}

/// Runs vectorAdd through BaM: each GPU thread handles one run of elements
/// sized to the cache line, reading `a` and `b` on demand and writing the
/// output through the write-back cache, followed by a flush of dirty lines.
///
/// # Errors
///
/// Propagates the first storage/cache error hit by any thread.
pub fn vectoradd_bam(
    system: &BamSystem,
    a: &BamArray<f64>,
    b: &BamArray<f64>,
    out: &BamArray<f64>,
    exec: &GpuExecutor,
) -> Result<VectorAddResult, BamError> {
    let n = out.len();
    let elems_per_line = (system.config().cache_line_bytes / 8).max(1);
    let threads = n.div_ceil(elems_per_line) as usize;
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);
    exec.launch(threads, |warp| {
        for (_lane, tid) in warp.lanes() {
            let start = tid as u64 * elems_per_line;
            if start >= n {
                continue;
            }
            let count = elems_per_line.min(n - start);
            let result: Result<(), BamError> = (|| {
                let va = a.read_run(start, count)?;
                let vb = b.read_run(start, count)?;
                reads.fetch_add(2 * count, Ordering::Relaxed);
                let sums: Vec<f64> = va.iter().zip(&vb).map(|(x, y)| x + y).collect();
                out.write_run(start, &sums)?;
                writes.fetch_add(count, Ordering::Relaxed);
                Ok(())
            })();
            if let Err(e) = result {
                first_error.lock().expect("poisoned").get_or_insert(e);
            }
        }
    });
    if let Some(e) = first_error.lock().expect("poisoned").take() {
        return Err(e);
    }
    // The output is write-back cached; flush it to storage as the workload's
    // persistence step (§4.4).
    system.flush()?;
    Ok(VectorAddResult {
        elements: n,
        reads: reads.into_inner(),
        writes: writes.into_inner(),
    })
}

/// The demand vectorAdd places on a memory system (for the tiling baseline):
/// reads two input vectors in full, writes one output vector in full.
pub fn vectoradd_demand(n: u64, line_bytes: u64, parallelism: u64) -> AccessDemand {
    let input_bytes = 2 * n * 8;
    let output_bytes = n * 8;
    AccessDemand {
        dataset_bytes: input_bytes,
        bytes_touched: input_bytes,
        on_demand_accesses: (input_bytes + output_bytes).div_ceil(line_bytes),
        access_bytes: line_bytes,
        bytes_written: output_bytes,
        compute_ops: n,
        phases: 5, // the paper's baseline splits the work into five tiles
        parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bam_core::BamConfig;
    use bam_gpu_sim::GpuSpec;

    #[test]
    fn bam_vectoradd_produces_correct_sums() {
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let n = 10_000u64;
        let (a, b, out) = setup(&sys, n).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
        let r = vectoradd_bam(&sys, &a, &b, &out, &exec).unwrap();
        assert_eq!(r.elements, n);
        assert_eq!(r.reads, 2 * n);
        assert_eq!(r.writes, n);
        // Verify a sample of outputs directly from the storage media (the
        // flush must have made them durable).
        for idx in [0u64, 1, 4_999, 9_999] {
            assert_eq!(out.read(idx).unwrap(), 3.0 * idx as f64, "index {idx}");
        }
        let m = sys.metrics();
        assert!(m.cache_writebacks > 0, "flush must write dirty lines back");
    }

    #[test]
    fn demand_shape() {
        let d = vectoradd_demand(1_000_000, 4096, 1 << 20);
        assert_eq!(d.dataset_bytes, 16_000_000);
        assert_eq!(d.bytes_written, 8_000_000);
        assert_eq!(d.compute_ops, 1_000_000);
    }
}
