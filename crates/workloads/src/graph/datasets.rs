//! The graph datasets of Table 3, reproduced as scaled synthetic generators.

use serde::{Deserialize, Serialize};

use super::csr::CsrGraph;
use super::generate::{rmat, uniform_random, web_crawl, RmatParams};

/// Which Table 3 dataset a descriptor stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// GAP-kron (K): synthetic Kronecker, heavy skew.
    GapKron,
    /// GAP-urand (U): uniform random.
    GapUrand,
    /// Friendster (F): social network.
    Friendster,
    /// MOLIERE_2016 (M): semantic/biomedical network, highest edge count.
    Moliere,
    /// uk-2007-05 (Uk): web crawl, deep BFS with tiny frontiers.
    Uk2007,
}

/// A Table 3 row: the original sizes plus the generator that reproduces its
/// structure at a chosen scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Which dataset this stands in for.
    pub kind: DatasetKind,
    /// Short name used in the paper's figures (K, U, F, M, Uk).
    pub short_name: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Node count of the original dataset.
    pub original_nodes: u64,
    /// Edge count of the original dataset.
    pub original_edges: u64,
    /// Edge-list size of the original dataset in GB (Table 3).
    pub original_size_gb: f64,
}

impl DatasetDescriptor {
    /// All Table 3 rows in the paper's order.
    pub fn table3() -> Vec<Self> {
        vec![
            Self {
                kind: DatasetKind::GapKron,
                short_name: "K",
                name: "GAP-kron",
                original_nodes: 134_200_000,
                original_edges: 4_220_000_000,
                original_size_gb: 31.5,
            },
            Self {
                kind: DatasetKind::GapUrand,
                short_name: "U",
                name: "GAP-urand",
                original_nodes: 134_200_000,
                original_edges: 4_290_000_000,
                original_size_gb: 32.0,
            },
            Self {
                kind: DatasetKind::Friendster,
                short_name: "F",
                name: "Friendster",
                original_nodes: 65_600_000,
                original_edges: 3_610_000_000,
                original_size_gb: 26.9,
            },
            Self {
                kind: DatasetKind::Moliere,
                short_name: "M",
                name: "MOLIERE_2016",
                original_nodes: 30_200_000,
                original_edges: 6_670_000_000,
                original_size_gb: 49.7,
            },
            Self {
                kind: DatasetKind::Uk2007,
                short_name: "Uk",
                name: "uk-2007-05",
                original_nodes: 105_900_000,
                original_edges: 3_740_000_000,
                original_size_gb: 27.8,
            },
        ]
    }

    /// Whether the paper runs CC on this dataset (it skips Uk because CC
    /// needs an undirected graph).
    pub fn used_for_cc(&self) -> bool {
        self.kind != DatasetKind::Uk2007
    }

    /// Generates a scaled instance: `scale` is the fraction of the original
    /// node count (e.g. `1e-4` for a hundred-thousandth-scale instance); the
    /// edge/node ratio of the original is preserved.
    ///
    /// # Panics
    ///
    /// Panics if the scaled node count is below 16.
    pub fn generate(&self, scale: f64, seed: u64) -> CsrGraph {
        let nodes = ((self.original_nodes as f64 * scale) as u64).max(16);
        assert!(
            nodes >= 16 && nodes < u32::MAX as u64,
            "scaled node count {nodes} out of range"
        );
        let avg_degree = self.original_edges as f64 / self.original_nodes as f64;
        let edges = (nodes as f64 * avg_degree) as u64;
        let nodes = nodes as u32;
        match self.kind {
            DatasetKind::GapKron => {
                let scale_log2 = (nodes as f64).log2().ceil() as u32;
                rmat(
                    scale_log2.clamp(4, 30),
                    edges / 2,
                    RmatParams::gap_kron(),
                    seed,
                )
            }
            DatasetKind::GapUrand => uniform_random(nodes, edges / 2, seed),
            DatasetKind::Friendster => {
                let scale_log2 = (nodes as f64).log2().ceil() as u32;
                rmat(
                    scale_log2.clamp(4, 30),
                    edges / 2,
                    RmatParams::social(),
                    seed,
                )
            }
            DatasetKind::Moliere => {
                let scale_log2 = (nodes as f64).log2().ceil() as u32;
                rmat(
                    scale_log2.clamp(4, 30),
                    edges / 2,
                    RmatParams::social(),
                    seed.wrapping_add(1),
                )
            }
            DatasetKind::Uk2007 => web_crawl(nodes, edges / 2, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let t = DatasetDescriptor::table3();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].short_name, "K");
        assert!(t.iter().all(|d| d.original_edges > 3_000_000_000));
        // MOLIERE is the largest by edges and size.
        let m = t.iter().find(|d| d.kind == DatasetKind::Moliere).unwrap();
        assert!(t.iter().all(|d| d.original_size_gb <= m.original_size_gb));
        // Only Uk is excluded from CC.
        assert_eq!(t.iter().filter(|d| !d.used_for_cc()).count(), 1);
    }

    #[test]
    fn scaled_generation_preserves_density() {
        for d in DatasetDescriptor::table3() {
            let g = d.generate(2e-5, 11);
            let avg_degree_orig = d.original_edges as f64 / d.original_nodes as f64;
            let avg_degree = g.num_edges() as f64 / g.num_nodes() as f64;
            // Symmetrization doubles stored edges; accept a factor-of-two band.
            assert!(
                avg_degree > avg_degree_orig * 0.5 && avg_degree < avg_degree_orig * 3.0,
                "{}: avg degree {avg_degree:.1} vs original {avg_degree_orig:.1}",
                d.name
            );
        }
    }
}
