//! Breadth-first search.
//!
//! Two implementations share the same algorithm: a host reference used for
//! validation and compute-cost accounting, and the BaM version in which the
//! edge list lives on the simulated SSDs behind a [`BamArray`], while the
//! (much smaller) offsets array stays resident — the layout the paper uses
//! (Appendix B.2).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use bam_core::{BamArray, BamError};
use bam_gpu_sim::GpuExecutor;

use super::csr::CsrGraph;

/// Result of a BFS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// BFS level of every node (`u32::MAX` when unreachable).
    pub distances: Vec<u32>,
    /// Number of edges traversed (neighbour-list entries read).
    pub edges_traversed: u64,
    /// Number of BFS levels executed.
    pub iterations: u32,
}

impl BfsResult {
    /// Number of nodes reached from the source.
    pub fn reached(&self) -> u64 {
        self.distances.iter().filter(|&&d| d != u32::MAX).count() as u64
    }
}

/// Host reference BFS over an in-memory CSR graph.
pub fn bfs_reference(graph: &CsrGraph, source: u32) -> BfsResult {
    let n = graph.num_nodes() as usize;
    let mut distances = vec![u32::MAX; n];
    distances[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    let mut edges_traversed = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                edges_traversed += 1;
                if distances[v as usize] == u32::MAX {
                    distances[v as usize] = level + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    BfsResult {
        distances,
        edges_traversed,
        iterations: level,
    }
}

/// BFS with the edge list accessed on demand through BaM.
///
/// Each BFS level launches one GPU kernel; warps take frontier nodes, read
/// their neighbour lists from the [`BamArray`] with cache-line reference
/// reuse ([`BamArray::read_run`]), and atomically claim unvisited neighbours
/// for the next frontier.
///
/// # Errors
///
/// Propagates the first storage/cache error hit by any thread.
pub fn bfs_bam(
    offsets: &[u64],
    edges: &BamArray<u32>,
    source: u32,
    exec: &GpuExecutor,
) -> Result<BfsResult, BamError> {
    let n = offsets.len() - 1;
    assert!((source as usize) < n, "source out of range");
    let distances: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    distances[source as usize].store(0, Ordering::Relaxed);
    let edges_traversed = AtomicU64::new(0);
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);

    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        let next = Mutex::new(Vec::new());
        let frontier_ref = &frontier;
        let distances_ref = &distances;
        let edges_traversed_ref = &edges_traversed;
        let first_error_ref = &first_error;
        let next_ref = &next;
        exec.launch(frontier.len(), |warp| {
            let mut local_next = Vec::new();
            for (_lane, tid) in warp.lanes() {
                let u = frontier_ref[tid];
                let start = offsets[u as usize];
                let count = offsets[u as usize + 1] - start;
                if count == 0 {
                    continue;
                }
                match edges.read_run(start, count) {
                    Ok(neighbors) => {
                        edges_traversed_ref.fetch_add(count, Ordering::Relaxed);
                        for v in neighbors {
                            if distances_ref[v as usize]
                                .compare_exchange(
                                    u32::MAX,
                                    level + 1,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                local_next.push(v);
                            }
                        }
                    }
                    Err(e) => {
                        first_error_ref.lock().expect("poisoned").get_or_insert(e);
                    }
                }
            }
            if !local_next.is_empty() {
                next_ref.lock().expect("poisoned").append(&mut local_next);
            }
        });
        if let Some(e) = first_error.lock().expect("poisoned").take() {
            return Err(e);
        }
        frontier = next.into_inner().expect("poisoned");
        level += 1;
    }

    Ok(BfsResult {
        distances: distances.into_iter().map(|d| d.into_inner()).collect(),
        edges_traversed: edges_traversed.into_inner(),
        iterations: level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generate::uniform_random;
    use crate::graph::storage::upload_edge_list;
    use bam_core::{BamConfig, BamSystem};
    use bam_gpu_sim::GpuSpec;

    #[test]
    fn reference_bfs_on_path_graph() {
        let g = CsrGraph::from_edge_list(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], true);
        let r = bfs_reference(&g, 0);
        assert_eq!(r.distances, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.iterations, 5);
        assert_eq!(r.reached(), 5);
    }

    #[test]
    fn unreachable_nodes_stay_at_max() {
        let g = CsrGraph::from_edge_list(4, &[(0, 1)], true);
        let r = bfs_reference(&g, 0);
        assert_eq!(r.distances[2], u32::MAX);
        assert_eq!(r.reached(), 2);
    }

    #[test]
    fn bam_bfs_matches_reference_on_random_graph() {
        let g = uniform_random(600, 2400, 3);
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let edges = upload_edge_list(&sys, &g).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);

        let reference = bfs_reference(&g, 5);
        let bam = bfs_bam(&g.offsets, &edges, 5, &exec).unwrap();
        assert_eq!(bam.distances, reference.distances);
        assert_eq!(bam.edges_traversed, reference.edges_traversed);
        // The run must have gone through the cache/storage stack.
        let m = sys.metrics();
        assert!(m.cache_misses > 0);
        assert!(m.read_requests > 0);
    }
}
