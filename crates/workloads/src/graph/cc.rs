//! Connected components (label propagation).
//!
//! The paper runs CC on the undirected Table 3 graphs. The implementation
//! here is iterative label propagation: every node repeatedly adopts the
//! minimum label among itself and its neighbours until a fixed point. Like
//! BFS, a host reference validates the BaM version, whose edge list is read
//! on demand through the [`BamArray`].

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use bam_core::{BamArray, BamError};
use bam_gpu_sim::GpuExecutor;

use super::csr::CsrGraph;

/// Result of a connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcResult {
    /// Component label of every node (the smallest node id in its component).
    pub labels: Vec<u32>,
    /// Edges traversed across all iterations.
    pub edges_traversed: u64,
    /// Number of label-propagation iterations executed.
    pub iterations: u32,
}

impl CcResult {
    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut labels = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

/// Host reference label-propagation CC.
pub fn cc_reference(graph: &CsrGraph) -> CcResult {
    let n = graph.num_nodes() as usize;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut edges_traversed = 0u64;
    let mut iterations = 0u32;
    loop {
        let mut changed = false;
        for u in 0..n as u32 {
            let mut best = labels[u as usize];
            for &v in graph.neighbors(u) {
                edges_traversed += 1;
                best = best.min(labels[v as usize]);
            }
            if best < labels[u as usize] {
                labels[u as usize] = best;
                changed = true;
            }
        }
        iterations += 1;
        if !changed {
            break;
        }
    }
    CcResult {
        labels,
        edges_traversed,
        iterations,
    }
}

/// Connected components with the edge list accessed on demand through BaM.
///
/// # Errors
///
/// Propagates the first storage/cache error hit by any thread.
pub fn cc_bam(
    offsets: &[u64],
    edges: &BamArray<u32>,
    exec: &GpuExecutor,
) -> Result<CcResult, BamError> {
    let n = offsets.len() - 1;
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let edges_traversed = AtomicU64::new(0);
    let mut iterations = 0u32;
    let first_error: Mutex<Option<BamError>> = Mutex::new(None);
    loop {
        let changed = AtomicBool::new(false);
        let labels_ref = &labels;
        let changed_ref = &changed;
        let edges_traversed_ref = &edges_traversed;
        let first_error_ref = &first_error;
        exec.launch(n, |warp| {
            for (_lane, u) in warp.lanes() {
                let start = offsets[u];
                let count = offsets[u + 1] - start;
                if count == 0 {
                    continue;
                }
                match edges.read_run(start, count) {
                    Ok(neighbors) => {
                        edges_traversed_ref.fetch_add(count, Ordering::Relaxed);
                        let mut best = labels_ref[u].load(Ordering::Acquire);
                        for v in neighbors {
                            best = best.min(labels_ref[v as usize].load(Ordering::Acquire));
                        }
                        // Monotonically lower our label to the minimum seen.
                        let mut cur = labels_ref[u].load(Ordering::Acquire);
                        while best < cur {
                            match labels_ref[u].compare_exchange(
                                cur,
                                best,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => {
                                    changed_ref.store(true, Ordering::Release);
                                    break;
                                }
                                Err(actual) => cur = actual,
                            }
                        }
                    }
                    Err(e) => {
                        first_error_ref.lock().expect("poisoned").get_or_insert(e);
                    }
                }
            }
        });
        if let Some(e) = first_error.lock().expect("poisoned").take() {
            return Err(e);
        }
        iterations += 1;
        if !changed.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(CcResult {
        labels: labels.into_iter().map(|l| l.into_inner()).collect(),
        edges_traversed: edges_traversed.into_inner(),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generate::uniform_random;
    use crate::graph::storage::upload_edge_list;
    use bam_core::{BamConfig, BamSystem};
    use bam_gpu_sim::GpuSpec;

    #[test]
    fn reference_cc_identifies_components() {
        // Two triangles and an isolated node.
        let g =
            CsrGraph::from_edge_list(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)], true);
        let r = cc_reference(&g);
        assert_eq!(r.num_components(), 3);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[3], r.labels[5]);
        assert_ne!(r.labels[0], r.labels[3]);
        assert_eq!(r.labels[6], 6);
    }

    #[test]
    fn bam_cc_matches_reference() {
        let g = uniform_random(400, 700, 9);
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let edges = upload_edge_list(&sys, &g).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
        let reference = cc_reference(&g);
        let bam = cc_bam(&g.offsets, &edges, &exec).unwrap();
        assert_eq!(bam.labels, reference.labels);
        assert_eq!(bam.num_components(), reference.num_components());
        assert!(sys.metrics().cache_hits + sys.metrics().cache_misses > 0);
    }
}
