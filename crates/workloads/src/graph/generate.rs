//! Synthetic graph generators.
//!
//! The paper's datasets (Table 3) cannot be redistributed here, so each is
//! replaced by a generator reproducing its structural character: GAP-kron is
//! an R-MAT/Kronecker graph, GAP-urand is uniform-random, Friendster and
//! MOLIERE are heavy-tailed social/semantic networks (R-MAT with milder
//! skew), and uk-2007-05 is a web crawl whose many tiny neighbour lists and
//! deep BFS levels come from strongly skewed degrees plus long chains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::csr::CsrGraph;

/// Generates a uniform-random (Erdős–Rényi-style) multigraph with
/// `num_edges` undirected edges.
pub fn uniform_random(num_nodes: u32, num_edges: u64, seed: u64) -> CsrGraph {
    assert!(num_nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_nodes);
        let mut v = rng.gen_range(0..num_nodes);
        if v == u {
            v = (v + 1) % num_nodes;
        }
        edges.push((u, v));
    }
    CsrGraph::from_edge_list(num_nodes, &edges, true)
}

/// R-MAT (Kronecker) generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (skew knob).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The GAP-kron parameters (a=0.57, b=c=0.19).
    pub fn gap_kron() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Milder skew used for the social-network-like graphs.
    pub fn social() -> Self {
        Self {
            a: 0.45,
            b: 0.22,
            c: 0.22,
        }
    }

    /// Strong skew producing web-crawl-like degree distributions.
    pub fn web() -> Self {
        Self {
            a: 0.65,
            b: 0.15,
            c: 0.15,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and `num_edges` undirected
/// edges.
pub fn rmat(scale: u32, num_edges: u64, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale must be in 1..31");
    let num_nodes = 1u32 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        edges.push((u, v));
    }
    CsrGraph::from_edge_list(num_nodes, &edges, true)
}

/// Generates a web-crawl-like directed graph: strongly skewed degrees with
/// long chain structures (producing the deep, small-frontier BFS behaviour
/// the paper observes on uk-2007-05).
pub fn web_crawl(num_nodes: u32, num_edges: u64, seed: u64) -> CsrGraph {
    assert!(num_nodes >= 16, "need at least 16 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges as usize + num_nodes as usize);
    // A backbone of chains: node i links to i+1 within blocks of 64, giving
    // many tiny neighbour lists and >100-level BFS depth at realistic sizes.
    for i in 0..num_nodes - 1 {
        if i % 64 != 63 {
            edges.push((i, i + 1));
        }
    }
    // The remaining edges follow a power-law-ish preferential pattern toward
    // low-numbered "hub" pages, on both endpoints (site-internal link farms).
    let hubs = (num_nodes / 16).max(1);
    for _ in 0..num_edges.saturating_sub(edges.len() as u64) {
        let u = if rng.gen_bool(0.5) {
            rng.gen_range(0..hubs)
        } else {
            rng.gen_range(0..num_nodes)
        };
        let v = if rng.gen_bool(0.7) {
            rng.gen_range(0..hubs)
        } else {
            rng.gen_range(0..num_nodes)
        };
        edges.push((u, v));
    }
    CsrGraph::from_edge_list(num_nodes, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_has_requested_size() {
        let g = uniform_random(1000, 5000, 1);
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 10_000); // symmetrized
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(uniform_random(500, 2000, 7), uniform_random(500, 2000, 7));
        assert_ne!(uniform_random(500, 2000, 7), uniform_random(500, 2000, 8));
        let p = RmatParams::gap_kron();
        assert_eq!(rmat(10, 4000, p, 3), rmat(10, 4000, p, 3));
    }

    #[test]
    fn rmat_is_more_skewed_than_uniform() {
        let r = rmat(12, 40_000, RmatParams::gap_kron(), 42);
        let u = uniform_random(1 << 12, 40_000, 42);
        let max_deg_r = (0..r.num_nodes()).map(|v| r.degree(v)).max().unwrap();
        let max_deg_u = (0..u.num_nodes()).map(|v| u.degree(v)).max().unwrap();
        assert!(
            max_deg_r > max_deg_u * 3,
            "rmat max degree {max_deg_r} vs uniform {max_deg_u}"
        );
    }

    #[test]
    fn web_crawl_has_many_low_degree_nodes_and_hubs() {
        let g = web_crawl(4096, 20_000, 5);
        let low = (0..g.num_nodes()).filter(|&v| g.degree(v) <= 6).count();
        assert!(low > g.num_nodes() as usize / 2, "low-degree nodes {low}");
        let max_degree = (0..g.num_nodes()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_degree > 50, "hub degree {max_degree}");
    }
}
