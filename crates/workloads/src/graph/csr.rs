//! Compressed sparse row (CSR) graph representation.
//!
//! The paper's graph workloads store the concatenated neighbour lists
//! (edge list) of a CSR graph on storage and keep the offsets array resident
//! (Appendix B.2 describes the layout). This module provides the host-side
//! CSR structure, used both as the ground truth for validation and as the
//! source data preloaded onto the simulated SSDs.

/// A graph in CSR form. Node ids are dense `u32`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` with `v`'s neighbours.
    pub offsets: Vec<u64>,
    /// Concatenated neighbour lists.
    pub edges: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list over `num_nodes` nodes.
    ///
    /// If `symmetrize` is true, every edge is inserted in both directions
    /// (required by connected components, which operates on undirected
    /// graphs). Self-loops are kept; duplicate edges are kept (they occur in
    /// the real datasets too and only affect constants).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_nodes`.
    pub fn from_edge_list(num_nodes: u32, edge_list: &[(u32, u32)], symmetrize: bool) -> Self {
        let n = num_nodes as usize;
        let mut degree = vec![0u64; n];
        for &(u, v) in edge_list {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range"
            );
            degree[u as usize] += 1;
            if symmetrize {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![0u32; offsets[n] as usize];
        for &(u, v) in edge_list {
            edges[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            if symmetrize {
                edges[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        Self { offsets, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges stored (twice the undirected edge count for
    /// symmetrized graphs).
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbour list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Size of the edge list in bytes when stored as `u32` values (what goes
    /// onto the SSDs).
    pub fn edge_list_bytes(&self) -> u64 {
        self.num_edges() * 4
    }

    /// Nodes with at least `min_degree` neighbours — the paper picks BFS
    /// sources with more than two neighbours.
    pub fn nodes_with_degree_at_least(&self, min_degree: u64) -> Vec<u32> {
        (0..self.num_nodes())
            .filter(|&v| self.degree(v) >= min_degree)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_graph_structure() {
        // 0-1, 0-2, 1-3 (symmetrized).
        let g = CsrGraph::from_edge_list(4, &[(0, 1), (0, 2), (1, 3)], true);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.neighbors(3), &[1]);
    }

    #[test]
    fn directed_graph_keeps_direction() {
        let g = CsrGraph::from_edge_list(3, &[(0, 1), (1, 2)], false);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn degree_filter() {
        let g = CsrGraph::from_edge_list(4, &[(0, 1), (0, 2), (0, 3)], true);
        assert_eq!(g.nodes_with_degree_at_least(2), vec![0]);
        assert_eq!(g.nodes_with_degree_at_least(1).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edge_list(2, &[(0, 5)], false);
    }
}
