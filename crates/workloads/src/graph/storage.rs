//! Placing graphs on BaM-backed storage and describing their demand.

use bam_baselines::AccessDemand;
use bam_core::{BamArray, BamError, BamSystem};

use super::csr::CsrGraph;

/// Uploads a graph's edge list onto the simulated SSDs and returns the
/// storage-backed array GPU kernels traverse.
///
/// The offsets array (8 bytes per node, orders of magnitude smaller than the
/// edge list) stays host/GPU resident, matching the paper's data placement.
///
/// # Errors
///
/// Propagates storage-capacity and media errors.
pub fn upload_edge_list(system: &BamSystem, graph: &CsrGraph) -> Result<BamArray<u32>, BamError> {
    let array = system.create_array::<u32>(graph.edges.len() as u64)?;
    array.preload(&graph.edges)?;
    Ok(array)
}

/// Builds the [`AccessDemand`] a graph-analytics run places on the memory
/// system, for feeding the baseline models.
///
/// * `edges_traversed` — neighbour-list entries actually read (from a
///   reference or BaM run).
/// * `line_bytes` — the on-demand access granularity.
/// * `parallelism` — concurrent GPU threads (the paper's runs keep tens of
///   thousands in flight).
pub fn graph_demand(
    graph: &CsrGraph,
    edges_traversed: u64,
    line_bytes: u64,
    parallelism: u64,
) -> AccessDemand {
    let bytes_touched = edges_traversed * 4;
    AccessDemand {
        dataset_bytes: graph.edge_list_bytes(),
        bytes_touched,
        on_demand_accesses: bytes_touched.div_ceil(line_bytes),
        access_bytes: line_bytes,
        bytes_written: 0,
        compute_ops: edges_traversed,
        phases: 1,
        parallelism,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generate::uniform_random;
    use bam_core::BamConfig;

    #[test]
    fn upload_and_read_back() {
        let g = uniform_random(200, 500, 4);
        let sys = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = upload_edge_list(&sys, &g).unwrap();
        assert_eq!(arr.len(), g.num_edges());
        // Spot-check a few entries.
        for idx in [0usize, 7, g.edges.len() - 1] {
            assert_eq!(arr.read(idx as u64).unwrap(), g.edges[idx]);
        }
    }

    #[test]
    fn demand_reflects_traversal() {
        let g = uniform_random(100, 300, 4);
        let d = graph_demand(&g, 450, 4096, 1 << 16);
        assert_eq!(d.dataset_bytes, g.edge_list_bytes());
        assert_eq!(d.bytes_touched, 1800);
        assert_eq!(d.compute_ops, 450);
        assert!(d.on_demand_accesses >= 1);
    }
}
