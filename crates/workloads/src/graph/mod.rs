//! Graph analytics workloads (paper §5.2): datasets, generators, BFS, and
//! connected components, in host-reference and BaM-backed versions.

pub mod bfs;
pub mod cc;
pub mod csr;
pub mod datasets;
pub mod generate;
pub mod storage;

pub use bfs::{bfs_bam, bfs_reference, BfsResult};
pub use cc::{cc_bam, cc_reference, CcResult};
pub use csr::CsrGraph;
pub use datasets::{DatasetDescriptor, DatasetKind};
pub use generate::{rmat, uniform_random, web_crawl, RmatParams};
pub use storage::{graph_demand, upload_edge_list};
