//! Doorbell registers.
//!
//! NVMe doorbells are write-only registers in the SSD's BAR space. In BaM
//! they are mapped into the GPU's address space so GPU threads can ring them
//! directly (§4.1). Because they are write-only, a thread ringing a doorbell
//! must guarantee that the value it writes is newer than any previously
//! written value — the motivation for BaM's coalesced doorbell protocol
//! (§2.2, §3.3).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A single doorbell register.
///
/// The "device side" ([`Doorbell::read`]) is only used by the simulated
/// controller; the "host/GPU side" only writes. A monotonic write counter is
/// kept so experiments can measure doorbell-write traffic (an expensive PCIe
/// operation the BaM queues try to minimize).
#[derive(Debug, Default)]
pub struct Doorbell {
    value: AtomicU32,
    writes: AtomicU64,
}

impl Doorbell {
    /// Creates a doorbell initialized to zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rings the doorbell with a new queue tail/head value.
    pub fn ring(&self, value: u32) {
        // Release so that queue-entry writes made before ringing are visible
        // to the controller that observes the new doorbell value.
        self.value.store(value, Ordering::Release);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Device-side read of the current doorbell value.
    pub fn read(&self) -> u32 {
        self.value.load(Ordering::Acquire)
    }

    /// Number of MMIO writes made to this doorbell so far.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ring_and_read() {
        let db = Doorbell::new();
        assert_eq!(db.read(), 0);
        db.ring(17);
        assert_eq!(db.read(), 17);
        db.ring(18);
        assert_eq!(db.read(), 18);
        assert_eq!(db.write_count(), 2);
    }

    #[test]
    fn concurrent_rings_leave_a_written_value() {
        let db = Arc::new(Doorbell::new());
        let mut handles = Vec::new();
        for t in 1..=8u32 {
            let db = db.clone();
            handles.push(thread::spawn(move || db.ring(t)));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!((1..=8).contains(&db.read()));
        assert_eq!(db.write_count(), 8);
    }
}
