//! Controller-side statistics.
//!
//! These counters are the ground truth the experiment harnesses use to
//! compute I/O counts, amplification factors, and doorbell traffic.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Live counters maintained by a simulated controller.
#[derive(Debug, Default)]
pub struct ControllerStats {
    read_commands: AtomicU64,
    write_commands: AtomicU64,
    flush_commands: AtomicU64,
    failed_commands: AtomicU64,
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    completions_posted: AtomicU64,
    doorbell_observations: AtomicU64,
}

/// A point-in-time copy of [`ControllerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Read commands completed.
    pub read_commands: u64,
    /// Write commands completed.
    pub write_commands: u64,
    /// Flush commands completed.
    pub flush_commands: u64,
    /// Commands that completed with a non-success status.
    pub failed_commands: u64,
    /// Logical blocks read from media.
    pub blocks_read: u64,
    /// Logical blocks written to media.
    pub blocks_written: u64,
    /// Completion entries posted.
    pub completions_posted: u64,
    /// Times the controller observed a doorbell value change.
    pub doorbell_observations: u64,
}

impl StatsSnapshot {
    /// Total commands completed (reads + writes + flushes).
    pub fn total_commands(&self) -> u64 {
        self.read_commands + self.write_commands + self.flush_commands
    }

    /// Bytes read from media, given the device block size.
    pub fn bytes_read(&self, block_size: usize) -> u64 {
        self.blocks_read * block_size as u64
    }

    /// Bytes written to media, given the device block size.
    pub fn bytes_written(&self, block_size: usize) -> u64 {
        self.blocks_written * block_size as u64
    }
}

impl ControllerStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, blocks: u64) {
        self.read_commands.fetch_add(1, Ordering::Relaxed);
        self.blocks_read.fetch_add(blocks, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, blocks: u64) {
        self.write_commands.fetch_add(1, Ordering::Relaxed);
        self.blocks_written.fetch_add(blocks, Ordering::Relaxed);
    }

    pub(crate) fn record_flush(&self) {
        self.flush_commands.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.failed_commands.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completion(&self) {
        self.completions_posted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_doorbell(&self) {
        self.doorbell_observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            read_commands: self.read_commands.load(Ordering::Relaxed),
            write_commands: self.write_commands.load(Ordering::Relaxed),
            flush_commands: self.flush_commands.load(Ordering::Relaxed),
            failed_commands: self.failed_commands.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            completions_posted: self.completions_posted.load(Ordering::Relaxed),
            doorbell_observations: self.doorbell_observations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ControllerStats::new();
        s.record_read(8);
        s.record_read(8);
        s.record_write(1);
        s.record_flush();
        s.record_completion();
        let snap = s.snapshot();
        assert_eq!(snap.read_commands, 2);
        assert_eq!(snap.blocks_read, 16);
        assert_eq!(snap.write_commands, 1);
        assert_eq!(snap.total_commands(), 4);
        assert_eq!(snap.bytes_read(512), 8192);
        assert_eq!(snap.bytes_written(512), 512);
    }
}
