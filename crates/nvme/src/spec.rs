//! SSD technology specifications (paper Table 2).

use serde::{Deserialize, Serialize};

/// The storage technology behind a device, ordered roughly by latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SsdTechnology {
    /// Host DRAM exposed as a pseudo block device (cost baseline only).
    Dram,
    /// Intel Optane (3D XPoint) — lowest latency, highest endurance.
    Optane,
    /// Samsung Z-NAND — low-latency SLC-like NAND.
    ZNand,
    /// Consumer/datacenter NAND flash (TLC).
    NandFlash,
}

/// Performance, endurance, and cost envelope of one device model.
///
/// Numbers are taken from Table 2 of the paper and are used both to
/// parameterize the analytical timing model and to regenerate Table 2
/// itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Underlying media technology.
    pub technology: SsdTechnology,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak random-read IOPS at 512 B.
    pub read_iops_512: f64,
    /// Peak random-read IOPS at 4 KB.
    pub read_iops_4k: f64,
    /// Peak random-write IOPS at 512 B.
    pub write_iops_512: f64,
    /// Peak random-write IOPS at 4 KB.
    pub write_iops_4k: f64,
    /// Average read latency at full throughput, in microseconds.
    pub read_latency_us: f64,
    /// Average write latency at full throughput, in microseconds.
    pub write_latency_us: f64,
    /// Drive writes per day endurance rating.
    pub dwpd: f64,
    /// Street price per GB in USD (device + share of expansion hardware).
    pub cost_per_gb: f64,
    /// Maximum number of I/O queue pairs the controller exposes.
    pub max_queue_pairs: u32,
    /// Maximum queue depth per queue pair.
    pub max_queue_depth: u32,
}

impl SsdSpec {
    /// Intel Optane P5800X (Table 2 row "Optane").
    pub fn intel_optane_p5800x() -> Self {
        Self {
            name: "Intel Optane P5800X".into(),
            technology: SsdTechnology::Optane,
            capacity_bytes: 1600 << 30,
            read_iops_512: 5.1e6,
            read_iops_4k: 1.5e6,
            write_iops_512: 1.0e6,
            write_iops_4k: 1.5e6,
            read_latency_us: 11.0,
            write_latency_us: 11.0,
            dwpd: 100.0,
            cost_per_gb: 2.54,
            max_queue_pairs: 128,
            max_queue_depth: 1024,
        }
    }

    /// Samsung PM1735 (Z-NAND; Table 2 row "Z-NAND").
    pub fn samsung_pm1735() -> Self {
        Self {
            name: "Samsung PM1735".into(),
            technology: SsdTechnology::ZNand,
            capacity_bytes: 1600 << 30,
            read_iops_512: 1.1e6,
            read_iops_4k: 1.6e6,
            write_iops_512: 351e3,
            write_iops_4k: 351e3,
            read_latency_us: 25.0,
            write_latency_us: 25.0,
            dwpd: 3.0,
            cost_per_gb: 2.56,
            max_queue_pairs: 128,
            max_queue_depth: 1024,
        }
    }

    /// Samsung 980pro (consumer NAND flash; Table 2 row "NAND Flash").
    pub fn samsung_980pro() -> Self {
        Self {
            name: "Samsung 980pro".into(),
            technology: SsdTechnology::NandFlash,
            capacity_bytes: 1000 << 30,
            read_iops_512: 750e3,
            read_iops_4k: 750e3,
            write_iops_512: 172e3,
            write_iops_4k: 172e3,
            read_latency_us: 324.0,
            write_latency_us: 324.0,
            dwpd: 0.3,
            cost_per_gb: 0.51,
            max_queue_pairs: 128,
            max_queue_depth: 1024,
        }
    }

    /// DDR4 DRAM DIMM pseudo-device (Table 2 row "DRAM"); used only for the
    /// cost/performance comparison and the DRAM-only baselines.
    pub fn dram_dimm() -> Self {
        Self {
            name: "DDR4-3200 DIMM".into(),
            technology: SsdTechnology::Dram,
            capacity_bytes: 64 << 30,
            read_iops_512: 10.0e6,
            read_iops_4k: 10.0e6,
            write_iops_512: 10.0e6,
            write_iops_4k: 10.0e6,
            read_latency_us: 0.1,
            write_latency_us: 0.1,
            dwpd: 1000.0,
            cost_per_gb: 11.13,
            max_queue_pairs: 128,
            max_queue_depth: 1024,
        }
    }

    /// All Table 2 rows, in the paper's order.
    pub fn table2() -> Vec<Self> {
        vec![
            Self::dram_dimm(),
            Self::intel_optane_p5800x(),
            Self::samsung_pm1735(),
            Self::samsung_980pro(),
        ]
    }

    /// Peak read IOPS for a given access size in bytes (piecewise between the
    /// 512 B and 4 KB points, bandwidth-limited above 4 KB).
    pub fn read_iops(&self, access_bytes: u64) -> f64 {
        Self::interp_iops(access_bytes, self.read_iops_512, self.read_iops_4k)
    }

    /// Peak write IOPS for a given access size in bytes.
    pub fn write_iops(&self, access_bytes: u64) -> f64 {
        Self::interp_iops(access_bytes, self.write_iops_512, self.write_iops_4k)
    }

    fn interp_iops(access_bytes: u64, iops_512: f64, iops_4k: f64) -> f64 {
        if access_bytes <= 512 {
            iops_512
        } else if access_bytes >= 4096 {
            // Above 4 KB the device is bandwidth-bound: scale IOPS down so
            // that bytes/s stays at the 4 KB level.
            iops_4k * 4096.0 / access_bytes as f64
        } else {
            // Log-linear interpolation between the two published points.
            let t = ((access_bytes as f64).ln() - 512f64.ln()) / (4096f64.ln() - 512f64.ln());
            iops_512 + t * (iops_4k - iops_512)
        }
    }

    /// Peak sequential/read bandwidth in GB/s implied by the 4 KB IOPS point.
    pub fn read_bandwidth_gbps(&self) -> f64 {
        self.read_iops_4k * 4096.0 / 1e9
    }

    /// Peak write bandwidth in GB/s implied by the 4 KB IOPS point.
    pub fn write_bandwidth_gbps(&self) -> f64 {
        self.write_iops_4k * 4096.0 / 1e9
    }

    /// $/GB advantage relative to DRAM (Table 2 "Gain" column).
    pub fn cost_gain_vs_dram(&self) -> f64 {
        Self::dram_dimm().cost_per_gb / self.cost_per_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_gain_matches_paper() {
        // Paper: Optane 4.4x, Z-NAND 4.3x, NAND flash 21.8x.
        let optane = SsdSpec::intel_optane_p5800x().cost_gain_vs_dram();
        let znand = SsdSpec::samsung_pm1735().cost_gain_vs_dram();
        let nand = SsdSpec::samsung_980pro().cost_gain_vs_dram();
        assert!((optane - 4.38).abs() < 0.1, "{optane}");
        assert!((znand - 4.35).abs() < 0.1, "{znand}");
        assert!((nand - 21.8).abs() < 0.5, "{nand}");
    }

    #[test]
    fn iops_interpolation_is_monotone_and_bounded() {
        let s = SsdSpec::intel_optane_p5800x();
        assert_eq!(s.read_iops(512), s.read_iops_512);
        assert_eq!(s.read_iops(4096), s.read_iops_4k);
        let mid = s.read_iops(2048);
        assert!(mid < s.read_iops_512 && mid > s.read_iops_4k);
        // Above 4 KB bandwidth stays constant.
        let bw_4k = s.read_iops(4096) * 4096.0;
        let bw_8k = s.read_iops(8192) * 8192.0;
        assert!((bw_4k - bw_8k).abs() / bw_4k < 1e-9);
    }

    #[test]
    fn optane_is_fastest_nand_is_cheapest() {
        let optane = SsdSpec::intel_optane_p5800x();
        let znand = SsdSpec::samsung_pm1735();
        let nand = SsdSpec::samsung_980pro();
        assert!(optane.read_latency_us < znand.read_latency_us);
        assert!(znand.read_latency_us < nand.read_latency_us);
        assert!(nand.cost_per_gb < optane.cost_per_gb);
        assert!(nand.cost_per_gb < znand.cost_per_gb);
    }

    #[test]
    fn table2_has_four_rows() {
        assert_eq!(SsdSpec::table2().len(), 4);
    }
}
